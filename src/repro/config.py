"""Configuration dataclasses shared across the simulator.

Three layers of knobs:

* :class:`NetworkConfig` — physical substrate constants (latencies, ACK
  sizes) that the paper treats as fixed properties of EC2.
* :class:`HdfsConfig` — the Hadoop 1.0.3 parameters the paper uses
  (64 MB blocks, 64 KB packets, replication 3, 3-second heartbeats).
* :class:`SmarthConfig` — the SMARTH-specific parameters from §III
  (local-optimization threshold 0.8, pipeline cap ``num/repli``).

All sizes are bytes, rates bytes/second, times seconds — see
:mod:`repro.units`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .units import KB, MB

__all__ = ["NetworkConfig", "HdfsConfig", "SmarthConfig", "SimulationConfig"]


@dataclass(frozen=True)
class NetworkConfig:
    """Constants of the simulated network substrate."""

    #: One-way propagation latency between any two nodes (seconds).  EC2
    #: intra-region RTTs are a few hundred microseconds.
    link_latency: float = 200e-6
    #: Latency of a control message (ACK relay hop, FNFA) — control
    #: packets are tiny, so they are modelled as latency-only and do not
    #: occupy NIC transmit channels (§III-D: ACK time overlaps data).
    control_latency: float = 200e-6
    #: Per-hop TCP/stream connection setup cost when building a pipeline.
    connection_setup: float = 1e-3
    #: When True, a throttle-rule change re-quotes *in-flight* channel
    #: reservations (tc re-clocks the shaped class's queued frames).  The
    #: default False keeps the historical semantics: in-flight packets
    #: finish at the rate they started with; only later packets see the
    #: new rate.
    requote_in_flight: bool = False
    #: When True, :class:`~repro.net.stats.FlowStats` retains every
    #: per-packet FlowSample (unbounded memory — test/debug only).  The
    #: default aggregates per (src, dst) pair in O(pairs) memory.
    keep_flow_samples: bool = False

    def __post_init__(self) -> None:
        if self.link_latency < 0 or self.control_latency < 0:
            raise ValueError("latencies must be non-negative")
        if self.connection_setup < 0:
            raise ValueError("connection_setup must be non-negative")


@dataclass(frozen=True)
class HdfsConfig:
    """Hadoop 1.0.3 write-path parameters (paper §II)."""

    #: HDFS block size; the paper (and Hadoop 1.x) default is 64 MB.
    block_size: int = 64 * MB
    #: Wire packet size; Hadoop default is 64 KB.  Experiments may raise
    #: this (simulation granularity) — dynamics are granularity-stable,
    #: which ``benchmarks/bench_ablation_granularity.py`` demonstrates.
    packet_size: int = 64 * KB
    #: Replication factor; 3 in every paper experiment.
    replication: int = 3
    #: Round-trip latency of a namenode RPC (``T_n`` in §III-D).
    namenode_rpc_latency: float = 1e-3
    #: Heartbeat period (also carries SMARTH speed reports): 3 s.
    heartbeat_interval: float = 3.0
    #: Heartbeats missed before the namenode declares a datanode dead.
    #: (Real HDFS waits 10.5 minutes; kept proportionally shorter so fault
    #: experiments run in reasonable simulated time.)
    dead_node_heartbeats: int = 10
    #: Effective per-stream buffering at a datanode in the *baseline*
    #: write path (OS socket buffers + BlockReceiver staging) — a few MB,
    #: unlike SMARTH's one-block first-datanode buffer (§IV-C).
    socket_buffer: int = 4 * MB
    #: Packet-train coalescing for the pipeline hot loop.  ``0`` (the
    #: default) coalesces a whole block's steady-state packet stream into
    #: one analytically-quoted :class:`~repro.hdfs.train.PacketTrain` per
    #: pipeline; ``1`` disables coalescing (legacy per-packet events);
    #: ``n > 1`` coalesces only blocks of at most ``n`` packets (a
    #: granularity guard for memory-constrained plans).  The train planner
    #: models the §IV-C buffer token bound exactly, so the coalesced window
    #: is always clamped by buffer headroom.  Timing is bit-identical
    #: either way (golden-equivalence tested).
    coalesce_packets: int = 0
    #: Vectorized batch completion kernel for conducted trains.  ``1``
    #: (the default) lets a :class:`~repro.hdfs.train.PacketTrain` consume
    #: every already-produced chunk in one synchronous pass (analytic get
    #: times, zero heap events per packet) and run numpy-vectorized
    #: frozen-prefix replays and settle counters; ``0`` falls back to the
    #: scalar per-row conductor.  The batched feeder only engages when the
    #: whole file fits the data queue (so producer backpressure can never
    #: bind and chunk availability is provably identical); timing is
    #: bit-identical either way (equivalence tested like
    #: ``coalesce_packets``).
    batch_completions: int = 1
    #: Concurrent read streams one datanode serves at a time (the
    #: ``dfs.datanode.max.transfer.threads`` analogue).  Excess readers
    #: queue at the datanode and the wait is recorded in the
    #: ``read.serve_wait`` histogram.  Reads and writes additionally share
    #: each node's disk channel and NIC channels, so a serving datanode
    #: slows co-resident pipeline traffic and vice versa.
    serve_streams: int = 4
    #: Read-train coalescing for the read hot loop, with the
    #: ``coalesce_packets`` semantics: ``0`` (the default) collapses a
    #: whole block's steady-state chunk cascade into one analytically
    #: quoted :class:`~repro.hdfs.train.ReadTrain`; ``1`` disables
    #: coalescing (legacy per-chunk events); ``n > 1`` coalesces only
    #: blocks of at most ``n`` chunks.  Timing is bit-identical either
    #: way (equivalence tested like ``coalesce_packets``).
    coalesce_reads: int = 0
    #: Short-circuit local reads: a reader co-located on a node that holds
    #: a live finalized replica scans its local disk directly — no
    #: connection setup, no NIC occupancy, no datanode serve slot
    #: (Hadoop's ``dfs.client.read.shortcircuit``).  ``0`` disables;
    #: every read then streams through the serving datanode.
    short_circuit_reads: int = 1

    def __post_init__(self) -> None:
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if not 0 < self.packet_size <= self.block_size:
            raise ValueError("packet_size must be in (0, block_size]")
        if self.replication < 1:
            raise ValueError("replication must be >= 1")
        if self.namenode_rpc_latency < 0:
            raise ValueError("namenode_rpc_latency must be non-negative")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.socket_buffer <= 0:
            raise ValueError("socket_buffer must be positive")
        if self.coalesce_packets < 0:
            raise ValueError("coalesce_packets must be >= 0")
        if self.batch_completions not in (0, 1):
            raise ValueError("batch_completions must be 0 or 1")
        if self.serve_streams < 1:
            raise ValueError("serve_streams must be >= 1")
        if self.coalesce_reads < 0:
            raise ValueError("coalesce_reads must be >= 0")
        if self.short_circuit_reads not in (0, 1):
            raise ValueError("short_circuit_reads must be 0 or 1")

    @property
    def packets_per_block(self) -> int:
        """Number of wire packets in one full block (⌈B/P⌉)."""
        return -(-self.block_size // self.packet_size)


@dataclass(frozen=True)
class SmarthConfig:
    """SMARTH protocol parameters (paper §III)."""

    #: Algorithm 2 threshold: with probability ``1 - threshold`` the client
    #: swaps the first datanode with a random other target to refresh its
    #: speed records.  The paper fixes this at 0.8.
    local_opt_threshold: float = 0.8
    #: Enable Algorithm 1 (namenode-side TopN first-datanode selection).
    enable_global_opt: bool = True
    #: Enable Algorithm 2 (client-side sort + exploratory swap).
    enable_local_opt: bool = True
    #: Cap on concurrently live pipelines.  ``None`` means the paper's rule
    #: ``num_active_datanodes / replication`` (§IV-C).
    max_pipelines: Optional[int] = None
    #: First-datanode buffer capacity per client, in bytes.  ``None`` means
    #: one block (the paper sets it to the 64 MB block size).
    datanode_buffer: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.local_opt_threshold <= 1.0:
            raise ValueError("local_opt_threshold must be in [0, 1]")
        if self.max_pipelines is not None and self.max_pipelines < 1:
            raise ValueError("max_pipelines must be >= 1")
        if self.datanode_buffer is not None and self.datanode_buffer <= 0:
            raise ValueError("datanode_buffer must be positive")

    def pipeline_cap(self, num_datanodes: int, replication: int) -> int:
        """The effective live-pipeline cap for a cluster (Algorithm 1 l.3)."""
        if self.max_pipelines is not None:
            return self.max_pipelines
        return max(1, num_datanodes // max(1, replication))


@dataclass(frozen=True)
class SimulationConfig:
    """Top-level bundle handed to scenario builders and workloads."""

    network: NetworkConfig = field(default_factory=NetworkConfig)
    hdfs: HdfsConfig = field(default_factory=HdfsConfig)
    smarth: SmarthConfig = field(default_factory=SmarthConfig)
    #: Seed for every stochastic choice (placement, local-opt swaps).
    seed: int = 20140901  # ICPP 2014 conference month

    def with_hdfs(self, **kwargs: object) -> "SimulationConfig":
        """Return a copy with :class:`HdfsConfig` fields overridden."""
        return replace(self, hdfs=replace(self.hdfs, **kwargs))

    def with_smarth(self, **kwargs: object) -> "SimulationConfig":
        """Return a copy with :class:`SmarthConfig` fields overridden."""
        return replace(self, smarth=replace(self.smarth, **kwargs))

    def with_network(self, **kwargs: object) -> "SimulationConfig":
        """Return a copy with :class:`NetworkConfig` fields overridden."""
        return replace(self, network=replace(self.network, **kwargs))
