"""Deterministic RNG substreams.

Several components used to share one ``random.Random`` across logically
independent decisions — e.g. the HDFS reader shuffled replica candidates
for *every* block from one stream, so the order a second reader saw
depended on how many blocks the first had already read.  That coupling
made per-block outcomes depend on global interleaving, which breaks
checkpoint/resume equivalence and makes property tests flaky.

:func:`substream` derives an independent ``random.Random`` from a root
seed plus any mix of int/str keys, so each (reader, block) or (job,
block) decision draws from its own stream.  The derivation is pure
arithmetic — **never** Python's built-in ``hash()``, which is salted per
process and would destroy cross-run determinism.  String keys hash via
``zlib.crc32``; everything folds through an FNV-1a-style 64-bit mix.
"""

from __future__ import annotations

import random
import zlib

__all__ = ["substream", "substream_seed"]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def _mix(h: int, value: int) -> int:
    """Fold one 64-bit value into the running FNV-1a-style hash."""
    for shift in (0, 32):
        h ^= (value >> shift) & 0xFFFFFFFF
        h = (h * _FNV_PRIME) & _MASK64
    return h


def substream_seed(seed: int, *keys: int | str) -> int:
    """Derive a 64-bit sub-seed from ``seed`` and a key path."""
    h = _mix(_FNV_OFFSET, seed & _MASK64)
    for key in keys:
        if isinstance(key, str):
            h = _mix(h, zlib.crc32(key.encode("utf-8")))
        else:
            h = _mix(h, key & _MASK64)
    return h


def substream(seed: int, *keys: int | str) -> random.Random:
    """An independent ``random.Random`` for the given (seed, keys) path.

    Two calls with equal arguments return identically seeded generators;
    distinct key paths give statistically independent streams.
    """
    return random.Random(substream_seed(seed, *keys))
