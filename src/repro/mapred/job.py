"""A map-phase runner over HDFS files — the paper's §VII future work.

"In the future, we plan to investigate SMARTH's impact on MapReduce jobs
and tasks."  This module implements the piece needed to do that: a
Hadoop-style map phase that schedules one task per block, preferring
**data-local** execution (a task running on a node that holds a replica
reads from local disk; otherwise it streams the block from the nearest
replica over the network), with a bounded number of map slots per node.

The interesting questions it answers (see
``benchmarks/bench_future_mapreduce.py``):

* does a SMARTH-ingested file process as fast as an HDFS-ingested one?
  (Both are fully replicated, but SMARTH's speed-biased placement skews
  *where* replicas land, which can concentrate tasks on fewer nodes.)
* how does the end-to-end ingest+analyze time compare?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cluster.node import Node
from ..hdfs.deployment import HdfsDeployment
from ..rng import substream
from ..sim import ProcessGenerator, Resource
from ..units import MB

__all__ = ["JobConfig", "TaskRecord", "JobResult", "MapRunner"]


@dataclass(frozen=True)
class JobConfig:
    """Map-phase parameters (Hadoop TaskTracker analogues)."""

    #: Concurrent map tasks per datanode (mapred.tasktracker.map.tasks).
    map_slots_per_node: int = 2
    #: Per-task record-processing throughput, bytes/second.
    compute_rate: float = 50 * MB
    #: Task dispatch overhead (JVM spawn, heartbeat-based assignment).
    scheduler_delay: float = 0.1

    def __post_init__(self) -> None:
        if self.map_slots_per_node < 1:
            raise ValueError("map_slots_per_node must be >= 1")
        if self.compute_rate <= 0:
            raise ValueError("compute_rate must be positive")
        if self.scheduler_delay < 0:
            raise ValueError("scheduler_delay must be non-negative")


@dataclass(frozen=True)
class TaskRecord:
    """One finished map task."""

    block_id: int
    node: str
    data_local: bool
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class JobResult:
    """Outcome of one map phase."""

    path: str
    n_tasks: int
    start: float
    end: float
    tasks: list[TaskRecord] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def locality_fraction(self) -> float:
        """Fraction of tasks that ran data-local."""
        if not self.tasks:
            return 0.0
        return sum(1 for t in self.tasks if t.data_local) / len(self.tasks)


class MapRunner:
    """Schedules and executes one map task per block of a file."""

    def __init__(self, deployment: HdfsDeployment, config: Optional[JobConfig] = None):
        self.deployment = deployment
        self.env = deployment.env
        self.config = config or JobConfig()
        self._rng_seed = deployment.config.seed ^ 0x3A9
        #: One slot pool per datanode, created lazily per job.
        self._slots: dict[str, Resource] = {}

    # ------------------------------------------------------------------
    def run(self, path: str) -> ProcessGenerator:
        """Run the map phase over ``path``; returns a :class:`JobResult`."""
        namenode = self.deployment.namenode
        yield from namenode._rpc()  # job client fetches block locations
        inode = namenode.namespace.get(path)

        self._slots = {
            name: Resource(self.env, capacity=self.config.map_slots_per_node)
            for name, dn in self.deployment.datanodes.items()
            if dn.node.alive
        }

        result = JobResult(
            path=path,
            n_tasks=len(inode.blocks),
            start=self.env.now,
            end=self.env.now,
        )

        assignments = self._assign(inode.blocks)
        tasks = [
            self.env.process(
                self._task(block, node, result), name=f"map:b{block.block_id}"
            )
            for block, node in assignments
        ]
        yield self.env.all_of(tasks)
        result.end = self.env.now
        result.tasks.sort(key=lambda t: (t.start, t.block_id))
        return result

    # ------------------------------------------------------------------
    def _assign(self, blocks) -> list[tuple[object, str]]:
        """Greedy locality-aware assignment, balancing per-node load."""
        namenode = self.deployment.namenode
        load: dict[str, int] = {name: 0 for name in self._slots}
        assignments = []
        for block in blocks:
            holders = [
                d
                for d in namenode.blocks.locations(block.block_id)
                if d in self._slots
            ]
            if holders:
                # Least-loaded replica holder (Hadoop's scheduler strives
                # for node-locality first).  The tie-break substream is
                # keyed per block, so an assignment does not depend on
                # how many jobs this runner dispatched before it.
                substream(self._rng_seed, block.block_id).shuffle(holders)
                node = min(holders, key=lambda d: load[d])
            else:
                candidates = sorted(load)
                if not candidates:
                    raise RuntimeError("no live datanodes to run tasks on")
                node = min(candidates, key=lambda d: load[d])
            load[node] += 1
            assignments.append((block, node))
        return assignments

    def _task(self, block, node_name: str, result: JobResult) -> ProcessGenerator:
        """One map task: acquire a slot, stream the block, compute."""
        datanode = self.deployment.datanode(node_name)
        local = node_name in self.deployment.namenode.blocks.locations(
            block.block_id
        )
        with self._slots[node_name].request() as slot:
            yield slot
            start = self.env.now
            yield self.env.timeout(self.config.scheduler_delay)
            if local:
                yield from self._local_scan(datanode.node, block.size)
            else:
                yield from self._remote_scan(datanode.node, block)
            result.tasks.append(
                TaskRecord(
                    block_id=block.block_id,
                    node=node_name,
                    data_local=local,
                    start=start,
                    end=self.env.now,
                )
            )

    def _local_scan(self, node: Node, size: int) -> ProcessGenerator:
        """Streamed read+compute: effective rate = min(disk, compute).

        The disk channel is occupied for the read portion (concurrent
        tasks on one node contend realistically); if the CPU is slower
        than the disk, the compute shortfall is served afterwards.
        """
        t0 = self.env.now
        yield self.env.process(node.disk.read(size))
        yield from self._compute_tail(size, t0)

    def _remote_scan(self, node: Node, block) -> ProcessGenerator:
        """Stream the block from the best-ranked live replica, computing
        as the data arrives.

        Replica choice goes through the deployment-wide
        :meth:`~repro.hdfs.deployment.HdfsDeployment.ranked_replicas`
        path (speed-aware, locality tie-break, policy-overridable), and
        the stream is admitted against the source's bounded serve queue —
        so map tasks racing readers for a hot replica wait in the same
        ``read.serve_wait`` histogram the HDFS client populates.
        """
        sources = self.deployment.ranked_replicas(
            block, client=node.name, node=node, seed=self._rng_seed
        )
        if not sources:
            raise RuntimeError(f"block {block.block_id}: no live replica")
        source = self.deployment.datanode(sources[0])
        serve = yield from source.open_serve(block.block_id, node.name)
        try:
            t0 = self.env.now
            read = self.env.process(source.node.disk.read(block.size))
            yield self.env.process(
                self.deployment.network.transfer(source.node, node, block.size)
            )
            yield read
        finally:
            serve.close()
        yield from self._compute_tail(block.size, t0)

    def _compute_tail(self, size: int, t0: float) -> ProcessGenerator:
        """Wait out the CPU shortfall of a streamed scan, if any."""
        compute_time = size / self.config.compute_rate
        elapsed = self.env.now - t0
        if compute_time > elapsed:
            yield self.env.timeout(compute_time - elapsed)
