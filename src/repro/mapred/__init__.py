"""Map-phase execution over HDFS files (the paper's §VII future work)."""

from .job import JobConfig, JobResult, MapRunner, TaskRecord

__all__ = ["MapRunner", "JobConfig", "JobResult", "TaskRecord"]
