"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``upload``      Run one upload through hdfs or smarth on a named scenario.
``compare``     Run both systems and print the improvement.
``experiment``  Regenerate one (or all) of the paper's tables/figures.
``scenarios``   List the built-in scenarios.
``chaos``       Run a deterministic chaos campaign with invariant checks.
``trace``       Run a traceable experiment with span tracing and export
                a Perfetto-loadable Chrome trace (plus Gantt/summary).
``serve``       Run the continuous-ingestion multi-tenant service with
                periodic checkpoints; resume from a snapshot file.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from .experiments import ALL_EXPERIMENTS, experiment_config, run_all
from .faults import report_json, run_campaign
from .hdfs import HdfsDeployment, HdfsReader
from .policy import policy_names
from .smarth import SmarthDeployment
from .units import fmt_rate, fmt_size, fmt_time, parse_duration, parse_size
from .workloads import compare, contention, heterogeneous, run_upload, two_rack
from .workloads.scenarios import Scenario

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _scenario_from_args(args: argparse.Namespace) -> Scenario:
    if args.scenario == "two-rack":
        return two_rack(args.instance, throttle_mbps=args.throttle)
    if args.scenario == "contention":
        return contention(
            args.instance, n_slow=args.slow_nodes, slow_mbps=args.slow_mbps
        )
    if args.scenario == "heterogeneous":
        return heterogeneous()
    raise ValueError(f"unknown scenario {args.scenario!r}")


def _add_scenario_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scenario",
        choices=("two-rack", "contention", "heterogeneous"),
        default="two-rack",
        help="cluster scenario (default: two-rack)",
    )
    parser.add_argument(
        "--instance",
        choices=("small", "medium", "large"),
        default="small",
        help="EC2 instance type for homogeneous scenarios",
    )
    parser.add_argument(
        "--throttle",
        type=float,
        default=None,
        metavar="MBPS",
        help="two-rack boundary throttle in Mbps (default: none)",
    )
    parser.add_argument(
        "--slow-nodes", type=int, default=1, help="contention: slow datanodes"
    )
    parser.add_argument(
        "--slow-mbps", type=float, default=50.0, help="contention: slow rate"
    )
    parser.add_argument(
        "--size", default="1GB", help="upload size (e.g. 512MB, 8GB)"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SMARTH reproduction: simulated HDFS uploads and the "
        "paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    up = sub.add_parser("upload", help="run one upload")
    _add_scenario_args(up)
    up.add_argument(
        "--system", choices=("hdfs", "smarth"), default="smarth"
    )
    up.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="enable span tracing and write a Chrome trace JSON here",
    )

    roundtrip = sub.add_parser(
        "roundtrip", help="upload then read the file back"
    )
    _add_scenario_args(roundtrip)
    roundtrip.add_argument(
        "--system", choices=("hdfs", "smarth"), default="smarth"
    )

    cmp_parser = sub.add_parser("compare", help="run both systems")
    _add_scenario_args(cmp_parser)

    exp = sub.add_parser("experiment", help="regenerate a paper experiment")
    exp.add_argument(
        "id",
        choices=sorted(ALL_EXPERIMENTS) + ["all"],
        help="table/figure id, or 'all'",
    )
    exp.add_argument(
        "--scale",
        type=float,
        default=0.25,
        help="file-size scale factor vs the paper's 8 GB points "
        "(default 0.25)",
    )
    exp.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="run experiments in a pool of N worker processes "
        "(results are identical to --jobs 1; default 1)",
    )
    exp.add_argument(
        "--trace",
        metavar="DIR",
        default=None,
        help="also write Chrome traces (trace-<id>.json) for requested "
        "experiments that support tracing",
    )

    chaos = sub.add_parser(
        "chaos",
        help="run a seed-driven chaos campaign with durability invariants",
    )
    chaos.add_argument(
        "--seed",
        type=int,
        default=7,
        help="campaign seed; run i uses sub-seed seed+i (default 7)",
    )
    chaos.add_argument(
        "--runs",
        type=_positive_int,
        default=10,
        metavar="K",
        help="number of randomized fault schedules (default 10)",
    )
    chaos.add_argument(
        "--protocol",
        choices=("hdfs", "smarth", "both"),
        default="both",
        help="which client(s) to run each schedule under (default both)",
    )
    chaos.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="upload-size scale factor for faster smoke runs (default 1.0)",
    )
    chaos.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="write the JSON report here instead of stdout",
    )
    chaos.add_argument(
        "--trace-dir",
        metavar="DIR",
        default=None,
        help="write one Chrome trace per (run, protocol) into DIR",
    )
    chaos.add_argument(
        "--policy",
        choices=policy_names(),
        default=None,
        help="run every schedule under a registered deployment policy "
        "(default: the built-in default policy)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the continuous-ingestion service with checkpoints",
    )
    serve.add_argument(
        "--tenants", type=_positive_int, default=500,
        help="total tenants across the three default classes (default 500)",
    )
    serve.add_argument(
        "--hours", type=float, default=48.0,
        help="simulated horizon in hours (default 48)",
    )
    serve.add_argument(
        "--checkpoint-every", default="6h", metavar="DUR",
        help="segment length, e.g. 6h, 30m, 3600 (default 6h)",
    )
    serve.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="write ckpt_NNN.pkl snapshots here after each barrier",
    )
    serve.add_argument(
        "--resume", metavar="FILE", default=None,
        help="resume from a snapshot file (ignores the spec flags)",
    )
    serve.add_argument("--seed", type=int, default=20140901)
    serve.add_argument(
        "--shards", type=_positive_int, default=1,
        help="event-loop shards (default 1)",
    )
    serve.add_argument(
        "--protocol", choices=("hdfs", "smarth"), default="smarth"
    )
    serve.add_argument(
        "--datanodes", type=_positive_int, default=6, metavar="N"
    )
    serve.add_argument(
        "--max-inflight", type=_positive_int, default=8,
        help="admission control: concurrent upload bound (default 8)",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=16,
        help="admission control: backlog bound; overflow rejects (default 16)",
    )
    serve.add_argument(
        "--chaos", action="store_true",
        help="inject a seed-derived fault plan into the run",
    )
    serve.add_argument(
        "--report", metavar="FILE", default=None,
        help="write the JSON report here",
    )

    sub.add_parser("scenarios", help="list built-in scenarios")

    from .obs.trace_cmd import TRACEABLE

    trace = sub.add_parser(
        "trace",
        help="run a traced experiment and export a Perfetto-loadable "
        "Chrome trace",
    )
    trace.add_argument(
        "id", choices=sorted(TRACEABLE), help="traceable experiment id"
    )
    trace.add_argument(
        "--seed", type=int, default=0, help="simulation seed (default 0)"
    )
    trace.add_argument(
        "--scale",
        type=float,
        default=0.25,
        help="file-size scale factor vs the 1 GB point (default 0.25)",
    )
    trace.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="Chrome trace output path (default trace-<id>.json)",
    )
    trace.add_argument(
        "--gantt",
        metavar="FILE",
        default=None,
        help="also write a text Gantt chart here",
    )
    trace.add_argument(
        "--summary",
        metavar="FILE",
        default=None,
        help="write the metrics summary here instead of stdout",
    )
    return parser


def _cmd_upload(args: argparse.Namespace) -> int:
    scenario = _scenario_from_args(args)
    size = parse_size(args.size)
    outcome = run_upload(
        scenario,
        args.system,
        size,
        config=experiment_config(),
        observe=args.trace is not None,
    )
    result = outcome.result
    if args.trace is not None:
        from .obs import chrome_trace_json

        with open(args.trace, "w", encoding="utf-8") as handle:
            handle.write(
                chrome_trace_json(
                    outcome.deployment.tracer,
                    label=f"upload {args.system} {scenario.name}",
                )
            )
        print(f"trace    : {args.trace}")
    print(f"scenario : {scenario.description}")
    print(f"system   : {outcome.system}")
    print(f"size     : {fmt_size(size)}")
    print(f"time     : {fmt_time(result.duration)}")
    print(f"goodput  : {fmt_rate(result.throughput)}")
    print(f"blocks   : {result.n_blocks} "
          f"(max {result.max_concurrent_pipelines} concurrent pipelines)")
    print(f"replicated fully: {outcome.fully_replicated}")
    return 0


def _cmd_roundtrip(args: argparse.Namespace) -> int:
    scenario = _scenario_from_args(args)
    size = parse_size(args.size)
    config = experiment_config()
    env, cluster = scenario.make(config)
    deployment = (
        SmarthDeployment(cluster)
        if args.system == "smarth"
        else HdfsDeployment(cluster)
    )
    client = deployment.client()
    write = env.run(until=env.process(client.put("/data/file.bin", size)))
    env.run(until=env.now + 1)
    reader = HdfsReader(deployment)
    read = env.run(until=env.process(reader.get("/data/file.bin")))
    print(f"scenario : {scenario.description}")
    print(f"system   : {args.system}")
    print(f"write    : {fmt_time(write.duration)} "
          f"({fmt_rate(write.throughput)})")
    print(f"read     : {fmt_time(read.duration)} "
          f"({fmt_rate(read.throughput)})")
    sources = sorted({s for _, s in read.sources})
    print(f"read from: {', '.join(sources)}")
    print(f"replicated fully: "
          f"{deployment.namenode.file_fully_replicated('/data/file.bin')}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    scenario = _scenario_from_args(args)
    size = parse_size(args.size)
    hdfs, smarth, improvement = compare(
        scenario, size, config=experiment_config()
    )
    print(f"scenario : {scenario.description}")
    print(f"size     : {fmt_size(size)}")
    print(f"hdfs     : {fmt_time(hdfs.duration)}")
    print(f"smarth   : {fmt_time(smarth.duration)}")
    print(f"improvement: {improvement:.0f}%")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    ids = sorted(ALL_EXPERIMENTS) if args.id == "all" else [args.id]
    results = run_all(scale=args.scale, only=ids, jobs=args.jobs)
    for result in results:
        print(result.to_text())
        print()
    if args.trace is not None:
        from .obs import chrome_trace_json
        from .obs.trace_cmd import TRACEABLE, run_traced

        os.makedirs(args.trace, exist_ok=True)
        for experiment_id in ids:
            if experiment_id not in TRACEABLE:
                continue
            run = run_traced(experiment_id, scale=args.scale)
            out = f"{args.trace}/trace-{experiment_id}.json"
            with open(out, "w", encoding="utf-8") as handle:
                handle.write(
                    chrome_trace_json(run.tracer, label=experiment_id)
                )
            print(f"trace: {out}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    protocols = (
        ("hdfs", "smarth") if args.protocol == "both" else (args.protocol,)
    )
    report = run_campaign(
        args.seed,
        args.runs,
        protocols=protocols,
        scale=args.scale,
        trace_dir=args.trace_dir,
        policy=args.policy,
    )
    rendered = report_json(report)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
    else:
        print(rendered)
    verdict = "ALL GREEN" if report["all_green"] else "VIOLATIONS FOUND"
    print(
        f"chaos: {args.runs} schedules x {len(protocols)} protocol(s), "
        f"outcomes={report['outcomes']} -> {verdict}",
        file=sys.stderr,
    )
    return 0 if report["all_green"] else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import chrome_trace_json, render_gantt
    from .obs.trace_cmd import run_traced

    run = run_traced(args.id, seed=args.seed, scale=args.scale)
    out = args.out or f"trace-{args.id}.json"
    with open(out, "w", encoding="utf-8") as handle:
        handle.write(chrome_trace_json(run.tracer, label=args.id))
    print(f"trace: {out}  (load via https://ui.perfetto.dev)", file=sys.stderr)
    if args.gantt is not None:
        with open(args.gantt, "w", encoding="utf-8") as handle:
            handle.write(render_gantt(run.tracer))
        print(f"gantt: {args.gantt}", file=sys.stderr)
    if args.summary is not None:
        with open(args.summary, "w", encoding="utf-8") as handle:
            handle.write(run.summary)
    else:
        print(run.summary, end="")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import IngestService, ServiceSpec, generate_service_faults

    if args.resume is not None:
        service = IngestService.resume(args.resume)
        print(f"resumed from {args.resume}", file=sys.stderr)
    else:
        horizon = args.hours * 3600.0
        faults = (
            generate_service_faults(args.seed, args.datanodes, horizon)
            if args.chaos
            else ()
        )
        spec = ServiceSpec.default(
            tenants=args.tenants,
            horizon=horizon,
            checkpoint_every=parse_duration(args.checkpoint_every),
            seed=args.seed,
            protocol=args.protocol,
            shards=args.shards,
            n_datanodes=args.datanodes,
            max_inflight=args.max_inflight,
            queue_limit=args.queue_limit,
            faults=faults,
        )
        service = IngestService(spec)
    report = service.run(
        checkpoint_dir=args.checkpoint_dir,
        progress=lambda line: print(line, file=sys.stderr),
    )
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
        print(f"report: {args.report}", file=sys.stderr)
    counts = report.counts
    print(report.slo_text, end="")
    print()
    print(
        f"arrivals={counts['arrivals']} completed={counts['completed']} "
        f"failed={counts['failed']} rejected={counts['rejected']} "
        f"max_queue={counts['max_queue_depth']}/{counts['queue_limit']}"
    )
    digests = report.digests()
    print(f"journal digest: {digests['journal']}")
    ok = (
        counts["conservation_ok"]
        and counts["queue_bounded"]
        and counts["inflight_bounded"]
    )
    print(f"invariants: {'OK' if ok else 'VIOLATED'}")
    return 0 if ok else 1


def _cmd_scenarios(_args: argparse.Namespace) -> int:
    for scenario in (
        two_rack("small", throttle_mbps=100),
        contention("small", n_slow=1),
        heterogeneous(),
    ):
        print(f"{scenario.name:40s} {scenario.description}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "upload": _cmd_upload,
        "roundtrip": _cmd_roundtrip,
        "compare": _cmd_compare,
        "experiment": _cmd_experiment,
        "chaos": _cmd_chaos,
        "serve": _cmd_serve,
        "scenarios": _cmd_scenarios,
        "trace": _cmd_trace,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
