"""Wire-protocol data types for the simulated HDFS write path.

These mirror Hadoop 1.0.3's client↔namenode and client↔datanode messages
at the granularity the paper's analysis uses: blocks, packets, per-packet
ACKs, and SMARTH's FIRST NODE FINISH ACK (FNFA).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

__all__ = [
    "Block",
    "Packet",
    "Ack",
    "FNFA",
    "BlockTargets",
    "BlockState",
    "WriteResult",
    "PipelineFailure",
    "HdfsError",
    "FileAlreadyExists",
    "FileNotFound",
    "SafeModeException",
    "LeaseConflict",
    "NoDatanodesAvailable",
    "DatanodeDead",
]


class HdfsError(Exception):
    """Base class for protocol-level errors."""


class FileAlreadyExists(HdfsError):
    """create() on an existing path (namenode pre-check, §II step 1)."""


class FileNotFound(HdfsError):
    """Operation on a path missing from the namespace."""


class SafeModeException(HdfsError):
    """Namespace mutation attempted while the namenode is in safe mode."""


class LeaseConflict(HdfsError):
    """A second client tried to write a file already under construction."""


class NoDatanodesAvailable(HdfsError):
    """Placement could not find enough live, un-excluded datanodes."""


class DatanodeDead(HdfsError, RuntimeError):
    """A connection was attempted to a crashed datanode.

    The namenode's liveness view is heartbeat-driven, so for up to
    ``dead_node_heartbeats`` intervals after a crash it can still hand a
    dead datanode out as a pipeline target; the client discovers the
    truth only when the connection is refused.  Clients treat this
    exactly like a mid-stream pipeline failure: blacklist the node and
    recover (also a ``RuntimeError`` for backward compatibility).
    """

    def __init__(self, datanode: str):
        super().__init__(f"datanode {datanode} is dead")
        self.datanode = datanode


class PipelineFailure(HdfsError):
    """A datanode in an active pipeline failed mid-transfer."""

    def __init__(self, block_id: int, failed_datanode: str):
        super().__init__(f"block {block_id}: datanode {failed_datanode} failed")
        self.block_id = block_id
        self.failed_datanode = failed_datanode


class BlockState(Enum):
    """Lifecycle of a block on the namenode."""

    UNDER_CONSTRUCTION = "under_construction"
    COMMITTED = "committed"
    COMPLETE = "complete"


@dataclass(frozen=True)
class Block:
    """One HDFS block of a file."""

    block_id: int
    path: str
    index: int
    size: int
    #: Generation stamp, bumped on pipeline recovery (Hadoop semantics).
    generation: int = 0

    def with_generation(self, generation: int) -> "Block":
        return Block(self.block_id, self.path, self.index, self.size, generation)

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("block size must be non-negative")


@dataclass(frozen=True)
class Packet:
    """One wire packet of a block (§II step 2 splits blocks into packets)."""

    block: Block
    seq: int
    size: int
    is_last: bool = False

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("packet size must be positive")
        if self.seq < 0:
            raise ValueError("packet seq must be non-negative")


@dataclass(frozen=True)
class Ack:
    """Aggregate per-packet acknowledgement travelling client-ward.

    An ACK reaching the client means every datanode in the pipeline has
    received and stored the packet (each hop only relays after its local
    write and its downstream's ACK, as in Hadoop's PacketResponder chain).
    """

    block_id: int
    seq: int
    ok: bool = True
    failed_datanode: Optional[str] = None


@dataclass(frozen=True)
class FNFA:
    """SMARTH's FIRST NODE FINISH ACK: the first datanode received and
    stored the entire block (§III-A step 3)."""

    block_id: int
    datanode: str
    #: Simulated time the first datanode finished storing the block.
    finished_at: float = 0.0


@dataclass(frozen=True)
class BlockTargets:
    """addBlock() response: a new block plus its pipeline datanodes."""

    block: Block
    targets: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.targets:
            raise ValueError("a pipeline needs at least one target")
        if len(set(self.targets)) != len(self.targets):
            raise ValueError(f"duplicate targets in pipeline: {self.targets}")


@dataclass
class WriteResult:
    """Everything a completed upload reports back to the caller."""

    path: str
    size: int
    start: float
    end: float
    n_blocks: int
    system: str
    #: Per-block pipeline target lists, in block order.
    pipelines: list[tuple[str, ...]] = field(default_factory=list)
    #: Peak number of simultaneously live pipelines (1 for baseline HDFS).
    max_concurrent_pipelines: int = 1
    #: Number of pipeline-recovery events survived during the write.
    recoveries: int = 0

    @property
    def duration(self) -> float:
        """End-to-end upload time (the paper's measured quantity)."""
        return self.end - self.start

    @property
    def throughput(self) -> float:
        """Average goodput in bytes/second."""
        return self.size / self.duration if self.duration > 0 else float("inf")
