"""Datanode liveness tracking on the namenode.

Datanodes register once and then heartbeat every
:attr:`~repro.config.HdfsConfig.heartbeat_interval` seconds; a monitor
process declares a node dead after ``dead_node_heartbeats`` missed beats.
Placement (both default HDFS and SMARTH's Algorithm 1) only ever considers
*live* datanodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import HdfsConfig
from ..sim import Environment, Interrupt, ProcessGenerator

__all__ = ["DatanodeDescriptor", "DatanodeManager"]


@dataclass
class DatanodeDescriptor:
    """Namenode-side view of one datanode."""

    name: str
    rack: str
    last_heartbeat: float = 0.0
    alive: bool = True
    #: Active write streams (an xceiver-count analogue, for load stats).
    active_streams: int = 0
    #: Graceful drain in progress: no new replicas placed here, but the
    #: node still serves reads and replication-source traffic.
    decommissioning: bool = False
    decommissioned: bool = False

    @property
    def schedulable(self) -> bool:
        return self.alive and not self.decommissioned and not self.decommissioning

    @property
    def can_serve(self) -> bool:
        """Usable as a read / replication source."""
        return self.alive and not self.decommissioned


class DatanodeManager:
    """Registration, heartbeats and the liveness monitor."""

    def __init__(self, env: Environment, config: HdfsConfig):
        self.env = env
        self.config = config
        self._datanodes: dict[str, DatanodeDescriptor] = {}
        #: Memoized schedulable-node views, dropped on any membership or
        #: liveness transition.  ``live_datanodes`` is on the per-block
        #: allocation path, so rebuilding the sorted tuple per call costs
        #: O(n log n) × blocks at steady state for a set that only changes
        #: on registration, death, revival or decommission.
        self._live_cache: tuple[str, ...] | None = None
        self._live_set_cache: frozenset[str] | None = None

    def _invalidate_live(self) -> None:
        self._live_cache = None
        self._live_set_cache = None

    # -- registration and heartbeats -----------------------------------------
    def register(self, name: str, rack: str) -> DatanodeDescriptor:
        if name in self._datanodes:
            raise ValueError(f"datanode {name!r} already registered")
        descriptor = DatanodeDescriptor(
            name=name, rack=rack, last_heartbeat=self.env.now
        )
        self._datanodes[name] = descriptor
        self._invalidate_live()
        return descriptor

    def heartbeat(self, name: str) -> None:
        """Record a beat; revives a node previously marked dead."""
        descriptor = self._get(name)
        descriptor.last_heartbeat = self.env.now
        if not descriptor.alive:
            descriptor.alive = True
            self._invalidate_live()

    def mark_dead(self, name: str) -> None:
        descriptor = self._get(name)
        if descriptor.alive:
            descriptor.alive = False
            self._invalidate_live()

    def start_decommission(self, name: str) -> None:
        """Begin a graceful drain (no new replicas; existing ones serve)."""
        self._get(name).decommissioning = True
        self._invalidate_live()

    def decommission(self, name: str) -> None:
        """Final state: node fully out of service."""
        descriptor = self._get(name)
        descriptor.decommissioning = False
        descriptor.decommissioned = True
        self._invalidate_live()

    # -- liveness monitor ------------------------------------------------------
    @property
    def dead_after(self) -> float:
        """Seconds of heartbeat silence before a node is declared dead."""
        return self.config.heartbeat_interval * self.config.dead_node_heartbeats

    def monitor(self) -> ProcessGenerator:
        """Background process that expires silent datanodes.

        Runs forever; start it with ``env.process(manager.monitor())``.
        An :class:`~repro.sim.Interrupt` stops it cleanly — the service
        checkpoint barrier interrupts it to drain the schedule, then
        restarts a fresh one.
        """
        try:
            while True:
                yield self.env.timeout(self.config.heartbeat_interval)
                cutoff = self.env.now - self.dead_after
                for descriptor in self._datanodes.values():
                    if descriptor.alive and descriptor.last_heartbeat < cutoff:
                        descriptor.alive = False
                        self._invalidate_live()
        except Interrupt:
            return

    # -- queries ------------------------------------------------------------------
    def live_datanodes(self) -> tuple[str, ...]:
        """Schedulable datanode names, sorted; cached between transitions."""
        if self._live_cache is None:
            self._live_cache = tuple(
                sorted(d.name for d in self._datanodes.values() if d.schedulable)
            )
        return self._live_cache

    def live_set(self) -> frozenset[str]:
        """Schedulable datanode names as a frozenset (membership tests)."""
        if self._live_set_cache is None:
            self._live_set_cache = frozenset(self.live_datanodes())
        return self._live_set_cache

    def descriptor(self, name: str) -> DatanodeDescriptor:
        return self._get(name)

    def rack_of(self, name: str) -> str:
        return self._get(name).rack

    def is_alive(self, name: str) -> bool:
        return self._get(name).schedulable

    def all_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._datanodes))

    # -- snapshot protocol -------------------------------------------------
    def export_state(self) -> dict:
        """Descriptors are plain dataclasses; copy them for checkpointing."""
        return {
            "datanodes": {
                name: DatanodeDescriptor(**vars(d))
                for name, d in self._datanodes.items()
            }
        }

    def restore_state(self, state: dict) -> None:
        self._datanodes = {
            name: DatanodeDescriptor(**vars(d))
            for name, d in state["datanodes"].items()
        }
        self._invalidate_live()

    def _get(self, name: str) -> DatanodeDescriptor:
        try:
            return self._datanodes[name]
        except KeyError:
            raise KeyError(f"unknown datanode {name!r}") from None

    def __len__(self) -> int:
        return len(self._datanodes)
