"""Analytic train coalescing for the write and read hot loops.

In steady state the per-packet event cascade of a block write — buffer
token, transfer, inbox hand-off, disk write, forward, ACK relay hop — is
fully determined by the channel FIFO recurrences (every store interaction
resolves synchronously and every wait is a :meth:`Channel.quote`).  A
:class:`PacketTrain` exploits that: one *conductor* process per pipeline
computes the whole block's timeline analytically from the same quote
math, performs only the externally-observable actions in real time, and
turns O(packets × hops) heap events into O(packets) feeder waits plus a
handful of per-block milestones.

The conductor stays honest three ways:

* **Real producer interaction.**  The data-queue ``get`` for packet ``k``
  is issued at exactly the legacy issue time (the completion of packet
  ``k-1``'s first-hop send), so producer pacing, queue occupancy and the
  blocked-putter wakeup order are the real thing, not a model.
* **Channel guards.**  Train occupancy is held as a per-channel ledger of
  ``(issue, end)`` quotes rather than a committed ``busy_until``.  The
  instant a *foreign* caller quotes a guarded channel, the guard
  materialises the ledger prefix with ``issue <= now`` (those quotes are
  immutable, exactly like legacy in-flight packets) so the foreign
  transfer chains behind it, then wakes the conductor to re-plan.
* **Frozen-prefix replay.**  On any invalidation (throttle-table change,
  foreign quote) the plan is recomputed at the interruption time ``T``:
  operations whose issue time is ``< T`` keep their quotes verbatim,
  everything later is re-quoted with the current effective rates and the
  channels' real ``busy_until`` as floors.  Causality guarantees replayed
  issue times never move before ``T``, so the split is well defined.

Observable history is preserved bit-for-bit: the journal's
``block_stored`` / FNFA / ``blockReceived`` activity is produced by
spawning the *real* :meth:`BlockReceiver._local_finalize` at the
analytically-computed last-write time, receiver closes and the responder's
``block_done`` fire at the legacy timestamps, and NIC/disk/flow counters
are batch-applied at settle (nothing observes them mid-block).

The planner only accepts *pristine* windows — fresh attempt, no scheduled
fault/throttle disturbances, no co-resident foreign receivers, no other
train guarding a needed channel — and otherwise declines, falling back to
the per-packet path.  Datanode kills mid-train (only reachable through
direct, unscheduled ``kill()`` calls) settle the committed prefix and
reconstruct the client-visible recovery state per Algorithm 3.

:class:`ReadTrain` applies the same machinery to the read path: the
steady-state chunk cascade of one block read — disk prefetch of chunk
``k+1`` overlapping the transfer of chunk ``k`` — is a three-channel FIFO
recurrence (source disk, source egress, reader ingress), so a whole block
collapses into one conductor with a single end milestone.  The guard /
ledger / frozen-prefix-replay machinery is shared through
:class:`TrainBase`; reads have no producer, no ACKs and no downstream
hops, so the conductor computes the full timeline up front and only
replays on invalidation.  A mid-train datanode kill settles the
strictly-delivered chunk prefix and reports the byte count so the reader
can resume from the next-ranked replica.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING, Optional

from ..net.stats import FlowSample
from ..sim import Environment, Event, ProcessGenerator, Store, race
from ..sim.batch import HAVE_NUMPY, buffered_high_water, count_before
from .protocol import Packet

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.node import Node
    from .client.output_stream import BlockPlan
    from .client.responder import PacketResponder
    from .datanode import Datanode, ReadServe
    from .deployment import HdfsDeployment, PipelineHandle
    from .protocol import Block

__all__ = ["TrainBase", "PacketTrain", "ReadTrain", "plan_train", "plan_read_train"]


def plan_train(
    deployment: "HdfsDeployment",
    client_node: "Node",
    handle: "PipelineHandle",
    responder: "PacketResponder",
    data_queue: Store,
    plan: "BlockPlan",
    fresh: bool = True,
    batchable: bool = False,
) -> Optional["PacketTrain"]:
    """Return a ready-to-start train for this block, or ``None`` to decline.

    The predicate is deliberately conservative: any condition that could
    make the analytic timeline diverge from the per-packet one — resend
    state, a scheduled disturbance, requote-mode reservations, loopback,
    a foreign receiver sharing a hop datanode, another train already
    guarding a needed channel — falls back to the legacy path.
    """
    hdfs_cfg = deployment.config.hdfs
    if hdfs_cfg.coalesce_packets == 1:
        return None
    if 1 < hdfs_cfg.coalesce_packets < plan.n_packets:
        return None
    if deployment.network.config.requote_in_flight:
        # Preemptible reservations re-quote in flight; the train ledger
        # models immutable quotes only.
        return None
    if not fresh:
        return None  # resend attempts carry per-seq state; stay per-packet
    if deployment.scheduled_disturbances:
        # Any scheduled kill/throttle (or its aftermath: recovery and
        # re-replication traffic) makes the window non-pristine.
        return None
    if handle.error.triggered:
        return None
    receivers = handle.receivers
    if not receivers:
        return None
    hosts = [r.host for r in receivers]
    if len({client_node, *hosts}) != len(hosts) + 1:
        return None  # loopback or repeated target: shared NICs
    for receiver in receivers:
        if not receiver.datanode.node.alive:
            return None
        for other in receiver.datanode._active:
            if other is not receiver:
                return None  # foreign stream on a hop datanode
    train = PacketTrain(
        deployment, client_node, handle, responder, data_queue, plan,
        batchable=batchable,
    )
    for channel in train.channels:
        if channel._guard is not None:
            return None  # another train holds this channel's ledger
    return train


class TrainBase:
    """Guard / ledger / frozen-prefix-replay machinery shared by trains.

    A train holds its channels' occupancy *analytically*: instead of
    committing quotes to ``busy_until`` as it plans, it keeps a
    per-channel ledger of ``(issue, end)`` pairs and installs a guard on
    each channel.  A foreign quote materialises exactly the ledger prefix
    legacy would already have committed, then wakes the conductor (the
    ``_flag``) to replay the remainder with frozen-prefix semantics.
    Subclasses provide the timeline recurrences (:meth:`_replay`) and the
    conductor; everything here is recurrence-agnostic.
    """

    #: Metrics counter bumped once per conducted train.
    conducted_metric = "trains_conducted"
    #: Metrics counter bumped once per invalidation replay.
    invalidation_metric = "train_invalidation_count"

    def __init__(self, deployment: "HdfsDeployment", block: "Block"):
        self.env: Environment = deployment.env
        self.deployment = deployment
        self.network = deployment.network
        self.block = block
        self._L = self.network.config.link_latency
        self._C = self.network.config.control_latency

        #: Fires when the train's stream completes (subclass-defined time).
        self.done: Event = self.env.event()
        #: Every channel whose occupancy this train holds analytically.
        self.channels: list = []
        #: Per channel: parallel (issues, ends) lists in FIFO order.
        self._ledger: dict = {}
        self._chan_busy: dict = {}
        self._flag: Event = self.env.event()
        self._guarded: set = set()  # channel ids still holding our guard
        self._fired: set = set()
        self._milestones: list = []
        self._started = False
        self._dead = False
        self._finished = False

    # -- invalidation hooks ------------------------------------------------
    def _make_guard(self, channel):
        def guard() -> None:
            self._materialize(channel)
            self._bump()

        return guard

    def _on_throttle(self, _table) -> None:
        self._bump()

    def _bump(self) -> None:
        if not self._flag.triggered:
            self._flag.succeed()

    def _materialize(self, channel) -> None:
        """Commit the ledger prefix with ``issue <= now`` to ``busy_until``.

        Idempotent and monotone; called by the guard so a foreign quote
        chains behind exactly the train quotes that legacy would already
        have committed.
        """
        issues, ends = self._ledger[id(channel)]
        # Quotes issued at exactly ``now`` count as committed too — legacy
        # would have placed them before this foreign call's quote.
        idx = bisect_right(issues, self.env.now)
        if idx:
            end = ends[idx - 1]
            if end > channel._busy_until:
                channel._busy_until = end

    def _detach(self) -> None:
        # Only drop guards we still own: a channel released early (see
        # :meth:`_release_finished_channels`) may already carry the guard
        # of the client's *next* train.
        for channel in self.channels:
            if id(channel) in self._guarded:
                channel._guard = None
        self._guarded.clear()
        self.network.throttles.unsubscribe(self._on_throttle)

    def _release_finished_channels(self) -> None:
        """Drop guards on channels whose planned quotes are all issued.

        Once a channel's last ledger entry has been issued its occupancy
        is final from this train's perspective: commit it to
        ``busy_until`` and let foreign quotes (in particular the same
        client's next pipeline, which shares the egress NIC while this
        train is still waiting for tail ACKs) proceed guard-free.  Only
        called once the ledger is complete.
        """
        if not self._guarded:
            return
        now = self.env.now
        for channel in self.channels:
            key = id(channel)
            if key not in self._guarded:
                continue
            issues, ends = self._ledger[key]
            if issues and issues[-1] <= now:
                if ends[-1] > channel._busy_until:
                    channel._busy_until = ends[-1]
                channel._guard = None
                self._guarded.discard(key)

    # -- ledger math -------------------------------------------------------
    def _quote(self, channel, issue: float, size: int, rate: float) -> float:
        """The :meth:`Channel.quote` recurrence against the train ledger."""
        key = id(channel)
        busy = self._chan_busy[key]
        start = busy if busy > issue else issue
        end = start + size / rate
        self._chan_busy[key] = end
        issues, ends = self._ledger[key]
        issues.append(issue)
        ends.append(end)
        return end

    def _keep(self, channel, issue: float, end: float) -> float:
        """Carry a frozen (pre-invalidation) quote through a replay."""
        key = id(channel)
        if end > self._chan_busy[key]:
            self._chan_busy[key] = end
        issues, ends = self._ledger[key]
        issues.append(issue)
        ends.append(end)
        return end

    def _seed_ledger(self, channel, issues: list, ends: list) -> None:
        """Install a copied frozen prefix as a channel's replay ledger."""
        key = id(channel)
        self._ledger[key] = (issues[:], ends[:])
        if ends and ends[-1] > self._chan_busy[key]:
            self._chan_busy[key] = ends[-1]

    def _replay(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _maybe_replay(self) -> None:
        if self._flag.triggered:
            self._flag = self.env.event()
            self.deployment.metrics.count(self.invalidation_metric)
            self._replay()


class PacketTrain(TrainBase):
    """One coalesced block write: analytic timeline + real milestones."""

    def __init__(
        self,
        deployment: "HdfsDeployment",
        client_node: "Node",
        handle: "PipelineHandle",
        responder: "PacketResponder",
        data_queue: Store,
        plan: "BlockPlan",
        batchable: bool = False,
    ):
        super().__init__(deployment, handle.block)
        self.client_node = client_node
        self.handle = handle
        self.responder = responder
        self.data_queue = data_queue
        self.plan = plan
        self.receivers = handle.receivers

        self._sizes = plan.packet_sizes
        self._K = plan.n_packets
        self._total_bytes = plan.size
        self._n_hops = len(self.receivers)
        self._caps = [r.buffer_capacity for r in self.receivers]
        #: (src, dst) node pair of each hop's inbound transfer.
        self._links = [
            (client_node if h == 0 else self.receivers[h - 1].host,
             self.receivers[h].host)
            for h in range(self._n_hops)
        ]
        self._egress = [src.nic.egress for src, _dst in self._links]
        self._ingress = [dst.nic.ingress for _src, dst in self._links]
        self._disk_ch = [r.host.disk._channel for r in self.receivers]
        self._disk_rate = [r.host.disk.rate for r in self.receivers]
        seen: dict = {}
        for channel in (*self._egress, *self._ingress, *self._disk_ch):
            seen.setdefault(id(channel), channel)
        self.channels = list(seen.values())

        # ``done`` (from TrainBase) fires once the success settle has
        # completed (legacy block-done time: the head datanode's last ACK
        # reaching the client).
        #: Fires at the last packet's first-hop arrival (legacy "all
        #: packets sent" point — SMARTH's send loop resumes here).
        self.sent: Event = self.env.event()
        #: Simulated time the "sent" milestone fired (the baseline client
        #: races ``done`` rather than ``sent``, so it reads this to close
        #: its stream span at the legacy loop-exit instant).
        self.sent_at: float = 0.0
        #: Chunks actually consumed from the data queue, in order.
        self.chunks: list = []
        #: A data-queue get issued but not yet satisfied when the train
        #: was killed.  Legacy leaves the same dangling get behind; the
        #: client drains it so the produced chunk is not lost.
        self.pending_get = None
        #: Packets whose first-hop delivery completed (legacy's per-packet
        #: send loop would have recorded these as sent) — the whole block
        #: on success, the arrived prefix after an error settle.
        self.sent_count = 0

        # Per-hop timeline arrays, index = packet seq.
        self._g: list[float] = []  # feeder get completion (real)
        H = self._n_hops
        self._p = [[] for _ in range(H)]    # transfer issue
        self._ee = [[] for _ in range(H)]   # egress channel end
        self._ie = [[] for _ in range(H)]   # ingress channel end
        self._a = [[] for _ in range(H)]    # arrival (incl. link latency)
        self._w = [[] for _ in range(H)]    # disk write end
        self._u = [[] for _ in range(H)]    # ACK relayed upstream
        self._rel = [[] for _ in range(H)]  # buffer token release

        self._rates: list[float] = []
        self._old: Optional[tuple] = None  # previous arrays during replay
        self._freeze_before = 0.0

        batch_knob = deployment.config.hdfs.batch_completions == 1
        #: Batched feeder: consume every already-produced chunk in one
        #: synchronous pass with analytic get times.  Only safe when the
        #: caller proved the whole file fits the data queue (puts can
        #: never block, so early gets wake nobody).
        self._batch_feed = bool(batchable) and batch_knob
        #: Vectorized replay prefix / settle counters (numpy, bit-exact).
        self._vector = batch_knob and HAVE_NUMPY

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Quiesce the receivers, arm guards, and spawn the conductor."""
        assert not self._started
        self._started = True
        for receiver in self.receivers:
            receiver.quiesce_for_train()
        for channel in self.channels:
            channel._guard = self._make_guard(channel)
            self._guarded.add(id(channel))
        self.network.throttles.subscribe(self._on_throttle)
        # Settle synchronously inside the error event's callback chain so
        # the client (subscribed after us) resumes against settled state.
        assert self.handle.error.callbacks is not None
        self.handle.error.callbacks.append(self._on_error)
        self._snapshot_rates()
        self._chan_busy = {id(ch): ch._busy_until for ch in self.channels}
        self._ledger = {id(ch): ([], []) for ch in self.channels}
        self.deployment.metrics.count(self.conducted_metric)
        self.env.process(
            self._conduct(), name=f"train:b{self.block.block_id}"
        )

    # -- timeline math -----------------------------------------------------
    def _snapshot_rates(self) -> None:
        self._rates = [
            self.network.effective_rate(src, dst) for src, dst in self._links
        ]

    def _extend(self, k: int) -> None:
        """Compute packet ``k``'s full multi-hop row from the recurrences.

        Mirrors, hop by hop, what the per-packet processes do: first-hop
        issue gated by the feeder get and hop-0 buffer tokens, transfer
        quotes on egress+ingress, the analytic disk write at arrival,
        store-and-forward into the next hop gated by its tokens, and the
        write-and-downstream-gated ACK relay walking back to the client.
        """
        size = self._sizes[k]
        H = self._n_hops
        old = self._old
        frozen_T = self._freeze_before

        for h in range(H):
            if h == 0:
                base = self._g[k]
            else:
                # Forwarder of hop h-1: ready after its previous forward
                # landed, and the packet must have arrived at hop h-1.
                base = self._a[h - 1][k]
                if k > 0 and self._a[h][k - 1] > base:
                    base = self._a[h][k - 1]
            cap = self._caps[h]
            if k >= cap and self._rel[h][k - cap] > base:
                base = self._rel[h][k - cap]  # §IV-C buffer backpressure
            self._p[h].append(base)
            if old is not None and old[0][h][k] < frozen_T:
                ee = self._keep(self._egress[h], old[0][h][k], old[1][h][k])
                ie = self._keep(self._ingress[h], old[0][h][k], old[2][h][k])
            else:
                rate = self._rates[h]
                ee = self._quote(self._egress[h], base, size, rate)
                ie = self._quote(self._ingress[h], base, size, rate)
            self._ee[h].append(ee)
            self._ie[h].append(ie)
            arrival = (ee if ee > ie else ie) + self._L
            self._a[h].append(arrival)
            if h > 0:
                self._rel[h - 1].append(arrival)  # token freed on forward
            if old is not None and old[3][h][k] < frozen_T:
                w = self._keep(self._disk_ch[h], old[3][h][k], old[4][h][k])
            else:
                w = self._quote(
                    self._disk_ch[h], arrival, size, self._disk_rate[h]
                )
            self._w[h].append(w)

        for h in range(H - 1, -1, -1):
            ready = self._u[h][k - 1] if k > 0 else 0.0
            if self._a[h][k] > ready:
                ready = self._a[h][k]
            if self._w[h][k] > ready:
                ready = self._w[h][k]
            if h == H - 1:
                self._rel[h].append(ready)  # tail frees its token pre-ACK
            else:
                if self._u[h + 1][k] > ready:
                    ready = self._u[h + 1][k]
            self._u[h].append(ready + self._C)

    def _replay(self) -> None:
        """Frozen-prefix recompute at ``now`` with current rates/floors."""
        rows = len(self._g)
        H = self._n_hops
        # _old layout: [0]=issues(p), [1]=egress ends, [2]=ingress ends,
        # [3]=disk issues(a), [4]=disk ends(w) — see _extend's frozen path.
        self._old = (self._p, self._ee, self._ie, self._a, self._w)
        old_u, old_rel = self._u, self._rel
        frozen_T = self._freeze_before = self.env.now
        self._p = [[] for _ in range(H)]
        self._ee = [[] for _ in range(H)]
        self._ie = [[] for _ in range(H)]
        self._a = [[] for _ in range(H)]
        self._w = [[] for _ in range(H)]
        self._u = [[] for _ in range(H)]
        self._rel = [[] for _ in range(H)]
        self._snapshot_rates()
        self._chan_busy = {id(ch): ch._busy_until for ch in self.channels}
        self._ledger = {id(ch): ([], []) for ch in self.channels}

        # Vectorized batch path: a row whose *last* quote issue — the tail
        # hop's disk issue ``a[H-1][k]``, the maximum issue in the row — is
        # already frozen takes the ``_keep`` branch for every quote, so its
        # replayed values are verbatim copies.  Find that fully-frozen row
        # prefix with one searchsorted over the monotone arrival column and
        # copy it wholesale (timeline rows, per-channel ledgers, busy
        # floors) instead of re-walking it quote by quote.  Requires
        # role-unique channels (guaranteed by the planner's host checks;
        # verified cheaply here) so each ledger maps to exactly one column
        # pair.  Bit-identical by construction: copies of frozen values.
        cutoff = 0
        if self._vector and rows and len(self.channels) == 3 * H:
            cutoff = count_before(self._old[3][H - 1], frozen_T)
            if cutoff:
                for h in range(H):
                    self._p[h] = self._old[0][h][:cutoff]
                    self._ee[h] = self._old[1][h][:cutoff]
                    self._ie[h] = self._old[2][h][:cutoff]
                    self._a[h] = self._old[3][h][:cutoff]
                    self._w[h] = self._old[4][h][:cutoff]
                    self._u[h] = old_u[h][:cutoff]
                    self._rel[h] = old_rel[h][:cutoff]
                for h in range(H):
                    self._seed_ledger(self._egress[h], self._p[h], self._ee[h])
                    self._seed_ledger(self._ingress[h], self._p[h], self._ie[h])
                    self._seed_ledger(self._disk_ch[h], self._a[h], self._w[h])

        batch_feed = self._batch_feed
        for k in range(cutoff, rows):
            if batch_feed and k and self._g[k] > frozen_T:
                # This get has not been issued yet in the scalar world
                # (its analytic time lies past the invalidation): re-derive
                # it against the replayed plan, exactly as the scalar
                # conductor would re-issue it after waking here.
                issue = self._a[0][k - 1]
                self._g[k] = issue if issue > frozen_T else frozen_T
            self._extend(k)
        self._old = None
        if self._milestones:
            self._rebuild_milestones()

    # -- the conductor -----------------------------------------------------
    def _feed_available(self, k: int) -> int:
        """Batch feeder: consume the already-produced chunk prefix now.

        Every chunk sitting in the data queue at this wake is consumed in
        one synchronous pass (a get on a non-empty store resolves without
        touching the heap) with its *analytic* legacy get time recorded:
        ``max(now, a[0][k-1])`` — the instant the scalar conductor's get
        would have resolved, since the chunk is provably available by
        then.  No producer put can be blocked (the ``batchable`` gate
        guarantees the file fits the queue), so the early gets are
        observationally silent; invalidations cannot fire mid-pass
        because no simulated time passes and no events dispatch.
        """
        K = self._K
        items = self.data_queue._items
        now = self.env.now
        a0 = self._a[0]
        while k < K and items:
            issue = now if k == 0 else a0[k - 1]
            get_ev = self.data_queue.get()
            assert get_ev.triggered  # non-empty store: synchronous get
            chunk = get_ev.value
            assert chunk.seq == k and chunk.size == self._sizes[k]
            self.chunks.append(chunk)
            self._g.append(issue if issue > now else now)
            self._extend(k)
            k += 1
        return k

    def _conduct(self) -> ProcessGenerator:
        env = self.env
        K = self._K
        k = 0
        while k < K:
            if self._batch_feed:
                k = self._feed_available(k)
                if k >= K:
                    break
            # Sleep to the legacy get-issue time (completion of the
            # previous packet's first-hop send); a replay may move it.
            while True:
                self._maybe_replay()
                if self._dead:
                    return
                issue_at = env.now if k == 0 else self._a[0][k - 1]
                if env.now >= issue_at:
                    break
                timer = env.timeout_at(issue_at)
                yield race(env, timer, self._flag)
                # Invalidation may have won the race; the superseded issue
                # timer would otherwise sit in the heap until its old time.
                timer.cancel()
                if self._dead:
                    return
            get_ev = self.data_queue.get()
            self.pending_get = get_ev
            while not get_ev.triggered:
                yield race(env, get_ev, self._flag)
                if self._dead:
                    return  # pending_get stays exposed for the client
                self._maybe_replay()
            self.pending_get = None
            chunk = get_ev.value
            assert chunk.seq == k and chunk.size == self._sizes[k]
            self.chunks.append(chunk)
            self._g.append(env.now)
            self._extend(k)
            k += 1

        self._rebuild_milestones()
        while self._milestones:
            self._maybe_replay()
            if self._dead:
                return
            when, _order, kind, h = self._milestones[0]
            if env.now < when:
                timer = env.timeout_at(when)
                yield race(env, timer, self._flag)
                timer.cancel()
                if self._dead:
                    return
                continue
            self._milestones.pop(0)
            self._fire(kind, h)
        self._finished = True

    # -- milestones --------------------------------------------------------
    def _rebuild_milestones(self) -> None:
        last = self._K - 1
        milestones = []
        if "sent" not in self._fired:
            milestones.append((self._a[0][last], 0, "sent", 0))
        for h in range(self._n_hops):
            if ("fin", h) not in self._fired:
                milestones.append((self._w[h][last], 1, "fin", h))
            if ("acks", h) not in self._fired:
                milestones.append((self._u[h][last], 2, "acks", h))
        milestones.sort()
        self._milestones = milestones

    def _fire(self, kind: str, h: int) -> None:
        self._fired.add(kind if kind == "sent" else (kind, h))
        self._release_finished_channels()
        receiver = self.receivers[h]
        if kind == "sent":
            self.sent_count = self._K
            self.sent_at = self.env.now
            if not self.sent.triggered:
                self.sent.succeed()
        elif kind == "fin":
            # All packets arrived and the last disk write just landed:
            # run the *real* finalizer (journal, FNFA, blockReceived) so
            # its observable timeline and abort semantics are inherited.
            receiver._bytes_received = self._total_bytes
            done_write = Event(self.env)
            done_write._ok = True
            done_write._value = None
            done_write.callbacks = None  # already processed
            proc = self.env.process(
                receiver._local_finalize(done_write),
                name=f"fin:{receiver.name}:b{self.block.block_id}",
            )
            receiver._procs.append(proc)
        elif kind == "acks":
            # Close the receiver's trace spans at the legacy instants:
            # the ACK relay retires right now (u[h][last]); the forwarder
            # of a non-tail hop retired at the last packet's downstream
            # arrival — already past, so pass the analytic time and let
            # the exporter's canonical sort restore order.
            tracer = receiver.datanode.tracer
            tracer.end(receiver._trace_ack, self.env.now)
            if h < self._n_hops - 1:
                tracer.end(receiver._trace_fwd, self._a[h + 1][self._K - 1])
            receiver._acks_done = True
            receiver._maybe_close()
            if h == 0:
                self._settle_success()

    # -- settles -----------------------------------------------------------
    def _apply_counters(self, sent_rows: list[int], disk_rows: list[int]) -> None:
        """Batch NIC/flow/disk counters for the given per-hop row counts.

        ``sent_rows[h]`` is the number of packets whose hop-``h`` transfer
        completed (legacy applies bytes and the FlowSample at transfer
        end); ``disk_rows[h]`` counts committed disk writes (legacy
        commits ``bytes_written`` at issue).
        """
        stats = self.network.stats
        for h, (src, dst) in enumerate(self._links):
            done = sent_rows[h]
            if not done:
                continue
            moved = sum(self._sizes[:done])
            src.nic.bytes_sent += moved
            dst.nic.bytes_received += moved
            src_name, dst_name = src.name, dst.name
            p_row, a_row = self._p[h], self._a[h]
            for k in range(done):
                stats.record(
                    FlowSample(
                        src=src_name,
                        dst=dst_name,
                        size=self._sizes[k],
                        start=p_row[k],
                        end=a_row[k],
                    )
                )
        for h, receiver in enumerate(self.receivers):
            if disk_rows[h]:
                receiver.host.disk.bytes_written += sum(
                    self._sizes[: disk_rows[h]]
                )

    def _apply_max_buffered(self, upto_rows: Optional[list[int]] = None) -> None:
        """Analytic §IV-C high-water mark: occupancy at each token grant."""
        for h, receiver in enumerate(self.receivers):
            cap = self._caps[h]
            rel = self._rel[h]
            rows = len(self._p[h]) if upto_rows is None else upto_rows[h]
            high = receiver.max_buffered
            if self._vector:
                high = buffered_high_water(self._p[h], rel, cap, rows, high)
            else:
                for k in range(rows):
                    occ = k + 1 - bisect_left(rel, self._p[h][k])
                    if occ > cap:
                        occ = cap
                    if occ > high:
                        high = occ
            receiver.max_buffered = high

    def _settle_success(self) -> None:
        self._finished = True
        H = self._n_hops
        rows = [self._K] * H
        self._apply_counters(rows, rows)
        self._apply_max_buffered()
        for channel in self.channels:
            issues, ends = self._ledger[id(channel)]
            if ends and ends[-1] > channel._busy_until:
                channel._busy_until = ends[-1]
        self._detach()
        self.sent_count = self._K
        responder = self.responder
        responder.ack_queue.clear()
        responder.acked_count += self._K
        responder.acked_bytes += self._total_bytes
        responder.stop()
        if not responder.block_done.triggered:
            responder.block_done.succeed(self.block)
        self.done.succeed(self.block)

    def _on_error(self, event: Event) -> None:
        """Pipeline error mid-train: settle the committed prefix.

        Runs synchronously inside the error event's callback chain, before
        the client's race resumes, so every counter and the responder's
        recovery state are already consistent when Algorithm 3 starts.
        """
        if self._finished or self._dead:
            return
        self._dead = True
        now = self.env.now
        H = self._n_hops
        computed = len(self._g)
        # Strictly-before semantics: an action scheduled at exactly the
        # failure instant would race the kill in legacy; ties are
        # measure-zero and the conservative reading drops them.  The
        # per-hop timeline columns are nondecreasing (FIFO chains), so
        # the vectorized path takes one searchsorted per column instead
        # of a Python scan; both give the strictly-before prefix length.
        if self._vector:
            arrived = [
                min(count_before(self._a[h], now), computed, len(self._a[h]))
                for h in range(H)
            ]
            granted = [count_before(self._p[h], now) for h in range(H)]
        else:
            arrived = [
                sum(1 for k in range(min(computed, len(self._a[h])))
                    if self._a[h][k] < now)
                for h in range(H)
            ]
            granted = [
                sum(1 for k in range(len(self._p[h])) if self._p[h][k] < now)
                for h in range(H)
            ]
        self._apply_counters(arrived, arrived)
        for h, receiver in enumerate(self.receivers):
            receiver._bytes_received = sum(self._sizes[: arrived[h]])
        self._apply_max_buffered(granted)
        self.sent_count = arrived[0]
        for channel in self.channels:
            if id(channel) in self._guarded:
                self._materialize(channel)
        self._detach()
        responder = self.responder
        if self._vector:
            acked = count_before(self._u[0], now)
        else:
            acked = sum(
                1 for k in range(len(self._u[0])) if self._u[0][k] < now
            )
        responder.acked_count += acked
        responder.acked_bytes += sum(self._sizes[:acked])
        for k in range(acked, arrived[0]):
            chunk = self.chunks[k]
            responder.ack_queue.append(
                Packet(
                    block=self.block,
                    seq=chunk.seq,
                    size=chunk.size,
                    is_last=chunk.is_last_in_block,
                )
            )
        self._bump()  # wake the conductor so it can exit promptly


def plan_read_train(
    deployment: "HdfsDeployment",
    source: "Datanode",
    client_node: "Node",
    serve: "ReadServe",
    block: "Block",
    offset: int = 0,
) -> Optional["ReadTrain"]:
    """Return a ready-to-start read train, or ``None`` to decline.

    Mirrors :func:`plan_train`'s conservatism: any condition that could
    make the analytic chunk cascade diverge from the per-chunk loop —
    requote-mode reservations, a scheduled disturbance, a resumed stream
    (non-zero ``offset``), loopback, a foreign write receiver or another
    read serve sharing the source datanode, another train guarding a
    needed channel — falls back to the legacy path.
    """
    hdfs_cfg = deployment.config.hdfs
    if hdfs_cfg.coalesce_reads == 1:
        return None
    packet = hdfs_cfg.packet_size
    n_chunks = -(-block.size // packet)
    if 1 < hdfs_cfg.coalesce_reads < n_chunks:
        return None
    if deployment.network.config.requote_in_flight:
        return None
    if offset:
        return None  # resumed (post-fault) streams stay per-chunk
    if deployment.scheduled_disturbances:
        return None
    if not source.node.alive:
        return None
    if source.node is client_node:
        return None  # loopback: shared NIC roles
    if source._active:
        return None  # foreign write stream on the source datanode
    for other in source._serving:
        if other is not serve:
            return None  # another reader streaming from this source
    train = ReadTrain(deployment, source, client_node, serve, block)
    for channel in train.channels:
        if channel._guard is not None:
            return None  # another train holds this channel's ledger
    return train


class ReadTrain(TrainBase):
    """One coalesced block read: analytic chunk cascade, one milestone.

    The per-chunk read loop is a three-channel recurrence: with ``m_k``
    the instant the reader's disk wait for chunk ``k`` resolves,

    * disk prefetch of chunk ``k+1`` is quoted at ``m_k`` (chunk 0 at the
      stream start ``t0``),
    * chunk ``k``'s transfer quotes source egress + reader ingress at
      ``m_k`` and completes at ``x_k = max(e_k, i_k) + L``,
    * ``m_{k+1} = max(x_k, d_{k+1})``.

    The stream ends at ``x_{K-1}``; :attr:`done` fires there after the
    settle batch-applies disk/NIC counters and FlowSamples.  A datanode
    kill mid-train settles the strictly-delivered prefix and records
    :attr:`delivered_bytes` so the reader resumes from the next replica.
    """

    conducted_metric = "read_trains_conducted"
    invalidation_metric = "read_train_invalidation_count"

    def __init__(
        self,
        deployment: "HdfsDeployment",
        source: "Datanode",
        client_node: "Node",
        serve: "ReadServe",
        block: "Block",
    ):
        super().__init__(deployment, block)
        self.source = source
        self.client_node = client_node
        self.serve = serve

        packet = deployment.config.hdfs.packet_size
        full, tail = divmod(block.size, packet)
        self._sizes = [packet] * full + ([tail] if tail else [])
        self._K = len(self._sizes)
        self._total_bytes = block.size

        self.disk = source.node.disk
        self._disk_ch = self.disk._channel
        self._egress = source.node.nic.egress
        self._ingress = client_node.nic.ingress
        seen: dict = {}
        for channel in (self._disk_ch, self._egress, self._ingress):
            seen.setdefault(id(channel), channel)
        self.channels = list(seen.values())

        #: Bytes whose transfer had completed when the stream ended —
        #: the whole block on success, the delivered prefix after a kill.
        self.delivered_bytes = 0
        #: The dead source's name after a mid-train kill, else ``None``.
        self.failed: Optional[str] = None

        self._rate = 0.0
        self._t0 = 0.0
        # Timeline arrays, index = chunk.  _di/_d: disk quote issue/end;
        # _m: disk-wait resolution (= transfer issue); _e/_i: egress and
        # ingress ends; _x: transfer completion (incl. link latency).
        self._di: list[float] = []
        self._d: list[float] = []
        self._m: list[float] = []
        self._e: list[float] = []
        self._i: list[float] = []
        self._x: list[float] = []
        self._old: Optional[tuple] = None
        self._freeze_before = 0.0

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Arm guards and spawn the conductor (call at the stream start)."""
        assert not self._started
        self._started = True
        self._t0 = self.env.now
        for channel in self.channels:
            channel._guard = self._make_guard(channel)
            self._guarded.add(id(channel))
        self.network.throttles.subscribe(self._on_throttle)
        self.serve.on_kill = self._on_kill
        self._snapshot_rates()
        self._chan_busy = {id(ch): ch._busy_until for ch in self.channels}
        self._ledger = {id(ch): ([], []) for ch in self.channels}
        self.deployment.metrics.count(self.conducted_metric)
        self.env.process(
            self._conduct(), name=f"readtrain:b{self.block.block_id}"
        )

    # -- timeline math -----------------------------------------------------
    def _snapshot_rates(self) -> None:
        self._rate = self.network.effective_rate(
            self.source.node, self.client_node
        )

    def _extend(self, k: int) -> None:
        """Compute chunk ``k``'s row from the three-channel recurrence."""
        size = self._sizes[k]
        old = self._old
        frozen_T = self._freeze_before

        # Disk prefetch: chunk 0 is quoted at the stream start, chunk k at
        # the previous row's disk-wait resolution (the legacy loop quotes
        # the next read the instant the previous wait resolves).
        di = self._t0 if k == 0 else self._m[k - 1]
        self._di.append(di)
        if old is not None and old[0][k] < frozen_T:
            d = self._keep(self._disk_ch, old[0][k], old[1][k])
        else:
            d = self._quote(self._disk_ch, di, size, self.disk.rate)
        self._d.append(d)

        prev = self._t0 if k == 0 else self._x[k - 1]
        m = prev if prev > d else d
        self._m.append(m)

        if old is not None and old[2][k] < frozen_T:
            e = self._keep(self._egress, old[2][k], old[3][k])
            i = self._keep(self._ingress, old[2][k], old[4][k])
        else:
            e = self._quote(self._egress, m, size, self._rate)
            i = self._quote(self._ingress, m, size, self._rate)
        self._e.append(e)
        self._i.append(i)
        self._x.append((e if e > i else i) + self._L)

    def _replay(self) -> None:
        """Frozen-prefix recompute at ``now`` with current rates/floors."""
        rows = len(self._x)
        # _old layout: [0]=disk issues, [1]=disk ends, [2]=transfer
        # issues, [3]=egress ends, [4]=ingress ends — see _extend.
        self._old = (self._di, self._d, self._m, self._e, self._i)
        self._freeze_before = self.env.now
        self._di, self._d, self._m = [], [], []
        self._e, self._i, self._x = [], [], []
        self._snapshot_rates()
        self._chan_busy = {id(ch): ch._busy_until for ch in self.channels}
        self._ledger = {id(ch): ([], []) for ch in self.channels}
        for k in range(rows):
            self._extend(k)
        self._old = None
        self._rebuild_milestones()

    # -- the conductor -----------------------------------------------------
    def _rebuild_milestones(self) -> None:
        if "end" in self._fired or not self._x:
            self._milestones = []
        else:
            self._milestones = [self._x[-1]]

    def _conduct(self) -> ProcessGenerator:
        env = self.env
        # Reads have no producer: the whole timeline is computable now.
        for k in range(self._K):
            self._extend(k)
        self._rebuild_milestones()
        while self._milestones:
            self._maybe_replay()
            if self._dead:
                return
            if not self._milestones:
                break
            when = self._milestones[0]
            if env.now < when:
                timer = env.timeout_at(when)
                yield race(env, timer, self._flag)
                timer.cancel()
                if self._dead:
                    return
                continue
            self._milestones.pop(0)
            self._fired.add("end")
            self._settle_success()
        self._finished = True

    # -- settles -----------------------------------------------------------
    def _record_flows(self, rows: int) -> None:
        stats = self.network.stats
        src_name = self.source.node.name
        dst_name = self.client_node.name
        for k in range(rows):
            stats.record(
                FlowSample(
                    src=src_name,
                    dst=dst_name,
                    size=self._sizes[k],
                    start=self._m[k],
                    end=self._x[k],
                )
            )

    def _settle_success(self) -> None:
        self._finished = True
        src, dst = self.source.node, self.client_node
        src.nic.bytes_sent += self._total_bytes
        dst.nic.bytes_received += self._total_bytes
        self._record_flows(self._K)
        # Legacy commits bytes_read at each read_event issue; on success
        # every chunk was issued.
        self.disk.bytes_read += self._total_bytes
        self.delivered_bytes = self._total_bytes
        for channel in self.channels:
            issues, ends = self._ledger[id(channel)]
            if ends and ends[-1] > channel._busy_until:
                channel._busy_until = ends[-1]
        self._detach()
        self.serve.on_kill = None
        if not self.done.triggered:
            self.done.succeed(self.block)

    def _on_kill(self) -> None:
        """Source died mid-train: settle the strictly-delivered prefix.

        Runs synchronously inside :meth:`Datanode.kill` (via
        :meth:`ReadServe.abort`, which has already released the serve
        slot).  Chunks whose transfer completed strictly before now were
        delivered; the reader resumes from :attr:`delivered_bytes` on the
        next-ranked replica.
        """
        if self._finished or self._dead:
            return
        self._dead = True
        now = self.env.now
        delivered = sum(1 for x in self._x if x < now)
        issued_reads = sum(1 for di in self._di if di < now)
        moved = sum(self._sizes[:delivered])
        if moved:
            src, dst = self.source.node, self.client_node
            src.nic.bytes_sent += moved
            dst.nic.bytes_received += moved
            self._record_flows(delivered)
        self.disk.bytes_read += sum(self._sizes[:issued_reads])
        self.delivered_bytes = moved
        self.failed = self.source.name
        for channel in self.channels:
            if id(channel) in self._guarded:
                self._materialize(channel)
        self._detach()
        self._bump()  # wake the conductor so it can exit promptly
        if not self.done.triggered:
            self.done.succeed(None)
