"""Pipeline fault recovery — the paper's Algorithm 3.

When the client catches an error while transmitting a block it

1. checks the validity of parameters and closes all streams of the block
   (the caller tears the pipeline down before invoking us);
2. moves all packets in the ACK queue back to the data queue (the caller
   drains the responder);
3. loops: pick the *primary* datanode from the surviving targets, replace
   the failed node with a fresh datanode from the namenode, run
   ``recoverBlock`` (generation-stamp bump + replica sync: the primary
   copies the already-acknowledged bytes to each replacement), and retry
   with the next primary if the current one died meanwhile;
4. the caller then recreates the block streams and the ResponseProcessor
   and resends the un-ACKed packets.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...sim import ProcessGenerator
from ..protocol import Block, HdfsError, NoDatanodesAvailable

if TYPE_CHECKING:  # pragma: no cover
    from ..deployment import HdfsDeployment

__all__ = ["recover_pipeline", "RecoveryFailed"]


class RecoveryFailed(HdfsError):
    """No surviving datanode could recover the pipeline."""


def recover_pipeline(
    deployment: "HdfsDeployment",
    client_name: str,
    block: Block,
    targets: tuple[str, ...],
    failed: str,
    acked_bytes: int,
    blacklist: set[str],
    trace_parent: int = 0,
) -> ProcessGenerator:
    """Rebuild a damaged pipeline; returns ``(new_block, new_targets)``.

    ``acked_bytes`` is how much of the block every survivor already holds
    durably — replacements must be brought up to that point before the
    client resumes (the replica-sync part of ``recoverBlock``).
    """
    env = deployment.env
    namenode = deployment.namenode
    tracer = deployment.tracer
    t0 = env.now
    sid = tracer.begin(
        "recovery",
        f"client:{client_name}",
        f"b{block.block_id}",
        t0,
        parent=trace_parent,
        failed=failed,
        acked_bytes=acked_bytes,
    )
    deployment.metrics.count("recovery_count")

    survivors = [
        t
        for t in targets
        if t != failed and deployment.datanode(t).node.alive
    ]

    while True:
        if not survivors:
            tracer.end(sid, env.now, aborted=True)
            raise RecoveryFailed(
                f"block {block.block_id}: no surviving datanodes"
            )
        primary = survivors[0]
        primary_dn = deployment.datanode(primary)

        # Replace failed nodes to restore the original pipeline width,
        # degrading gracefully if the cluster has nothing left to offer.
        new_targets = list(survivors)
        needed = len(targets) - len(survivors)
        for _ in range(needed):
            try:
                extra = yield from namenode.get_additional_datanode(
                    client_name, block, new_targets, excluded=blacklist
                )
            except NoDatanodesAvailable:
                break
            new_targets.append(extra)

        # recoverBlock(primary, targets): bump the generation stamp (which
        # invalidates the failed node's stale replica), then the primary
        # syncs replacements up to the acknowledged length.
        new_block = yield from namenode.bump_generation(block)
        namenode.blocks.drop_replica(block.block_id, failed)
        for extra in new_targets[len(survivors):]:
            if acked_bytes > 0:
                yield env.process(
                    deployment.network.transfer(
                        primary_dn.node,
                        deployment.datanode(extra).node,
                        acked_bytes,
                    )
                )

        if primary_dn.node.alive:
            deployment.journal.emit(
                env.now,
                "pipeline_recovered",
                f"block:{block.block_id}",
                failed=failed,
                primary=primary,
                targets=tuple(new_targets),
                generation=new_block.generation,
            )
            tracer.end(sid, env.now, primary=primary)
            deployment.metrics.observe("recovery_duration", env.now - t0)
            return new_block, tuple(new_targets)

        # The primary died mid-recovery: Algorithm 3 line 13 — drop it
        # and try again with the next survivor.
        survivors = [
            t for t in survivors[1:] if deployment.datanode(t).node.alive
        ]
