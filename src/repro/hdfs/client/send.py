"""Shared single-hop packet send, inlined into the calling streamer.

Both write clients deliver each packet to the pipeline's first datanode
with the same three steps: reserve a buffer token, run the analytic
network transfer, hand the packet to the receiver's inbox.  Spawning a
process per packet for this costs an init event, token round-trips and a
process-termination event — at a million packets per experiment that is
the dominant allocation churn.  This helper runs the identical timeline
inside the caller's generator (see ``DataStreamer`` and ``SmarthClient``),
racing each step against the pipeline's error event exactly like an
interrupted spawned send would.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ...sim import Environment, ProcessGenerator, race

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...cluster.node import Node
    from ...net.transport import Network
    from ..protocol import Packet

__all__ = ["send_packet_inline"]


def send_packet_inline(
    env: Environment,
    network: "Network",
    src: "Node",
    receiver,
    packet: "Packet",
    error,
) -> ProcessGenerator:
    """One packet's single-hop send, inlined into the streamer.

    Identical timeline to spawning a ``send_in`` process and racing it
    against ``error`` — token reservation, analytic transfer, inbox
    hand-off — without the per-packet process (init event, token
    round-trips, process-termination event).  On a pipeline error the
    in-flight step is abandoned exactly like an interrupted send: a
    pending token grant goes to waste and an unfinished transfer never
    applies its byte counters or flow sample.  Returns the failed
    datanode's name, or ``None``.
    """
    if error.triggered:
        # The error landed while we were parked on the data queue; the
        # spawned send would have been interrupted before its init
        # event ran — no token put, no channel quotes.
        return error.value
    put = receiver._buffer_tokens.put(packet.seq)
    if not put.processed:
        yield race(env, put, error)
        # `processed`, not `triggered`: the spawned send resumed (and
        # committed its channel quotes) exactly when the token grant
        # was *processed*; a grant still in the queue when the error
        # landed was wasted on a dying process.
        if error.triggered and not put.processed:
            return error.value
    receiver.max_buffered = max(
        receiver.max_buffered, len(receiver._buffer_tokens)
    )
    done, finish = network.transfer_begin(src, receiver.host, packet.size)
    yield race(env, done, error)
    if error.triggered and not done.processed:
        return error.value
    finish()
    yield receiver.inbox.put(packet)
    if error.triggered:
        # Same-instant tie: the spawned send had already delivered the
        # packet, but the streamer still reported the failure.
        return error.value
    return None
