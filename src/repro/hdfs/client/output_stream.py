"""Client-side output stream: block/packet planning and the producer.

§II step 2: the client treats the upload as a stream, fragments it into
64 MB blocks, splits each block into 64 KB packets, and a producer thread
reads local data, checksums it and appends packets to the data queue
(``T_c`` per packet).  Production runs concurrently with transmission —
the overlap that makes §III-D's two regimes (``T_c`` ≥ vs < ``P/B``)
emerge rather than being hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...cluster.node import Node
from ...config import HdfsConfig
from ...sim import Environment, ProcessGenerator, Store

__all__ = ["ChunkSpec", "BlockPlan", "plan_file", "producer", "DATA_QUEUE_PACKETS"]

#: Hadoop 1.x caps dataQueue + ackQueue at 80 packets; we use it as the
#: producer-side data-queue depth.
DATA_QUEUE_PACKETS = 80


@dataclass(frozen=True)
class ChunkSpec:
    """One produced-but-unsent payload chunk (becomes a Packet)."""

    block_index: int
    seq: int
    size: int
    is_last_in_block: bool


@dataclass(frozen=True)
class BlockPlan:
    """Planned layout of one block before it is allocated."""

    index: int
    size: int
    packet_sizes: tuple[int, ...]

    @property
    def n_packets(self) -> int:
        return len(self.packet_sizes)


def plan_file(size: int, config: HdfsConfig) -> list[BlockPlan]:
    """Split ``size`` bytes into blocks and packets per the config.

    The final block (and final packet of each block) may be short.
    """
    if size <= 0:
        raise ValueError(f"file size must be positive, got {size}")
    plans: list[BlockPlan] = []
    offset = 0
    index = 0
    while offset < size:
        block_size = min(config.block_size, size - offset)
        packet_sizes: list[int] = []
        remaining = block_size
        while remaining > 0:
            p = min(config.packet_size, remaining)
            packet_sizes.append(p)
            remaining -= p
        plans.append(
            BlockPlan(index=index, size=block_size, packet_sizes=tuple(packet_sizes))
        )
        offset += block_size
        index += 1
    return plans


def producer(
    env: Environment,
    client_node: Node,
    plans: list[BlockPlan],
    data_queue: Store,
) -> ProcessGenerator:
    """The DataStreamer's producing half: fill the data queue at ``T_c``/packet.

    Runs for the whole file; the consuming streamer pulls chunks in order.
    """
    for plan in plans:
        for seq, psize in enumerate(plan.packet_sizes):
            # Inlined (no process spawn): production is one timeout and
            # this runs once per packet.
            yield from client_node.produce(psize)
            yield data_queue.put(
                ChunkSpec(
                    block_index=plan.index,
                    seq=seq,
                    size=psize,
                    is_last_in_block=(seq == plan.n_packets - 1),
                )
            )
