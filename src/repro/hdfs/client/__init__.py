"""Client-side HDFS write path (baseline Hadoop 1.0.3 semantics)."""

from .data_streamer import HdfsClient
from .input_stream import BlockUnavailable, HdfsReader, ReadResult
from .output_stream import BlockPlan, ChunkSpec, plan_file, producer
from .recovery import RecoveryFailed, recover_pipeline
from .responder import PacketResponder

__all__ = [
    "HdfsClient",
    "HdfsReader",
    "ReadResult",
    "BlockUnavailable",
    "PacketResponder",
    "BlockPlan",
    "ChunkSpec",
    "plan_file",
    "producer",
    "recover_pipeline",
    "RecoveryFailed",
]
