"""The HDFS read path: ``open()`` + block-by-block reads.

The paper evaluates writes, but a credible HDFS substrate must also serve
reads — and the read path is how tests verify that replicas written
through either protocol are actually usable.  Semantics follow Hadoop:

* the client asks the namenode for each block's locations;
* replica selection goes through the deployment-wide
  :meth:`~repro.hdfs.deployment.HdfsDeployment.ranked_replicas` path —
  speed-aware ranking with topology locality as the tie-break (a cold
  speed registry reduces to the classic nearest-replica order);
* each stream is admitted against the serving datanode's bounded serve
  queue (``HdfsConfig.serve_streams``, the
  ``dfs.datanode.max.transfer.threads`` analogue), so concurrent readers
  contend for real dataXceiver capacity, not just for the NIC;
* within a block, reads are chunked at packet granularity with the disk
  read of chunk *i+1* overlapping the network transfer of chunk *i*
  (Hadoop's BlockSender does the same with its transfer buffer).  With
  ``coalesce_reads`` enabled (the default) a pristine stream collapses
  into a :class:`~repro.hdfs.train.ReadTrain` — identical timeline, O(1)
  heap events per block;
* a replica co-located with the reader is served by a short-circuit
  local read (``HdfsConfig.short_circuit_reads``): a direct disk scan
  that bypasses connection setup, the serve queue and both NICs, like
  Hadoop's ``dfs.client.read.shortcircuit``;
* a source dying mid-stream does not restart the block: the reader
  re-ranks the surviving replicas and resumes from the next-best one at
  the exact byte offset already delivered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...cluster.node import Node
from ...sim import ProcessGenerator
from ..datanode import Datanode, ReadServe
from ..deployment import HdfsDeployment
from ..protocol import Block, DatanodeDead, FileNotFound, HdfsError
from ..train import plan_read_train

__all__ = ["ReadResult", "HdfsReader", "BlockUnavailable"]


class BlockUnavailable(HdfsError):
    """No live replica could serve a block."""


@dataclass
class ReadResult:
    """Outcome of one whole-file read."""

    path: str
    size: int
    start: float
    end: float
    #: (block_id, datanode) pairs actually read from, in block order.
    #: A block resumed after a mid-stream source death records the
    #: replica that completed it.
    sources: list[tuple[int, str]] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def throughput(self) -> float:
        return self.size / self.duration if self.duration > 0 else float("inf")


class HdfsReader:
    """Whole-file reader (the ``hdfs get`` counterpart of the writers)."""

    def __init__(
        self,
        deployment: HdfsDeployment,
        host: Optional[Node] = None,
        name: Optional[str] = None,
    ):
        self.deployment = deployment
        self.env = deployment.env
        self.network = deployment.network
        self.config = deployment.config
        self.node = host or deployment.cluster.client_host
        self.name = name or self.node.name
        self._rng_seed = self.config.seed ^ 0x8EAD

    # ------------------------------------------------------------------
    def get(self, path: str) -> ProcessGenerator:
        """Read all of ``path``; returns a :class:`ReadResult`."""
        namenode = self.deployment.namenode
        start = self.env.now

        yield from namenode._rpc()  # getBlockLocations round trip
        inode = namenode.namespace.get(path)
        if not inode.blocks:
            raise FileNotFound(f"{path} has no blocks")

        result = ReadResult(path=path, size=inode.size, start=start, end=start)
        for block in inode.blocks:
            source = yield from self._read_block(block)
            result.sources.append((block.block_id, source))
            # Popularity feed for replication policies (DESIGN.md §12):
            # the hotspot policy counts these to raise replica targets.
            self.deployment.policy.note_read(block.block_id, source)
        result.end = self.env.now
        return result

    # ------------------------------------------------------------------
    def _candidates(
        self, block: Block, exclude: frozenset[str] = frozenset()
    ) -> list[str]:
        """Live replica holders, best first (see ``ranked_replicas``).

        The tie-break draws from a per-(reader, block) substream rather
        than one shared reader stream, so the candidate order for a block
        does not depend on how many blocks this reader — or an
        interleaved sibling — already read.
        """
        return self.deployment.ranked_replicas(
            block,
            client=self.name,
            node=self.node,
            seed=self._rng_seed,
            exclude=exclude,
        )

    def _read_block(self, block: Block) -> ProcessGenerator:
        """Serve one block in full; returns the replica that finished it.

        Candidates are tried best-first.  A source dying mid-stream
        carries its delivered byte count out via :class:`_SourceDied`;
        the reader re-ranks the survivors and resumes the stream at that
        offset instead of re-reading the block from scratch.
        """
        offset = 0
        failed: set[str] = set()
        last_error: Exception | None = None
        while True:
            candidates = self._candidates(block, exclude=frozenset(failed))
            if not candidates:
                raise BlockUnavailable(
                    f"block {block.block_id}: no live replica"
                ) from last_error
            source = candidates[0]
            try:
                streamed = yield from self._stream_from(source, block, offset)
            except _SourceDied as err:  # resume from the next-best replica
                last_error = err
                failed.add(source)
                offset += err.streamed
                continue
            delivered = offset + streamed
            self.deployment.journal.emit(
                self.env.now,
                "read_complete",
                f"block:{block.block_id}",
                client=self.name,
                source=source,
                bytes=delivered,
                size=block.size,
            )
            return source

    # ------------------------------------------------------------------
    def _stream_from(
        self, source: str, block: Block, offset: int = 0
    ) -> ProcessGenerator:
        """Stream ``block`` from ``source`` starting at ``offset``.

        Returns the bytes streamed this attempt; raises
        :class:`_SourceDied` (carrying partial progress) if the source
        crashes underneath the stream.
        """
        datanode = self.deployment.datanode(source)
        size = block.size - offset
        if (
            datanode.node is self.node
            and self.config.hdfs.short_circuit_reads
        ):
            streamed = yield from self._short_circuit(datanode, size)
            return streamed
        if not datanode.node.alive:
            raise _SourceDied(source, 0)
        yield self.env.process(self.network.connection_setup(1))
        try:
            serve = yield from datanode.open_serve(block.block_id, self.name)
        except DatanodeDead:
            raise _SourceDied(source, 0) from None
        try:
            train = plan_read_train(
                self.deployment, datanode, self.node, serve, block, offset
            )
            if train is not None:
                train.start()
                outcome = yield train.done
                if outcome is None:  # source died mid-train
                    raise _SourceDied(source, train.delivered_bytes)
                return train.delivered_bytes
            streamed = yield from self._chunk_loop(datanode, serve, source, size)
            return streamed
        finally:
            serve.close()

    def _chunk_loop(
        self, datanode: Datanode, serve: ReadServe, source: str, size: int
    ) -> ProcessGenerator:
        """The per-chunk stream: prefetch pipeline over disk + NICs.

        The disk read of the next chunk is committed the instant the
        previous disk wait resolves, overlapping the current chunk's
        transfer — the recurrence :class:`~repro.hdfs.train.ReadTrain`
        reproduces analytically.
        """
        packet_size = self.config.hdfs.packet_size
        network = self.network
        disk = datanode.node.disk
        requote = network.config.requote_in_flight
        streamed = 0
        remaining = size
        next_chunk = min(packet_size, remaining)
        disk_done = disk.read_event(next_chunk)
        while remaining > 0:
            if not datanode.node.alive or serve.closed:
                raise _SourceDied(source, streamed)
            chunk = next_chunk
            yield disk_done
            remaining -= chunk
            if remaining > 0:
                next_chunk = min(packet_size, remaining)
                disk_done = disk.read_event(next_chunk)
            if requote:
                # Preemptible reservations need the full transfer process.
                yield self.env.process(
                    network.transfer(datanode.node, self.node, chunk)
                )
            else:
                done, finish = network.transfer_begin(
                    datanode.node, self.node, chunk
                )
                yield done
                finish()
            streamed += chunk
        return streamed

    def _short_circuit(self, datanode: Datanode, size: int) -> ProcessGenerator:
        """Short-circuit local read: scan the co-located replica's disk.

        No connection setup, no serve slot, no NIC occupancy — the block
        never crosses the network, exactly like Hadoop's
        ``dfs.client.read.shortcircuit``.  Chunked so a (self-)failing
        node is still detected at packet granularity.
        """
        disk = datanode.node.disk
        packet_size = self.config.hdfs.packet_size
        streamed = 0
        remaining = size
        while remaining > 0:
            if not datanode.node.alive:
                raise _SourceDied(datanode.name, streamed)
            chunk = min(packet_size, remaining)
            yield disk.read_event(chunk)
            remaining -= chunk
            streamed += chunk
        return streamed


class _SourceDied(HdfsError):
    """Internal: the replica being streamed from crashed.

    ``streamed`` is the byte count this attempt had fully delivered
    before the crash — the resume offset for the next replica.
    """

    def __init__(self, source: str, streamed: int = 0):
        super().__init__(f"replica {source} died mid-stream")
        self.source = source
        self.streamed = streamed
