"""The HDFS read path: ``open()`` + block-by-block reads.

The paper evaluates writes, but a credible HDFS substrate must also serve
reads — and the read path is how tests verify that replicas written
through either protocol are actually usable.  Semantics follow Hadoop:

* the client asks the namenode for each block's locations;
* it reads each block from the *nearest* replica (topology distance:
  same node < same rack < off rack), falling back to the next-nearest on
  datanode failure;
* within a block, reads are chunked at packet granularity with the disk
  read of chunk *i+1* overlapping the network transfer of chunk *i*
  (Hadoop's BlockSender does the same with its transfer buffer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...cluster.node import Node
from ...rng import substream
from ...sim import ProcessGenerator
from ..deployment import HdfsDeployment
from ..protocol import Block, FileNotFound, HdfsError

__all__ = ["ReadResult", "HdfsReader", "BlockUnavailable"]


class BlockUnavailable(HdfsError):
    """No live replica could serve a block."""


@dataclass
class ReadResult:
    """Outcome of one whole-file read."""

    path: str
    size: int
    start: float
    end: float
    #: (block_id, datanode) pairs actually read from, in block order.
    sources: list[tuple[int, str]] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def throughput(self) -> float:
        return self.size / self.duration if self.duration > 0 else float("inf")


class HdfsReader:
    """Whole-file reader (the ``hdfs get`` counterpart of the writers)."""

    def __init__(
        self,
        deployment: HdfsDeployment,
        host: Optional[Node] = None,
        name: Optional[str] = None,
    ):
        self.deployment = deployment
        self.env = deployment.env
        self.network = deployment.network
        self.config = deployment.config
        self.node = host or deployment.cluster.client_host
        self.name = name or self.node.name
        self._rng_seed = self.config.seed ^ 0x8EAD

    # ------------------------------------------------------------------
    def get(self, path: str) -> ProcessGenerator:
        """Read all of ``path``; returns a :class:`ReadResult`."""
        namenode = self.deployment.namenode
        start = self.env.now

        yield from namenode._rpc()  # getBlockLocations round trip
        inode = namenode.namespace.get(path)
        if not inode.blocks:
            raise FileNotFound(f"{path} has no blocks")

        result = ReadResult(path=path, size=inode.size, start=start, end=start)
        for block in inode.blocks:
            source = yield from self._read_block(block)
            result.sources.append((block.block_id, source))
            # Popularity feed for replication policies (DESIGN.md §12):
            # the hotspot policy counts these to raise replica targets.
            self.deployment.policy.note_read(block.block_id, source)
        result.end = self.env.now
        return result

    # ------------------------------------------------------------------
    def _candidates(self, block: Block) -> list[str]:
        """Live replica holders, nearest first (ties broken randomly).

        The tie-break draws from a per-(reader, block) substream rather
        than one shared reader stream, so the candidate order for a block
        does not depend on how many blocks this reader — or an
        interleaved sibling — already read.
        """
        namenode = self.deployment.namenode
        locations = [
            dn
            for dn in namenode.blocks.locations(block.block_id)
            if self.deployment.datanode(dn).node.alive
        ]
        substream(self._rng_seed, self.name, block.block_id).shuffle(locations)
        topology = self.network.topology
        if self.node.name in topology:
            locations.sort(key=lambda dn: topology.distance(self.node.name, dn))
        else:
            locations.sort(
                key=lambda dn: 0 if topology.rack_of(dn) == self.node.rack else 1
            )
        return locations

    def _read_block(self, block: Block) -> ProcessGenerator:
        """Stream one block from its nearest live replica."""
        last_error: Exception | None = None
        for source in self._candidates(block):
            try:
                yield from self._stream_from(source, block)
                return source
            except _SourceDied as err:  # try the next replica
                last_error = err
        raise BlockUnavailable(
            f"block {block.block_id}: no live replica"
        ) from last_error

    def _stream_from(self, source: str, block: Block) -> ProcessGenerator:
        datanode = self.deployment.datanode(source)
        packet_size = self.config.hdfs.packet_size
        yield self.env.process(self.network.connection_setup(1))

        remaining = block.size
        # Prefetch pipeline: disk read of the next chunk overlaps the
        # network transfer of the current one.
        next_chunk = min(packet_size, remaining)
        disk_read = self.env.process(datanode.node.disk.read(next_chunk))
        while remaining > 0:
            if not datanode.node.alive:
                raise _SourceDied(source)
            chunk = next_chunk
            yield disk_read
            remaining -= chunk
            if remaining > 0:
                next_chunk = min(packet_size, remaining)
                disk_read = self.env.process(datanode.node.disk.read(next_chunk))
            yield self.env.process(
                self.network.transfer(datanode.node, self.node, chunk)
            )


class _SourceDied(HdfsError):
    """Internal: the replica being streamed from crashed."""
