"""The baseline HDFS client: single-pipeline, stop-and-wait at block
boundaries (§II, Figure 1/Figure 3).

For each block, the client asks the namenode for targets, builds ONE
pipeline, streams every packet through it, and then **waits for the ACKs
of all packets from all datanodes** before requesting the next block —
the idle time SMARTH eliminates.  Fault handling follows Algorithm 3 via
:mod:`repro.hdfs.client.recovery`.
"""

from __future__ import annotations

from typing import Optional

from ...cluster.node import Node
from ...sim import ProcessGenerator, Store, race
from ..deployment import HdfsDeployment, PipelineHandle
from ..protocol import Block, DatanodeDead, Packet, WriteResult
from ..train import plan_train
from .output_stream import DATA_QUEUE_PACKETS, plan_file, producer
from .recovery import recover_pipeline
from .responder import PacketResponder
from .send import send_packet_inline

__all__ = ["HdfsClient"]


class HdfsClient:
    """Baseline write client (the paper's unmodified Hadoop 1.0.3)."""

    system = "hdfs"
    #: Whether the current upload's file fits the data queue (set per
    #: put); gates the train's batched feeder.
    _batchable = False

    def __init__(
        self,
        deployment: HdfsDeployment,
        host: Optional[Node] = None,
        name: Optional[str] = None,
    ):
        self.deployment = deployment
        self.env = deployment.env
        self.network = deployment.network
        self.config = deployment.config
        self.node = host or deployment.cluster.client_host
        self.name = name or self.node.name

    # ------------------------------------------------------------------
    def put(self, path: str, size: int) -> ProcessGenerator:
        """Upload ``size`` bytes to ``path``; returns a WriteResult.

        Drive it with ``env.run(until=env.process(client.put(...)))``.
        """
        hdfs_cfg = self.config.hdfs
        namenode = self.deployment.namenode
        tracer = self.deployment.tracer
        metrics = self.deployment.metrics
        actor = f"client:{self.name}"
        start = self.env.now
        t_upload = tracer.begin(
            "upload", actor, f"upload:{path}", start,
            size=size, system=self.system,
        )

        # Step 1: create the namespace entry.
        yield from namenode.create_file(self.name, path)

        # Step 2: producer starts filling the data queue.
        plans = plan_file(size, hdfs_cfg)
        data_queue: Store = Store(self.env, capacity=DATA_QUEUE_PACKETS)
        # When the whole file fits the queue, producer puts can never
        # block, which is what makes the train's batched feeder safe
        # (see PacketTrain._feed_available).
        self._batchable = (
            sum(p.n_packets for p in plans) <= DATA_QUEUE_PACKETS
        )
        self.env.process(
            producer(self.env, self.node, plans, data_queue),
            name=f"producer:{path}",
        )

        pipelines: list[tuple[str, ...]] = []
        recoveries = 0
        blacklist: set[str] = set()

        for plan in plans:
            result = yield from namenode.add_block(
                self.name, path, plan.size, excluded=blacklist
            )
            block, targets = result.block, result.targets
            track = f"b{block.block_id}"
            t_block = tracer.begin(
                "block", actor, track, self.env.now,
                parent=t_upload, size=plan.size,
            )
            metrics.count("blocks_total")

            produced: dict[int, Packet] = {}
            acked_seqs: set[int] = set()

            while True:  # retry loop around pipeline failures
                t_attempt = tracer.begin(
                    "pipeline", actor, track, self.env.now,
                    parent=t_block, targets=targets,
                )
                try:
                    handle = self.deployment.open_pipeline(
                        block,
                        targets,
                        self.node,
                        buffer_bytes=hdfs_cfg.socket_buffer,
                        initial_bytes=sum(produced[s].size for s in acked_seqs),
                    )
                except DatanodeDead as dead:
                    # The namenode's liveness view lags crashes by up to
                    # dead_node_heartbeats intervals, so addBlock (or a
                    # recovery) can hand out a target that is already
                    # down.  Same treatment as a mid-stream failure.
                    failed = dead.datanode
                    tracer.end(
                        t_attempt, self.env.now, aborted=True, failed=failed
                    )
                else:
                    metrics.gauge("pipelines_live", +1)
                    yield self.env.process(
                        self.network.connection_setup(len(targets))
                    )
                    responder = PacketResponder(self.env, block, handle.ack_in)

                    failed = yield from self._stream_block(
                        plan, block, handle, responder, produced, acked_seqs,
                        data_queue, track, t_attempt,
                    )
                    metrics.gauge("pipelines_live", -1)
                    if failed is None:
                        tracer.end(t_attempt, self.env.now)
                        break
                    tracer.end(
                        t_attempt, self.env.now, aborted=True, failed=failed
                    )
                    handle.teardown()
                    responder.stop()
                    responder.unacked_packets()  # drained; resent via acked_seqs

                # Algorithm 3: teardown, requeue un-ACKed, recover, retry.
                recoveries += 1
                blacklist.add(failed)
                acked_bytes = sum(produced[s].size for s in acked_seqs)
                block, targets = yield from recover_pipeline(
                    self.deployment,
                    self.name,
                    block,
                    targets,
                    failed,
                    acked_bytes,
                    blacklist,
                    trace_parent=t_block,
                )
                produced = {
                    seq: Packet(block, pkt.seq, pkt.size, pkt.is_last)
                    for seq, pkt in produced.items()
                }

            self.deployment.journal.emit(
                self.env.now,
                "pipeline_done",
                f"block:{block.block_id}",
                client=self.name,
            )
            tracer.end(t_block, self.env.now)
            pipelines.append(targets)

        # Steps 5–6: close the stream and complete the file.
        yield from namenode.complete_file(self.name, path)
        tracer.end(t_upload, self.env.now)

        return WriteResult(
            path=path,
            size=size,
            start=start,
            end=self.env.now,
            n_blocks=len(plans),
            system=self.system,
            pipelines=pipelines,
            max_concurrent_pipelines=1,
            recoveries=recoveries,
        )

    # ------------------------------------------------------------------
    def _stream_block(
        self,
        plan,
        block: Block,
        handle: PipelineHandle,
        responder: PacketResponder,
        produced: dict[int, Packet],
        acked_seqs: set[int],
        data_queue: Store,
        track: str = "",
        t_attempt: int = 0,
    ) -> ProcessGenerator:
        """Send one block's packets and wait for all ACKs (stop-and-wait).

        Returns ``None`` on success or the failed datanode's name.
        """
        tracer = self.deployment.tracer
        actor = f"client:{self.name}"
        to_send = [s for s in range(plan.n_packets) if s not in acked_seqs]
        t_stream = tracer.begin(
            "stream", actor, track, self.env.now,
            parent=t_attempt, packets=len(to_send),
        )

        # Steady-state fast path: coalesce the whole block into one
        # analytically-conducted packet train (see repro.hdfs.train).
        train = plan_train(
            self.deployment,
            self.node,
            handle,
            responder,
            data_queue,
            plan,
            fresh=not produced and not acked_seqs,
            batchable=self._batchable,
        )
        if train is not None:
            train.start()
            yield race(self.env, train.done, handle.error)
            if not train.done.triggered:
                for chunk in train.chunks:
                    produced[chunk.seq] = Packet(
                        block=block,
                        seq=chunk.seq,
                        size=chunk.size,
                        is_last=chunk.is_last_in_block,
                    )
                if train.pending_get is not None:
                    # Legacy parity: a streamer blocked on the data queue
                    # at failure time still consumes the chunk the
                    # producer eventually delivers, and recovery starts
                    # only then.
                    chunk = yield train.pending_get
                    produced[chunk.seq] = Packet(
                        block=block,
                        seq=chunk.seq,
                        size=chunk.size,
                        is_last=chunk.is_last_in_block,
                    )
                # Close the client spans at the legacy instants: if the
                # "sent" milestone fired before the failure the stream
                # span ended there and the ack wait dies now; otherwise
                # the stream span dies with the pipeline — after the
                # pending-get drain, exactly when a legacy streamer
                # parked on the data queue would have seen the error.
                if train.sent.triggered:
                    tracer.end(t_stream, train.sent_at)
                    t_ack = tracer.begin(
                        "ack", actor, track, train.sent_at, parent=t_attempt
                    )
                    tracer.end(t_ack, self.env.now, aborted=True)
                else:
                    tracer.end(t_stream, self.env.now, aborted=True)
                self._note_acked(responder, acked_seqs, to_send)
                return handle.error.value
            # Success: the legacy loop exits at the last packet's
            # first-hop arrival (= the train's "sent" milestone) and the
            # ack wait runs from there to block-done (= right now).
            tracer.end(t_stream, train.sent_at)
            t_ack = tracer.begin(
                "ack", actor, track, train.sent_at, parent=t_attempt
            )
            tracer.end(t_ack, self.env.now)
            self._note_acked(responder, acked_seqs, to_send)
            return None

        requote = self.network.config.requote_in_flight
        first = handle.receivers[0]
        for seq in to_send:
            packet = produced.get(seq)
            if packet is None:
                chunk = yield data_queue.get()
                packet = Packet(
                    block=block,
                    seq=chunk.seq,
                    size=chunk.size,
                    is_last=chunk.is_last_in_block,
                )
                produced[seq] = packet

            if requote:
                # Preemptible reservations need a dedicated process the
                # channel can re-quote; keep the spawned send.
                send = self.env.process(
                    self._send_packet(handle, packet), name=f"send:{seq}"
                )
                # race() instead of `send | handle.error`: one of these
                # waits happens per packet, and the error event is
                # untriggered on every healthy run — no Condition
                # allocation for it.
                yield race(self.env, send, handle.error)
                if handle.error.triggered:
                    if send.is_alive:
                        send.interrupt("pipeline failed")
                    tracer.end(t_stream, self.env.now, aborted=True)
                    self._note_acked(responder, acked_seqs, to_send)
                    return handle.error.value
            else:
                failed = yield from self._send_packet_inline(first, packet, handle)
                if failed is not None:
                    tracer.end(t_stream, self.env.now, aborted=True)
                    self._note_acked(responder, acked_seqs, to_send)
                    return failed
            responder.packet_sent(packet)

        tracer.end(t_stream, self.env.now)
        t_ack = tracer.begin("ack", actor, track, self.env.now, parent=t_attempt)
        # §II step 4/5: block boundary — wait for every packet's ACK.
        yield race(self.env, responder.block_done, handle.error)
        if not responder.block_done.triggered:
            tracer.end(t_ack, self.env.now, aborted=True)
            self._note_acked(responder, acked_seqs, to_send)
            return handle.error.value
        tracer.end(t_ack, self.env.now)
        self._note_acked(responder, acked_seqs, to_send)
        return None

    def _send_packet(self, handle: PipelineHandle, packet: Packet) -> ProcessGenerator:
        """Deliver one packet to the first datanode (reserve + transfer)."""
        yield from handle.receivers[0].send_in(self.node, packet)

    def _send_packet_inline(self, receiver, packet: Packet, handle: PipelineHandle):
        """One packet's inlined single-hop send (see :mod:`.send`)."""
        return (
            yield from send_packet_inline(
                self.env, self.network, self.node, receiver, packet, handle.error
            )
        )

    @staticmethod
    def _note_acked(
        responder: PacketResponder, acked_seqs: set[int], to_send: list[int]
    ) -> None:
        """Fold this attempt's acknowledged packets into the block state.

        ACKs arrive strictly in send order, so the acknowledged sequence
        numbers are a prefix of this attempt's send list.
        """
        acked_seqs.update(to_send[: responder.acked_count])
