"""The client-side PacketResponder (§II step 4).

One responder watches one pipeline's ACK stream.  The streamer appends
every sent packet to the responder's ACK queue; the responder removes
packets as their ACKs arrive and fires ``block_done`` after the last
packet of the block is acknowledged.  On pipeline failure the un-ACKed
packets are recovered from the queue (Algorithm 3 step 3 moves them back
to the data queue).
"""

from __future__ import annotations

from collections import deque

from ...sim import Environment, Event, Interrupt, Process, ProcessGenerator, Store
from ..protocol import Ack, Block, Packet

__all__ = ["PacketResponder"]


class PacketResponder:
    """Consumes ACKs for one block's pipeline."""

    def __init__(self, env: Environment, block: Block, ack_in: Store):
        self.env = env
        self.block = block
        self.ack_in = ack_in
        #: Sent-but-unacknowledged packets, in send order.
        self.ack_queue: deque[Packet] = deque()
        #: Fires (with the block) when the last packet's ACK arrives.
        self.block_done: Event = env.event()
        self.acked_bytes = 0
        self.acked_count = 0
        self._proc: Process = env.process(
            self._run(), name=f"responder:b{block.block_id}"
        )

    def packet_sent(self, packet: Packet) -> None:
        """Streamer bookkeeping: ``packet`` is now awaiting its ACK."""
        self.ack_queue.append(packet)

    def unacked_packets(self) -> list[Packet]:
        """Drain the ACK queue (recovery: back to the data queue)."""
        packets = list(self.ack_queue)
        self.ack_queue.clear()
        return packets

    def stop(self) -> None:
        """Tear the responder down (pipeline error or teardown)."""
        if self._proc.is_alive:
            self._proc.interrupt("responder stopped")

    def _run(self) -> ProcessGenerator:
        try:
            while True:
                ack: Ack = yield self.ack_in.get()
                if ack.block_id != self.block.block_id:
                    continue  # stale ACK from a recovered generation
                if not self.ack_queue:
                    continue
                expected = self.ack_queue[0]
                if ack.seq != expected.seq:
                    # ACKs are relayed in order; a mismatch means the
                    # pipeline was rebuilt — ignore the stale ACK.
                    continue
                self.ack_queue.popleft()
                self.acked_bytes += expected.size
                self.acked_count += 1
                if expected.is_last:
                    if not self.block_done.triggered:
                        self.block_done.succeed(self.block)
                    return
        except Interrupt:
            return
