"""Wiring an HDFS service deployment onto a cluster substrate.

:class:`HdfsDeployment` instantiates the namenode and one datanode service
per datanode host, registers them (heartbeats start immediately), and
provides :meth:`open_pipeline` — the §II step 3 construction both the
baseline client and SMARTH use to chain BlockReceivers with their ACK
relays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..analysis.trace import Journal
from ..cluster.builder import Cluster
from ..cluster.node import Node
from ..config import SimulationConfig
from ..obs import MetricsRegistry, Tracer
from ..policy.registry import PolicySpec, resolve_policy
from ..rng import substream
from ..sim import Environment, Event, Store
from .datanode import BlockReceiver, Datanode
from .namenode import Namenode
from .placement import PlacementPolicy
from .protocol import Block

__all__ = ["HdfsDeployment", "PipelineHandle"]


@dataclass
class PipelineHandle:
    """Client-side handle on one live block pipeline."""

    block: Block
    targets: tuple[str, ...]
    receivers: list[BlockReceiver]
    #: ACKs aggregated across the whole pipeline arrive here.
    ack_in: Store
    #: Fires with the failed datanode's name on any pipeline fault.
    error: Event
    #: FNFAs from the first datanode (SMARTH pipelines only).
    fnfa_in: Optional[Store] = None
    opened_at: float = 0.0
    closed: bool = False
    extras: dict = field(default_factory=dict)

    @property
    def first_datanode(self) -> str:
        return self.targets[0]

    def teardown(self) -> None:
        """Abort every receiver (recovery step: 'close all streams')."""
        self.closed = True
        for receiver in self.receivers:
            receiver.abort(None)


class HdfsDeployment:
    """An HDFS instance (namenode + datanodes) running on a cluster."""

    def __init__(
        self,
        cluster: Cluster,
        placement: Optional[PlacementPolicy] = None,
        config: Optional[SimulationConfig] = None,
        enable_replication_monitor: bool = True,
        observe: bool = False,
        start_services: bool = True,
        policy: PolicySpec = None,
    ):
        self.cluster = cluster
        self.config = config or cluster.config
        self.env: Environment = cluster.env
        self.network = cluster.network
        #: Structured protocol trace shared by every service on this
        #: deployment (see repro.analysis.trace).
        self.journal = Journal()
        #: Span tracing + metrics (repro.obs).  Disabled by default —
        #: every instrument call then short-circuits on one predicate.
        self.tracer = Tracer(enabled=observe)
        self.metrics = MetricsRegistry(enabled=observe)
        if observe:
            self.tracer.attach_journal(self.journal)
        #: Simulated times at which a fault/throttle disturbance is
        #: *scheduled* (FaultInjector registers them up front).  The
        #: packet-train planner consults this to refuse coalescing any
        #: window that contains a scheduled disturbance.
        self.scheduled_disturbances: list[float] = []

        self.namenode = Namenode(
            env=self.env,
            node=cluster.namenode_host,
            network=self.network,
            config=self.config.hdfs,
            placement=placement,
            seed=self.config.seed,
            journal=self.journal,
            tracer=self.tracer,
            metrics=self.metrics,
            start_monitor=start_services,
        )
        self.datanodes: dict[str, Datanode] = {}
        for host in cluster.datanode_hosts:
            datanode = Datanode(
                self.env, host, self.network, self.config.hdfs,
                tracer=self.tracer, metrics=self.metrics,
            )
            datanode.register_with(self.namenode, start_heartbeat=start_services)
            self.datanodes[host.name] = datanode

        #: The deployment-wide strategy bundle (DESIGN.md §12): ``None``
        #: resolves the ambient spec (``"default"`` unless swapped via
        #: :func:`repro.policy.use_policy`).  An explicit ``placement``
        #: argument wins over the policy's placement hook.
        self.policy = resolve_policy(policy, self)
        if placement is None:
            override = self.policy.placement()
            if override is not None:
                self.namenode.placement = override

        from .replication import ReplicationMonitor

        self.replication_monitor: Optional[ReplicationMonitor] = (
            ReplicationMonitor(self, autostart=start_services)
            if enable_replication_monitor
            else None
        )

    def client(self, host: Optional[Node] = None, name: Optional[str] = None):
        """Create a baseline write client on ``host`` (default: the
        cluster's client node)."""
        from .client.data_streamer import HdfsClient

        return HdfsClient(self, host=host, name=name)

    def datanode(self, name: str) -> Datanode:
        try:
            return self.datanodes[name]
        except KeyError:
            raise KeyError(f"unknown datanode {name!r}") from None

    def live_datanode_count(self) -> int:
        return sum(1 for d in self.datanodes.values() if d.node.alive)

    def ranked_replicas(
        self,
        block: Block,
        client: str,
        node: Node,
        seed: Optional[int] = None,
        exclude: frozenset[str] | set[str] = frozenset(),
    ) -> list[str]:
        """Live finalized holders of ``block``, best-first for ``client``.

        The single replica-selection path shared by the reader and the
        MapReduce scheduler: holders are filtered to live nodes, shuffled
        by a per-(client, block) substream (so ties left by the policy's
        sorts break seed-stably and independently of read interleaving),
        then handed to :meth:`repro.policy.Policy.rank_replicas` — speed
        ranking with locality tie-breaks by default, overridable per
        policy.  ``exclude`` drops replicas already tried this read.
        """
        if seed is None:
            seed = self.config.seed ^ 0x8EAD
        holders = [
            dn
            for dn in self.namenode.blocks.locations(block.block_id)
            if dn not in exclude and self.datanodes[dn].node.alive
        ]
        substream(seed, client, block.block_id).shuffle(holders)
        return self.policy.rank_replicas(client, block.block_id, holders, node)

    # ------------------------------------------------------------------
    def open_pipeline(
        self,
        block: Block,
        targets: tuple[str, ...],
        client_node: Node,
        want_fnfa: bool = False,
        buffer_bytes: Optional[int] = None,
        initial_bytes: int = 0,
    ) -> PipelineHandle:
        """Chain BlockReceivers across ``targets`` (§II step 3).

        Receivers are created head-first and linked; ACK stores are wired
        so each hop's relay feeds the previous hop, with the first
        datanode's ACKs landing in the handle's ``ack_in``.
        """
        env = self.env
        ack_in: Store = Store(env)
        error: Event = env.event()
        fnfa_in: Optional[Store] = Store(env) if want_fnfa else None

        receivers: list[BlockReceiver] = []
        prev: Optional[BlockReceiver] = None
        try:
            for i, name in enumerate(targets):
                datanode = self.datanode(name)
                receiver = datanode.open_receiver(
                    block=block,
                    ack_out=ack_in if i == 0 else prev.downstream_acks,
                    error=error,
                    fnfa_out=fnfa_in if i == 0 else None,
                    client_node=client_node if i == 0 else None,
                    upstream_node=client_node if i == 0 else prev.host,
                    buffer_bytes=buffer_bytes,
                    initial_bytes=initial_bytes,
                )
                if prev is not None:
                    prev.set_downstream(receiver)
                receivers.append(receiver)
                prev = receiver
        except Exception:
            # A target refused the connection (e.g. DatanodeDead): tear
            # down the receivers already chained so they don't linger as
            # phantom active streams, then let the caller recover.
            for receiver in receivers:
                receiver.abort(None)
            raise

        self.journal.emit(
            env.now,
            "pipeline_open",
            f"block:{block.block_id}",
            targets=targets,
            generation=block.generation,
            client=client_node.name,
        )
        self.metrics.count("pipelines_opened")
        return PipelineHandle(
            block=block,
            targets=targets,
            receivers=receivers,
            ack_in=ack_in,
            error=error,
            fnfa_in=fnfa_in,
            opened_at=env.now,
        )
