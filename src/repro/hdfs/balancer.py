"""The HDFS balancer: even out replica distribution across datanodes.

Write patterns skew storage: the default policy favours the client's
rack, and SMARTH's Algorithm 1 concentrates first replicas on fast
nodes.  Hadoop ships ``hdfs balancer`` to fix the skew offline; this is
its analogue.  The balancer repeatedly moves one replica from the most-
to the least-loaded datanode (never breaking replication or co-locating
two replicas of a block) until utilization spread falls under a
threshold.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..sim import ProcessGenerator
from .replication import copy_block

if TYPE_CHECKING:  # pragma: no cover
    from .deployment import HdfsDeployment

__all__ = ["Balancer", "BalanceReport"]


@dataclass
class BalanceReport:
    """Outcome of one balancer run."""

    moves: list[tuple[int, str, str]] = field(default_factory=list)
    initial_spread: int = 0
    final_spread: int = 0

    @property
    def n_moves(self) -> int:
        return len(self.moves)


class Balancer:
    """Iteratively move replicas from hot to cold datanodes."""

    def __init__(
        self,
        deployment: "HdfsDeployment",
        threshold_blocks: int = 1,
        max_moves: int = 1000,
    ):
        if threshold_blocks < 1:
            raise ValueError("threshold_blocks must be >= 1")
        self.deployment = deployment
        self.env = deployment.env
        self.namenode = deployment.namenode
        self.threshold = threshold_blocks
        self.max_moves = max_moves
        self.rng = random.Random(deployment.config.seed ^ 0xBA1A)

    # ------------------------------------------------------------------
    def utilization(self) -> dict[str, int]:
        """Finalized-replica count per live datanode."""
        blocks = self.namenode.blocks
        manager = self.namenode.datanodes
        counts = {d: 0 for d in manager.live_datanodes()}
        for name in counts:
            counts[name] = sum(
                1
                for bid in blocks.blocks_on(name)
                if name in blocks.locations(bid)
            )
        return counts

    def spread(self) -> int:
        counts = self.utilization()
        if not counts:
            return 0
        return max(counts.values()) - min(counts.values())

    # ------------------------------------------------------------------
    def run(self) -> ProcessGenerator:
        """Balance until the spread is within threshold (a process)."""
        report = BalanceReport(initial_spread=self.spread())
        while report.n_moves < self.max_moves:
            move = self._plan_one_move()
            if move is None:
                break
            block_id, source, target = move
            ok = yield from copy_block(
                self.deployment, block_id, source, target
            )
            if ok:
                # The move is copy-then-delete, like the real balancer.
                self.namenode.blocks.drop_replica(block_id, source)
                report.moves.append(move)
        report.final_spread = self.spread()
        return report

    def _plan_one_move(self) -> Optional[tuple[int, str, str]]:
        counts = self.utilization()
        if len(counts) < 2:
            return None
        hot = max(counts, key=lambda d: counts[d])
        cold = min(counts, key=lambda d: counts[d])
        if counts[hot] - counts[cold] <= self.threshold:
            return None
        blocks = self.namenode.blocks
        movable = [
            bid
            for bid in blocks.blocks_on(hot)
            if hot in blocks.locations(bid)
            and cold not in blocks.locations(bid)
        ]
        if not movable:
            return None
        return movable[self.rng.randrange(len(movable))], hot, cold
