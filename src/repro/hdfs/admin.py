"""Administrative operations: graceful datanode decommissioning.

Mirrors HDFS's exclude-file workflow: the operator marks a datanode
*decommissioning*; the namenode stops placing new replicas there while
the node keeps serving reads and acts as a replication source; its
blocks are copied to other datanodes; once every block is sufficiently
replicated elsewhere, the node flips to *decommissioned* and can be
powered off with zero data loss.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from ..sim import ProcessGenerator
from .replication import copy_block

if TYPE_CHECKING:  # pragma: no cover
    from .deployment import HdfsDeployment

__all__ = ["DecommissionManager"]


class DecommissionManager:
    """Drains one datanode's replicas onto the rest of the cluster."""

    def __init__(self, deployment: "HdfsDeployment", interval: Optional[float] = None):
        self.deployment = deployment
        self.env = deployment.env
        self.namenode = deployment.namenode
        self.interval = interval or deployment.config.hdfs.heartbeat_interval
        self.rng = random.Random(deployment.config.seed ^ 0xDEC0)
        #: (block_id, target) copies performed per drained node.
        self.copies: dict[str, list[tuple[int, str]]] = {}

    def decommission(self, name: str) -> ProcessGenerator:
        """Drive ``name`` from live to decommissioned (a process).

        Returns the number of block copies performed.
        """
        manager = self.namenode.datanodes
        blocks = self.namenode.blocks
        manager.start_decommission(name)
        self.copies[name] = []

        while True:
            pending = self._under_protected(name)
            if not pending:
                break
            for block_id in pending:
                target = self._pick_target(block_id, avoid=name)
                if target is None:
                    raise RuntimeError(
                        f"decommission {name}: no target for block {block_id}"
                    )
                ok = yield from copy_block(
                    self.deployment, block_id, source=name, target=target
                )
                if ok:
                    self.copies[name].append((block_id, target))
            yield self.env.timeout(self.interval)

        manager.decommission(name)
        return len(self.copies[name])

    # ------------------------------------------------------------------
    def _under_protected(self, name: str) -> list[int]:
        """Blocks whose off-``name`` replica count is below target."""
        blocks = self.namenode.blocks
        manager = self.namenode.datanodes
        required = self.deployment.config.hdfs.replication
        pending = []
        for block_id in blocks.blocks_on(name):
            elsewhere = [
                d
                for d in blocks.locations(block_id)
                if d != name and manager.is_alive(d)
            ]
            if name in blocks.locations(block_id) and len(elsewhere) < required:
                pending.append(block_id)
        return pending

    def _pick_target(self, block_id: int, avoid: str) -> Optional[str]:
        blocks = self.namenode.blocks
        manager = self.namenode.datanodes
        holders = set(blocks.locations(block_id)) | {avoid}
        candidates = [d for d in manager.live_datanodes() if d not in holders]
        if not candidates:
            return None
        return candidates[self.rng.randrange(len(candidates))]
