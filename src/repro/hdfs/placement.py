"""Replica placement policies.

The default HDFS policy (§V-B.1): first replica on the client itself if
the client is a datanode, otherwise a random not-too-busy node; second
replica on a different rack from the first; third on the second's rack but
a different node; further replicas anywhere.  This "offers good
reliability … at the cost of performance" — the property SMARTH's
Algorithm 1 (in :mod:`repro.smarth.global_opt`) trades differently.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from ..net.topology import Topology
from ..policy.base import PlacementPolicy
from .datanode_manager import DatanodeManager
from .protocol import NoDatanodesAvailable

# The ABC moved to repro.policy.base (DESIGN.md §12); re-exported here
# because this was its historical home and both protocols' placement
# implementations import it from here.
__all__ = ["PlacementPolicy", "DefaultPlacementPolicy"]


class DefaultPlacementPolicy(PlacementPolicy):
    """Hadoop 1.x rack-aware random placement."""

    def __init__(
        self,
        topology: Topology,
        datanodes: DatanodeManager,
        rng: random.Random,
    ):
        self.topology = topology
        self.datanodes = datanodes
        self.rng = rng

    def choose_targets(
        self,
        client: str,
        replication: int,
        excluded: Iterable[str] = (),
    ) -> tuple[str, ...]:
        if replication < 1:
            raise ValueError("replication must be >= 1")
        excluded_set = set(excluded)
        live = self.datanodes.live_datanodes()
        available: Sequence[str]
        if excluded_set:
            available = [d for d in live if d not in excluded_set]
        else:
            available = live
        if not available:
            raise NoDatanodesAvailable("no live datanodes available")
        # Hadoop's chooseTarget degrades gracefully: place on as many
        # nodes as exist, even if fewer than the replication factor.
        replication = min(replication, len(available))

        targets: list[str] = []

        # Replica 1: the client itself when it is a datanode, else random.
        if client in self.datanodes.live_set() and client not in excluded_set:
            first = client
        else:
            first = self._pick(self.rng, available)
        targets.append(first)

        # Replica 2: a different rack from the first (fall back to any).
        # One fused pass per replica: `remaining` and the rack-filtered
        # subset are built together, indexing the rack map directly —
        # placement runs once per block, and two O(hosts) scans with a
        # method call per element were a measurable slice of allocation
        # latency on 200+-datanode clusters.
        rack_map = self.topology.rack_map
        if len(targets) < replication:
            first_rack = rack_map[first]
            remaining = []
            off_rack = []
            for d in available:
                if d in targets:
                    continue
                remaining.append(d)
                if rack_map[d] != first_rack:
                    off_rack.append(d)
            second = self._pick(self.rng, off_rack or remaining)
            targets.append(second)

        # Replica 3: same rack as the second, different node (fall back).
        if len(targets) < replication:
            second_rack = rack_map[targets[1]]
            remaining = []
            same_rack = []
            for d in available:
                if d in targets:
                    continue
                remaining.append(d)
                if rack_map[d] == second_rack:
                    same_rack.append(d)
            third = self._pick(self.rng, same_rack or remaining)
            targets.append(third)

        # Any further replicas: uniform random over what's left.
        while len(targets) < replication:
            remaining = [d for d in available if d not in targets]
            targets.append(self._pick(self.rng, remaining))

        return tuple(targets)
