"""The namenode's file-system namespace.

Implements the §II step 1 checks: existence, (trivially granted)
permissions, safe mode, and single-writer leases.  Only the slice of the
namespace API the write path exercises is modelled — create, add-block
bookkeeping, and completion — but with real state transitions so tests can
assert on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .protocol import (
    Block,
    FileAlreadyExists,
    FileNotFound,
    LeaseConflict,
    SafeModeException,
)

__all__ = ["FileState", "INodeFile", "Namespace"]


class FileState(Enum):
    UNDER_CONSTRUCTION = "under_construction"
    COMPLETE = "complete"


@dataclass
class INodeFile:
    """Namespace entry for one file."""

    path: str
    client: str
    state: FileState = FileState.UNDER_CONSTRUCTION
    blocks: list[Block] = field(default_factory=list)

    @property
    def size(self) -> int:
        return sum(b.size for b in self.blocks)


class Namespace:
    """In-memory namespace with leases and safe mode."""

    def __init__(self) -> None:
        self._files: dict[str, INodeFile] = {}
        self._safe_mode = False

    # -- safe mode ---------------------------------------------------------
    @property
    def safe_mode(self) -> bool:
        return self._safe_mode

    def enter_safe_mode(self) -> None:
        self._safe_mode = True

    def leave_safe_mode(self) -> None:
        self._safe_mode = False

    def _check_writable(self) -> None:
        if self._safe_mode:
            raise SafeModeException("namenode is in safe mode")

    # -- write path --------------------------------------------------------
    def create(self, path: str, client: str, overwrite: bool = False) -> INodeFile:
        """§II step 1: validate and create a namespace entry."""
        self._check_writable()
        if not path.startswith("/"):
            raise ValueError(f"path must be absolute, got {path!r}")
        existing = self._files.get(path)
        if existing is not None and not overwrite:
            raise FileAlreadyExists(path)
        inode = INodeFile(path=path, client=client)
        self._files[path] = inode
        return inode

    def get(self, path: str) -> INodeFile:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFound(path) from None

    def check_lease(self, path: str, client: str) -> INodeFile:
        """Verify ``client`` holds the single-writer lease on ``path``."""
        inode = self.get(path)
        if inode.state is not FileState.UNDER_CONSTRUCTION:
            raise LeaseConflict(f"{path} is not under construction")
        if inode.client != client:
            raise LeaseConflict(
                f"{path} is leased by {inode.client!r}, not {client!r}"
            )
        return inode

    def append_block(self, path: str, client: str, block: Block) -> None:
        """Record a freshly allocated block on the file."""
        self._check_writable()
        inode = self.check_lease(path, client)
        inode.blocks.append(block)

    def replace_block(self, path: str, block: Block) -> None:
        """Swap a block entry after a generation-stamp bump (recovery)."""
        inode = self.get(path)
        for i, existing in enumerate(inode.blocks):
            if existing.block_id == block.block_id:
                inode.blocks[i] = block
                return
        raise FileNotFound(f"block {block.block_id} not on {path}")

    def complete(self, path: str, client: str) -> INodeFile:
        """§II step 6: the client signals all ACKs received."""
        self._check_writable()
        inode = self.check_lease(path, client)
        inode.state = FileState.COMPLETE
        return inode

    def exists(self, path: str) -> bool:
        return path in self._files

    def files(self) -> tuple[str, ...]:
        return tuple(sorted(self._files))

    # -- snapshot protocol ---------------------------------------------------
    def export_state(self) -> dict:
        """Plain-data state for checkpointing (inodes are plain dataclasses)."""
        return {"files": dict(self._files), "safe_mode": self._safe_mode}

    def restore_state(self, state: dict) -> None:
        self._files = dict(state["files"])
        self._safe_mode = bool(state["safe_mode"])

    def __len__(self) -> int:
        return len(self._files)
