"""Background re-replication of under-replicated blocks.

Real HDFS's namenode continuously scans for blocks whose live replica
count dropped below the target (a datanode died, a disk failed) and
schedules copies from a surviving holder to a fresh target.  The write
path's pipeline recovery (Algorithms 3/4) only protects blocks *being
written*; this monitor is what heals blocks that lose replicas *after*
their file completed — without it, the fault story of any HDFS
reproduction is only half told.

Model:

* every ``interval`` the monitor diffs the block manager against the
  liveness map (dead nodes' replicas are dropped, mirroring HDFS
  processing a dead node's block list);
* each under-replicated, COMPLETE block gets one replication task:
  a surviving holder streams the block to a new target (rack-aware:
  prefer a rack not yet holding a replica), which writes it to disk and
  reports ``blockReceived``;
* per-source concurrency is capped (HDFS's
  ``dfs.namenode.replication.max-streams`` analogue).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from ..sim import Interrupt, ProcessGenerator
from .protocol import BlockState

if TYPE_CHECKING:  # pragma: no cover
    from ..policy.base import ReplicationPolicy
    from .deployment import HdfsDeployment

__all__ = ["ReplicationMonitor", "copy_block"]


def copy_block(
    deployment: "HdfsDeployment", block_id: int, source: str, target: str
) -> ProcessGenerator:
    """Stream one block replica from ``source`` to ``target``.

    The shared primitive behind background re-replication and graceful
    decommissioning: disk read at the source, one network transfer, disk
    write at the target, then ``blockReceived`` (dropped if the target
    died mid-copy).
    """
    namenode = deployment.namenode
    env = deployment.env
    info = namenode.blocks.info(block_id)
    size = info.block.size
    src_dn = deployment.datanode(source)
    dst_dn = deployment.datanode(target)
    read = env.process(src_dn.node.disk.read(size))
    yield env.process(
        deployment.network.transfer(src_dn.node, dst_dn.node, size)
    )
    yield read
    yield env.process(dst_dn.node.disk.write(size))
    if dst_dn.node.alive:
        namenode.block_received(block_id, target, size)
        return True
    return False


class ReplicationMonitor:
    """Namenode-side healing of under-replicated complete blocks."""

    def __init__(
        self,
        deployment: "HdfsDeployment",
        interval: Optional[float] = None,
        max_streams_per_source: int = 2,
        autostart: bool = True,
        policy: Optional["ReplicationPolicy"] = None,
    ):
        self.deployment = deployment
        self.env = deployment.env
        self.namenode = deployment.namenode
        config = deployment.config.hdfs
        #: Scan period; defaults to one heartbeat interval.
        self.interval = interval or config.heartbeat_interval
        self.max_streams_per_source = max_streams_per_source
        self.replication = config.replication
        #: Replica-count/selection strategy (DESIGN.md §12); defaults to
        #: the deployment policy's, whose stock implementation consumes
        #: this monitor's RNG in exactly the historical order.
        self.policy = policy if policy is not None else (
            deployment.policy.replication()
        )

        #: Blocks with an in-flight replication task.
        self._in_flight: set[int] = set()
        #: Per-source active stream counts.
        self._streams: dict[str, int] = {}
        #: Completed re-replications (for tests/reporting).
        self.completed: list[tuple[int, str, str]] = []
        #: Replicas dropped by the excess pass (for tests/reporting).
        self.removed: list[tuple[int, str]] = []
        self.rng = random.Random(deployment.config.seed ^ 0x9EA1)
        self._proc = None
        if autostart:
            self.start()

    def start(self) -> None:
        """(Re)start the scan loop if it is not running."""
        if self._proc is None or not self._proc.is_alive:
            self._proc = self.env.process(self._run(), name="nn:replication")

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("monitor stopped")

    # ------------------------------------------------------------------
    def _run(self) -> ProcessGenerator:
        try:
            while True:
                yield self.env.timeout(self.interval)
                self._sweep_dead_nodes()
                for task in self._plan():
                    block_id, source, target = task
                    self._in_flight.add(block_id)
                    self._streams[source] = self._streams.get(source, 0) + 1
                    self.env.process(
                        self._replicate(block_id, source, target),
                        name=f"rerepl:b{block_id}",
                    )
                if self.policy.manages_excess:
                    self._trim_excess()
        except Interrupt:
            return

    def _sweep_dead_nodes(self) -> None:
        """Drop replicas hosted on namenode-declared-dead datanodes.

        Checks machine liveness, not schedulability: a *decommissioning*
        node is unschedulable but its replicas still exist and still
        serve — sweeping them would fight the decommission drain.
        """
        manager = self.namenode.datanodes
        for name in manager.all_names():
            if not manager.descriptor(name).alive:
                self.namenode.blocks.remove_datanode(name)

    def _plan(self) -> list[tuple[int, str, str]]:
        """One (block, source, target) task per healable block.

        Per-block targets and the source/target picks come from the
        replication policy; with the stock policy the scan bound equals
        the configured factor and both picks consume ``self.rng`` in the
        historical order, so the plan is byte-identical to the
        pre-policy monitor.
        """
        blocks = self.namenode.blocks
        manager = self.namenode.datanodes
        topology = self.deployment.network.topology
        live = set(manager.live_datanodes())
        now = self.env.now
        tasks: list[tuple[int, str, str]] = []

        for block_id in blocks.under_replicated(self.policy.scan_replication()):
            if block_id in self._in_flight:
                continue
            info = blocks.info(block_id)
            if info.state is not BlockState.COMPLETE:
                continue  # the writing client's recovery owns this block
            if info.finalized_replicas >= self.policy.target_replication(
                block_id, now
            ):
                continue  # scanned only because the policy widened the bound
            holders = [d for d in blocks.locations(block_id) if d in live]
            if not holders:
                continue  # unrecoverable: no live replica at all
            sources = [
                s
                for s in holders
                if self._streams.get(s, 0) < self.max_streams_per_source
            ]
            if not sources:
                continue
            source = self.policy.select_source(self.rng, sources)
            target = self.policy.select_target(
                self.rng, holders, live, topology
            )
            if target is None:
                continue
            tasks.append((block_id, source, target))
        return tasks

    def _trim_excess(self) -> None:
        """Drop replicas the policy deems excess (hotspot cool-down).

        Only runs for policies with ``manages_excess``; never shrinks a
        block below the configured replication factor, and leaves blocks
        with in-flight copy tasks alone.
        """
        blocks = self.namenode.blocks
        live = set(self.namenode.datanodes.live_datanodes())
        now = self.env.now
        for info in blocks.all_blocks():
            if info.state is not BlockState.COMPLETE:
                continue
            block_id = info.block.block_id
            if block_id in self._in_flight:
                continue
            holders = [d for d in blocks.locations(block_id) if d in live]
            victims = self.policy.excess_replicas(block_id, holders, now)
            for victim in victims:
                if len(holders) <= self.replication:
                    break  # durability floor: never trim below base
                if victim not in holders:
                    continue
                holders.remove(victim)
                blocks.drop_replica(block_id, victim)
                self.removed.append((block_id, victim))
                self.deployment.journal.emit(
                    now,
                    "replica_trimmed",
                    f"block:{block_id}",
                    datanode=victim,
                )
                self.deployment.metrics.count("replicas_trimmed")

    def _replicate(self, block_id: int, source: str, target: str) -> ProcessGenerator:
        """One bookkept :func:`copy_block` task."""
        try:
            ok = yield from copy_block(self.deployment, block_id, source, target)
            if ok:
                self.completed.append((block_id, source, target))
        finally:
            self._in_flight.discard(block_id)
            self._streams[source] = max(0, self._streams.get(source, 0) - 1)
