"""Datanode service: block receivers, packet forwarding, ACK relay.

Each block write opens a :class:`BlockReceiver` on every pipeline datanode
(§II step 3).  A receiver:

* admits packets through a **token-based buffer** (flow control: the
  upstream sender reserves buffer space *before* transmitting, exactly
  like TCP windows over a bounded receive buffer).  The buffer is the
  paper's §IV-C first-datanode buffer — one block (64 MB) for SMARTH, a
  few MB of socket buffering for baseline HDFS;
* stores each packet (asynchronous disk write, ``T_w``) as it arrives,
  **independently of forwarding** — so receiving is paced by the upstream
  link, not by slower downstream hops;
* forwards packets downstream from the buffer in a separate loop
  (store-and-forward per packet, like Hadoop's BlockReceiver mirroring),
  releasing buffer space as packets leave;
* relays ACKs client-ward only after *both* its own disk write and the
  downstream ACK for that packet completed — an ACK reaching the client
  proves the whole pipeline stored the packet (§II step 4);
* finalizes the block *locally* once every packet is received and
  written: this is when SMARTH's FNFA fires (§III-A step 3) — crucially
  independent of downstream progress, which is what lets a SMARTH client
  move to the next block while slower replicas trail behind — and when
  ``blockReceived`` is reported to the namenode.

Failure model: killing a datanode interrupts its receivers and fires each
affected pipeline's error signal (the socket-reset analogue); peers
touching a dead node fire the same signal.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..cluster.node import Node
from ..config import HdfsConfig
from ..net.transport import Network
from ..obs import DISABLED_METRICS, DISABLED_TRACER, MetricsRegistry, Tracer
from ..sim import (
    Environment,
    Event,
    Interrupt,
    Process,
    ProcessGenerator,
    Resource,
    Store,
)
from .protocol import FNFA, Ack, Block, DatanodeDead, Packet

if TYPE_CHECKING:  # pragma: no cover
    from typing import Callable

    from ..sim import Request
    from .namenode import Namenode

__all__ = ["Datanode", "BlockReceiver", "ReadServe", "trigger_pipeline_error"]


def trigger_pipeline_error(error: Event, failed_datanode: str) -> None:
    """Fire a pipeline's shared error signal exactly once."""
    if not error.triggered:
        error.succeed(failed_datanode)


class BlockReceiver:
    """Per-block receiving state machine on one datanode."""

    def __init__(
        self,
        datanode: "Datanode",
        block: Block,
        ack_out: Store,
        error: Event,
        buffer_bytes: int,
        downstream: Optional["BlockReceiver"] = None,
        fnfa_out: Optional[Store] = None,
        client_node: Optional[Node] = None,
        upstream_node: Optional[Node] = None,
        initial_bytes: int = 0,
    ):
        self.datanode = datanode
        self.env: Environment = datanode.env
        self.block = block
        self.ack_out = ack_out
        self.error = error
        self.downstream = downstream
        self.fnfa_out = fnfa_out
        self.client_node = client_node
        #: Where our ACKs physically go: the client for the first datanode,
        #: the previous datanode otherwise.
        self.upstream_node = (
            upstream_node if upstream_node is not None else datanode.node
        )

        config = datanode.config
        # Floor of 4 packets: with a coarse simulation granularity the
        # byte-denominated buffer could drop to a single packet, which
        # would serialize receive/forward into stop-and-wait — an artifact
        # of granularity, not of the modelled protocol (real TCP windows
        # always cover several packets).
        capacity = max(4, buffer_bytes // config.packet_size)
        #: Buffer tokens: senders reserve space here before transmitting;
        #: a full buffer blocks the upstream — backpressure (§IV-C).
        self._buffer_tokens: Store = Store(self.env, capacity=capacity)
        self.buffer_capacity = capacity
        #: High-water mark of buffer occupancy (verifies §IV-C's bound).
        self.max_buffered = 0
        #: Received packets awaiting processing (space already accounted
        #: for by the token the sender holds on our behalf).
        self.inbox: Store = Store(self.env)
        #: Packets stored locally, awaiting forwarding downstream.
        self._forward_queue: Store = Store(self.env)
        #: ACKs arriving from the downstream receiver (None for the tail).
        self.downstream_acks: Store = Store(self.env)

        self._write_done: dict[int, Event] = {}
        self._writes_announced: Store = Store(self.env)
        #: Bytes of this block already durable locally before this receiver
        #: opened (non-zero only when a pipeline is rebuilt by recovery).
        self._bytes_received = initial_bytes
        self._finalized = False
        self._acks_done = False
        self._aborted = False

        # Span-granularity tracing: one store/forward/ack span per block
        # per hop, identical in legacy and packet-train mode (the train
        # closes them at the analytically identical times).
        tracer = datanode.tracer
        actor = f"datanode:{datanode.name}"
        bt = f"b{block.block_id}"
        now = self.env.now
        self._trace_store = tracer.begin("store", actor, f"{bt}:store", now)
        self._trace_ack = tracer.begin("ack_relay", actor, f"{bt}:ack", now)
        self._trace_fwd = 0  # opened by _start_forwarder on non-tail hops

        label = f"{datanode.name}:b{block.block_id}"
        self._procs: list[Process] = [
            self.env.process(self._run(), name=f"recv:{label}"),
            self.env.process(self._ack_loop(), name=f"ackr:{label}"),
        ]
        if downstream is not None:  # may also be linked via set_downstream
            self._start_forwarder()

    # -- public ------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.datanode.name

    @property
    def host(self) -> Node:
        return self.datanode.node

    @property
    def bytes_received(self) -> int:
        return self._bytes_received

    @property
    def buffered_packets(self) -> int:
        """Packets currently occupying buffer space (for buffer tests)."""
        return len(self._buffer_tokens)

    @property
    def finalized(self) -> bool:
        """True once the block is fully received and stored locally."""
        return self._finalized

    def set_downstream(self, receiver: "BlockReceiver") -> None:
        """Link the next pipeline hop (done while wiring, before any packet
        can arrive — receivers are created head-first by ``open_pipeline``)."""
        self.downstream = receiver
        self._start_forwarder()

    def send_in(self, src_node: Node, packet: Packet) -> ProcessGenerator:
        """Upstream-facing: reserve buffer space, transfer, enqueue.

        This is the only way packets enter a receiver; the buffer token is
        held until the packet leaves (forwarded, or written on the tail).
        """
        yield self._buffer_tokens.put(packet.seq)
        self.max_buffered = max(self.max_buffered, len(self._buffer_tokens))
        yield from self.datanode.network.transfer(src_node, self.host, packet.size)
        yield self.inbox.put(packet)

    def quiesce_for_train(self) -> None:
        """Stop the per-packet loops so a packet train can take over.

        The receiver stays registered with its datanode (observability:
        ``active_receivers``, the buffer monitor, kill-the-busy-node fault
        picks) and :meth:`abort` still works; only the recv/forward/ACK
        processes are retired.  The train performs their externally
        observable actions — finalize, FNFA, blockReceived, close — at
        the analytically identical times.
        """
        for proc in self._procs:
            if proc.is_alive and proc is not self.env.active_process:
                proc.interrupt("packet train takeover")

    def abort(self, failed_datanode: str | None = None) -> None:
        """Tear the receiver down (datanode death or pipeline recovery)."""
        if self._aborted:
            return
        self._aborted = True
        if failed_datanode is not None:
            trigger_pipeline_error(self.error, failed_datanode)
        tracer = self.datanode.tracer
        now = self.env.now
        tracer.end(self._trace_store, now, aborted=True)
        tracer.end(self._trace_fwd, now, aborted=True)
        tracer.end(self._trace_ack, now, aborted=True)
        for proc in self._procs:
            # A receiver loop may abort its own receiver (e.g. on seeing a
            # dead peer); it returns by itself, so never self-interrupt.
            if proc.is_alive and proc is not self.env.active_process:
                proc.interrupt("receiver aborted")
        self.datanode._receiver_closed(self)

    # -- internals ----------------------------------------------------------
    def _start_forwarder(self) -> None:
        self._trace_fwd = self.datanode.tracer.begin(
            "forward",
            f"datanode:{self.datanode.name}",
            f"b{self.block.block_id}:forward",
            self.env.now,
        )
        self._procs.append(
            self.env.process(
                self._forward_loop(),
                name=f"fwd:{self.name}:b{self.block.block_id}",
            )
        )

    def _run(self) -> ProcessGenerator:
        """Receive loop: store locally at link speed, hand to forwarder."""
        try:
            while True:
                packet: Packet = yield self.inbox.get()
                if not self.datanode.node.alive:
                    self.abort(self.name)
                    return
                self._bytes_received += packet.size

                # Analytic disk write: commit the occupancy now, keep the
                # completion event so the ACK relay can await durability.
                write = self.datanode.node.disk.write_event(packet.size)
                self._write_done[packet.seq] = write
                yield self._writes_announced.put(packet)
                yield self._forward_queue.put(packet)

                if packet.is_last:
                    # The disk channel is FIFO, so waiting for the last
                    # packet's write means the whole block is stored.
                    self._procs.append(
                        self.env.process(
                            self._local_finalize(write),
                            name=f"fin:{self.name}:b{self.block.block_id}",
                        )
                    )
                    return
        except Interrupt:
            return

    def _forward_loop(self) -> ProcessGenerator:
        """Mirror packets downstream, freeing buffer space as they leave."""
        try:
            while True:
                packet: Packet = yield self._forward_queue.get()
                assert self.downstream is not None
                if not self.downstream.host.alive:
                    self.abort(self.downstream.name)
                    return
                yield from self.downstream.send_in(self.host, packet)
                yield self._buffer_tokens.get()  # space freed
                if packet.is_last:
                    self.datanode.tracer.end(self._trace_fwd, self.env.now)
                    return
        except Interrupt:
            return

    def _local_finalize(self, last_write: Event) -> ProcessGenerator:
        """All packets received: store complete → FNFA + blockReceived.

        Runs as its own process so it does **not** wait for downstream
        ACKs — the whole point of SMARTH's FNFA.
        """
        try:
            if not last_write.processed:
                yield last_write
            self._finalized = True
            self.datanode.tracer.end(
                self._trace_store, self.env.now, bytes=self._bytes_received
            )
            if self.datanode.namenode is not None:
                self.datanode.namenode.journal.emit(
                    self.env.now,
                    "block_stored",
                    f"block:{self.block.block_id}",
                    datanode=self.name,
                    bytes=self._bytes_received,
                    fnfa=self.fnfa_out is not None,
                )
            if self.fnfa_out is not None and self.client_node is not None:
                yield from self.datanode.network.send_control(
                    self.datanode.node, self.client_node
                )
                yield self.fnfa_out.put(
                    FNFA(
                        block_id=self.block.block_id,
                        datanode=self.name,
                        finished_at=self.env.now,
                    )
                )
            yield self.env.process(
                self.datanode.report_block_received(self.block, self._bytes_received)
            )
            self._maybe_close()
        except Interrupt:
            return

    def _ack_loop(self) -> ProcessGenerator:
        """Relay ACKs client-ward in packet order."""
        network: Network = self.datanode.network
        try:
            while True:
                packet: Packet = yield self._writes_announced.get()
                if self.downstream is not None:
                    yield self.downstream_acks.get(
                        filter=lambda a, s=packet.seq: a.seq == s
                    )
                write = self._write_done[packet.seq]
                if not write.processed:
                    yield write
                del self._write_done[packet.seq]
                if self.downstream is None:
                    # Tail node: the packet leaves memory once written.
                    yield self._buffer_tokens.get()

                # Inlined (no process spawn): this runs once per packet per
                # pipeline hop, and a control send is only a latency wait.
                yield from network.send_control(
                    self.datanode.node, self.upstream_node
                )
                yield self.ack_out.put(
                    Ack(block_id=self.block.block_id, seq=packet.seq, ok=True)
                )

                if packet.is_last:
                    self.datanode.tracer.end(self._trace_ack, self.env.now)
                    self._acks_done = True
                    self._maybe_close()
                    return
        except Interrupt:
            return

    def _maybe_close(self) -> None:
        if self._finalized and self._acks_done:
            self.datanode._receiver_closed(self)


class ReadServe:
    """One admitted read stream on a datanode (a dataXceiver analogue).

    Created by :meth:`Datanode.open_serve` once a serve slot is granted;
    the holder must call :meth:`close` when the stream ends (successfully
    or not) to free the slot for queued readers.  :meth:`Datanode.kill`
    aborts open serves, firing ``on_kill`` so analytically-conducted
    streams (read trains) can unwind at the instant of death — the legacy
    per-chunk loop instead notices the dead node on its next iteration,
    exactly as it always has.
    """

    __slots__ = ("datanode", "block_id", "client", "on_kill", "_request", "_closed")

    def __init__(
        self,
        datanode: "Datanode",
        request: "Request",
        block_id: int,
        client: str,
    ):
        self.datanode = datanode
        self.block_id = block_id
        self.client = client
        #: Optional hook fired when the serving datanode dies mid-stream.
        self.on_kill: Optional["Callable[[], None]"] = None
        self._request = request
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the serve slot (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.datanode._serve_closed(self)

    def abort(self) -> None:
        """Datanode died: free the slot and notify the stream."""
        if self._closed:
            return
        self.close()
        if self.on_kill is not None:
            self.on_kill()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return (
            f"<ReadServe {self.datanode.name} b{self.block_id} "
            f"-> {self.client} {state}>"
        )


class Datanode:
    """The datanode service running on one cluster node."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        network: Network,
        config: HdfsConfig,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.env = env
        self.node = node
        self.network = network
        self.config = config
        self.tracer = tracer if tracer is not None else DISABLED_TRACER
        self.metrics = metrics if metrics is not None else DISABLED_METRICS
        self.namenode: Optional["Namenode"] = None
        self._active: set[BlockReceiver] = set()
        self._heartbeat_proc: Optional[Process] = None
        #: FIFO serve-slot admission for read streams (the
        #: ``dfs.datanode.max.transfer.threads`` analogue): at most
        #: ``serve_streams`` concurrent readers, the rest queue.
        self._serve_slots = Resource(env, capacity=config.serve_streams)
        self._serving: set[ReadServe] = set()

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def active_receivers(self) -> int:
        return len(self._active)

    @property
    def receivers(self) -> tuple[BlockReceiver, ...]:
        """The currently open receivers (observability for monitors)."""
        return tuple(self._active)

    @property
    def active_serves(self) -> int:
        """Read streams currently holding a serve slot."""
        return len(self._serving)

    @property
    def serve_queue_len(self) -> int:
        """Readers waiting for a serve slot."""
        return self._serve_slots.queue_len

    # -- namenode liaison ----------------------------------------------------
    def register_with(
        self, namenode: "Namenode", start_heartbeat: bool = True
    ) -> None:
        self.namenode = namenode
        namenode.register_datanode(self.name, self.node.rack)
        if start_heartbeat:
            self._heartbeat_proc = self.env.process(
                self._heartbeat_loop(), name=f"hb:{self.name}"
            )

    def stop_heartbeats(self) -> None:
        """Interrupt the heartbeat loop (checkpoint barriers; no-op if idle)."""
        if self._heartbeat_proc is not None and self._heartbeat_proc.is_alive:
            self._heartbeat_proc.interrupt("heartbeats stopped")

    def _heartbeat_loop(self) -> ProcessGenerator:
        assert self.namenode is not None
        interval = self.config.heartbeat_interval
        try:
            while True:
                yield self.env.timeout(interval)
                if not self.node.alive:
                    return
                yield from self.network.send_control(self.node, self.namenode.node)
                self.namenode.datanode_heartbeat(self.name)
        except Interrupt:
            return

    def register_heartbeats_again(self) -> None:
        """Restart the heartbeat loop after the machine recovers.

        The namenode sees the node as live again on the next beat (its
        liveness is purely heartbeat-driven).
        """
        if self.namenode is None:
            return
        if self._heartbeat_proc is None or not self._heartbeat_proc.is_alive:
            self._heartbeat_proc = self.env.process(
                self._heartbeat_loop(), name=f"hb:{self.name}"
            )

    def report_block_received(self, block: Block, size: int) -> ProcessGenerator:
        """Send blockReceived to the namenode (control message)."""
        if self.namenode is None or not self.node.alive:
            return
        yield from self.network.send_control(self.node, self.namenode.node)
        self.namenode.block_received(block.block_id, self.name, size)

    # -- pipeline participation ------------------------------------------------
    def open_receiver(
        self,
        block: Block,
        ack_out: Store,
        error: Event,
        downstream: Optional[BlockReceiver] = None,
        fnfa_out: Optional[Store] = None,
        client_node: Optional[Node] = None,
        upstream_node: Optional[Node] = None,
        buffer_bytes: Optional[int] = None,
        initial_bytes: int = 0,
    ) -> BlockReceiver:
        """Start receiving one block; returns the receiver handle."""
        if not self.node.alive:
            raise DatanodeDead(self.name)
        receiver = BlockReceiver(
            datanode=self,
            block=block,
            ack_out=ack_out,
            error=error,
            buffer_bytes=buffer_bytes or self.config.block_size,
            downstream=downstream,
            fnfa_out=fnfa_out,
            client_node=client_node,
            upstream_node=upstream_node,
            initial_bytes=initial_bytes,
        )
        self._active.add(receiver)
        return receiver

    def _receiver_closed(self, receiver: BlockReceiver) -> None:
        self._active.discard(receiver)

    # -- read serving --------------------------------------------------------
    def open_serve(self, block_id: int, client: str) -> ProcessGenerator:
        """Admit one read stream; yields until a serve slot is granted.

        Returns a :class:`ReadServe` handle (``serve = yield from
        datanode.open_serve(...)``).  Any admission wait is recorded in
        the ``read.serve_wait`` histogram and as a ``serve_wait`` span, so
        mixed workloads expose datanode serve-queue pressure directly.
        Raises :class:`~repro.hdfs.protocol.DatanodeDead` if the node is
        (or dies while) waiting.
        """
        if not self.node.alive:
            raise DatanodeDead(self.name)
        requested = self.env.now
        request = self._serve_slots.request()
        if not request.processed:
            span = self.tracer.begin(
                "serve_wait",
                f"datanode:{self.name}",
                f"b{block_id}:serve",
                requested,
                client=client,
            )
            yield request
            self.tracer.end(span, self.env.now)
        self.metrics.observe("read.serve_wait", self.env.now - requested)
        if not self.node.alive:
            self._serve_slots.release(request)
            raise DatanodeDead(self.name)
        serve = ReadServe(self, request, block_id, client)
        self._serving.add(serve)
        return serve

    def _serve_closed(self, serve: ReadServe) -> None:
        self._serving.discard(serve)
        self._serve_slots.release(serve._request)

    # -- faults ------------------------------------------------------------------
    def kill(self) -> None:
        """Crash this datanode: stop receivers and signal their pipelines."""
        self.node.fail()
        if self.namenode is not None:
            self.namenode.journal.emit(
                self.env.now,
                "datanode_killed",
                self.name,
                active_receivers=len(self._active),
            )
        for receiver in list(self._active):
            receiver.abort(self.name)
        for serve in sorted(
            self._serving, key=lambda s: (s.block_id, s.client)
        ):
            serve.abort()
        if self._heartbeat_proc is not None and self._heartbeat_proc.is_alive:
            self._heartbeat_proc.interrupt("datanode killed")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Datanode {self.name} active={len(self._active)}>"
