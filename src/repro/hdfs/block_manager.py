"""Block and replica bookkeeping on the namenode.

Tracks where every block's replicas live, how many bytes each replica has
confirmed, and block lifecycle (under construction → complete).  Fault
experiments use :meth:`BlockManager.remove_datanode` to drop replicas of a
dead node and :meth:`BlockManager.under_replicated` to check the damage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

from .protocol import Block, BlockState, FileNotFound

__all__ = ["ReplicaInfo", "BlockInfo", "BlockManager"]


@dataclass
class ReplicaInfo:
    """One datanode's copy of a block."""

    datanode: str
    bytes_confirmed: int = 0
    finalized: bool = False


@dataclass
class BlockInfo:
    """Namenode-side state of one block."""

    block: Block
    state: BlockState = BlockState.UNDER_CONSTRUCTION
    replicas: dict[str, ReplicaInfo] = field(default_factory=dict)

    @property
    def finalized_replicas(self) -> int:
        return sum(1 for r in self.replicas.values() if r.finalized)


class BlockManager:
    """Allocates block IDs and tracks replica state."""

    def __init__(self, start_id: int = 1000):
        self._ids = count(start_id)
        self._blocks: dict[int, BlockInfo] = {}

    # -- allocation ----------------------------------------------------------
    def allocate(self, path: str, index: int, size: int) -> Block:
        """Mint a new block for ``path``."""
        block = Block(block_id=next(self._ids), path=path, index=index, size=size)
        self._blocks[block.block_id] = BlockInfo(block=block)
        return block

    def expect_replicas(self, block_id: int, datanodes: tuple[str, ...]) -> None:
        """Record the pipeline targets as pending replica locations."""
        info = self._get(block_id)
        for dn in datanodes:
            info.replicas.setdefault(dn, ReplicaInfo(datanode=dn))

    def bump_generation(self, block_id: int) -> Block:
        """Recovery: new generation stamp invalidates stale replicas."""
        info = self._get(block_id)
        info.block = info.block.with_generation(info.block.generation + 1)
        return info.block

    # -- replica reports -------------------------------------------------------
    def replica_received(self, block_id: int, datanode: str, size: int) -> None:
        """A datanode reports a finalized replica (blockReceived)."""
        info = self._get(block_id)
        replica = info.replicas.setdefault(datanode, ReplicaInfo(datanode=datanode))
        replica.bytes_confirmed = size
        replica.finalized = True

    def drop_replica(self, block_id: int, datanode: str) -> None:
        """Forget one replica (failed datanode removed from a pipeline)."""
        info = self._get(block_id)
        info.replicas.pop(datanode, None)

    def commit(self, block_id: int) -> None:
        """Mark the block complete (client finished, replicas confirmed)."""
        info = self._get(block_id)
        info.state = BlockState.COMPLETE

    # -- queries ----------------------------------------------------------------
    def info(self, block_id: int) -> BlockInfo:
        return self._get(block_id)

    def all_blocks(self) -> tuple[BlockInfo, ...]:
        """Every tracked block's info, in block-id order."""
        return tuple(self._blocks[bid] for bid in sorted(self._blocks))

    def locations(self, block_id: int) -> tuple[str, ...]:
        """Datanodes holding a finalized replica, sorted."""
        info = self._get(block_id)
        return tuple(sorted(d for d, r in info.replicas.items() if r.finalized))

    def replication_of(self, block_id: int) -> int:
        return self._get(block_id).finalized_replicas

    def under_replicated(self, required: int) -> tuple[int, ...]:
        """Block IDs with fewer than ``required`` finalized replicas."""
        return tuple(
            sorted(
                bid
                for bid, info in self._blocks.items()
                if info.finalized_replicas < required
            )
        )

    def blocks_on(self, datanode: str) -> tuple[int, ...]:
        """All block IDs with a (possibly pending) replica on ``datanode``."""
        return tuple(
            sorted(
                bid
                for bid, info in self._blocks.items()
                if datanode in info.replicas
            )
        )

    def remove_datanode(self, datanode: str) -> tuple[int, ...]:
        """Drop every replica on a dead datanode; returns affected blocks."""
        affected = self.blocks_on(datanode)
        for bid in affected:
            self.drop_replica(bid, datanode)
        return affected

    # -- snapshot protocol -------------------------------------------------
    def export_state(self) -> dict:
        """Plain-data state for checkpointing, including the ID counter."""
        # itertools.count reduces to (count, (next_value,)); reading it
        # this way does not consume a value.
        next_id = self._ids.__reduce__()[1][0]
        return {"blocks": dict(self._blocks), "next_id": next_id}

    def restore_state(self, state: dict) -> None:
        self._blocks = dict(state["blocks"])
        self._ids = count(state["next_id"])

    def _get(self, block_id: int) -> BlockInfo:
        try:
            return self._blocks[block_id]
        except KeyError:
            raise FileNotFound(f"unknown block {block_id}") from None

    def __len__(self) -> int:
        return len(self._blocks)
