"""The HDFS substrate: a discrete-event model of the Hadoop 1.0.3 write path.

Exposes the namenode, datanode and client services plus
:class:`HdfsDeployment`, which wires them onto a cluster.
"""

from .block_manager import BlockInfo, BlockManager, ReplicaInfo
from .client import (
    BlockUnavailable,
    HdfsClient,
    HdfsReader,
    PacketResponder,
    ReadResult,
    plan_file,
    producer,
)
from .datanode import BlockReceiver, Datanode
from .datanode_manager import DatanodeDescriptor, DatanodeManager
from .deployment import HdfsDeployment, PipelineHandle
from .namenode import Namenode, SpeedRegistry
from .namespace import FileState, INodeFile, Namespace
from .admin import DecommissionManager
from .balancer import BalanceReport, Balancer
from .placement import DefaultPlacementPolicy, PlacementPolicy
from .replication import ReplicationMonitor, copy_block
from .protocol import (
    FNFA,
    Ack,
    Block,
    BlockState,
    BlockTargets,
    DatanodeDead,
    FileAlreadyExists,
    FileNotFound,
    HdfsError,
    LeaseConflict,
    NoDatanodesAvailable,
    Packet,
    PipelineFailure,
    SafeModeException,
    WriteResult,
)

__all__ = [
    "HdfsDeployment",
    "PipelineHandle",
    "Namenode",
    "SpeedRegistry",
    "Datanode",
    "BlockReceiver",
    "HdfsClient",
    "HdfsReader",
    "ReadResult",
    "BlockUnavailable",
    "PacketResponder",
    "plan_file",
    "producer",
    "Namespace",
    "INodeFile",
    "FileState",
    "BlockManager",
    "BlockInfo",
    "ReplicaInfo",
    "DatanodeManager",
    "DatanodeDescriptor",
    "PlacementPolicy",
    "DefaultPlacementPolicy",
    "ReplicationMonitor",
    "copy_block",
    "DecommissionManager",
    "Balancer",
    "BalanceReport",
    "Block",
    "Packet",
    "Ack",
    "FNFA",
    "BlockTargets",
    "BlockState",
    "WriteResult",
    "HdfsError",
    "FileAlreadyExists",
    "FileNotFound",
    "SafeModeException",
    "LeaseConflict",
    "NoDatanodesAvailable",
    "PipelineFailure",
    "DatanodeDead",
]
