"""The namenode service: namespace RPCs, block allocation, liveness.

Client-facing calls (``create_file``, ``add_block``, ``complete_file``,
``get_additional_datanode``) are process generators that charge the RPC
round-trip latency ``T_n`` (§III-D) before executing.  Datanode-facing
calls (registration, heartbeats, blockReceived) arrive via control
messages and execute synchronously at the namenode.

The placement policy is pluggable: baseline deployments use
:class:`~repro.hdfs.placement.DefaultPlacementPolicy`; SMARTH deployments
install :class:`~repro.smarth.global_opt.SmarthPlacementPolicy`
(Algorithm 1), which reads the per-client speed registry populated by
client heartbeats (§III-B).
"""

from __future__ import annotations

import random
from typing import Iterable, Optional

from ..analysis.trace import Journal
from ..cluster.node import Node
from ..config import HdfsConfig
from ..net.transport import Network
from ..obs import DISABLED_METRICS, DISABLED_TRACER, MetricsRegistry, Tracer
from ..sim import Environment, ProcessGenerator
from .block_manager import BlockManager
from .datanode_manager import DatanodeManager
from .namespace import Namespace
from .placement import DefaultPlacementPolicy, PlacementPolicy
from .protocol import Block, BlockTargets, NoDatanodesAvailable

__all__ = ["Namenode", "SpeedRegistry", "UncachedSpeedRegistry"]

#: Shared empty map for clients with no records (never mutated).
_NO_RECORDS: dict[str, float] = {}


class SpeedRegistry:
    """Per-client datanode transfer-speed records (§III-B).

    Clients measure the speed of each block transfer to its *first*
    datanode and piggyback the records on 3-second heartbeats; the
    namenode keeps the latest value per (client, datanode).

    Ranking fast path: the registry memoizes one full ranking per client,
    sorted by ``(-speed, name)``, and invalidates it whenever a heartbeat
    changes that client's records.  :meth:`top_n` then filters the cached
    ranking by membership instead of rebuilding a pool dict and re-sorting
    per allocation — ``add_block`` at 3-second heartbeat cadence reuses
    the same ranking for every allocation in between.  Ties always break
    by datanode name, matching the order the allocation path historically
    produced (its ``among`` pools are name-sorted).
    """

    def __init__(self) -> None:
        self._records: dict[str, dict[str, float]] = {}
        #: client → datanodes sorted by (-speed, name); dropped on update.
        self._ranked: dict[str, list[str]] = {}

    def update(self, client: str, records: dict[str, float]) -> None:
        if not records:
            return
        mine = self._records.setdefault(client, {})
        for name, speed in records.items():
            if mine.get(name) != speed:
                mine.update(records)
                self._ranked.pop(client, None)
                return

    def records_for(self, client: str) -> dict[str, float]:
        """Latest known speeds (bytes/s) per datanode for a client."""
        return dict(self._records.get(client, {}))

    def has_records(self, client: str) -> bool:
        return bool(self._records.get(client))

    def ranking(self, client: str) -> list[str]:
        """All recorded datanodes for ``client``, fastest first.

        Cached until the next heartbeat changes the client's records; ties
        break by name.  Callers must not mutate the returned list.
        """
        ranked = self._ranked.get(client)
        if ranked is None:
            records = self._records.get(client, {})
            ranked = sorted(records, key=lambda d: (-records[d], d))
            self._ranked[client] = ranked
        return ranked

    def top_n(
        self, client: str, n: int, among: Iterable[str] | None = None
    ) -> list[str]:
        """The ``n`` fastest datanodes for ``client`` (Algorithm 1 l.5).

        ``among`` restricts the pool by *membership* only; pass a set or
        frozenset to avoid a rebuild.  Order always comes from the cached
        ranking.
        """
        if n <= 0:
            return []
        ranked = self.ranking(client)
        if among is None:
            return ranked[:n]
        member = (
            among
            if isinstance(among, (set, frozenset))
            else frozenset(among)
        )
        out: list[str] = []
        for d in ranked:
            if d in member:
                out.append(d)
                if len(out) == n:
                    break
        return out

    def speed_table(self, client: str) -> dict[str, float]:
        """The client's live record map — read-only, do not mutate.

        Replica ranking on the read path consults this per block read;
        handing out the internal dict (unlike :meth:`records_for`'s
        copy) keeps that O(holders) per read.
        """
        return self._records.get(client, _NO_RECORDS)

    # -- snapshot protocol -------------------------------------------------
    def export_state(self) -> dict:
        """Per-client record maps (plain floats) for checkpointing."""
        return {
            "records": {c: dict(r) for c, r in self._records.items()}
        }

    def restore_state(self, state: dict) -> None:
        self._records = {c: dict(r) for c, r in state["records"].items()}
        # Rankings are a cache; recomputed lazily on demand.
        self._ranked = {}


class UncachedSpeedRegistry(SpeedRegistry):
    """Reference registry: rebuild the pool and re-sort on every query.

    This is the pre-cache implementation, kept as the baseline the
    equivalence suite and ``benchmarks/bench_scale.py`` compare against.
    It must answer every query exactly like :class:`SpeedRegistry` —
    ties break by name because its pools iterate in name-sorted order
    when ``among`` is name-sorted, and explicitly otherwise.
    """

    def update(self, client: str, records: dict[str, float]) -> None:
        if not records:
            return
        self._records.setdefault(client, {}).update(records)

    def ranking(self, client: str) -> list[str]:
        records = self._records.get(client, {})
        return sorted(records, key=lambda d: (-records[d], d))

    def top_n(
        self, client: str, n: int, among: Iterable[str] | None = None
    ) -> list[str]:
        records = self._records.get(client, {})
        pool = records if among is None else {
            d: records[d] for d in among if d in records
        }
        ranked = sorted(pool, key=lambda d: (-pool[d], d))
        return ranked[:max(0, n)]


class Namenode:
    """The namenode service running on one cluster node."""

    #: Swappable registry class: the scale benchmark and the fast-path
    #: equivalence suite install :class:`UncachedSpeedRegistry` here to
    #: run whole experiments against the reference allocation path.
    speed_registry_factory = SpeedRegistry

    def __init__(
        self,
        env: Environment,
        node: Node,
        network: Network,
        config: HdfsConfig,
        placement: Optional[PlacementPolicy] = None,
        seed: int = 0,
        journal: Optional[Journal] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        start_monitor: bool = True,
    ):
        self.env = env
        self.node = node
        self.network = network
        self.config = config
        self.namespace = Namespace()
        self.blocks = BlockManager()
        self.datanodes = DatanodeManager(env, config)
        self.speeds = self.speed_registry_factory()
        self.rng = random.Random(seed)
        self.journal = journal if journal is not None else Journal(enabled=False)
        self.tracer = tracer if tracer is not None else DISABLED_TRACER
        self.metrics = metrics if metrics is not None else DISABLED_METRICS
        self.placement: PlacementPolicy = placement or DefaultPlacementPolicy(
            network.topology, self.datanodes, self.rng
        )
        self._monitor = None
        if start_monitor:
            self.start_monitor()

    @property
    def name(self) -> str:
        return self.node.name

    # -- liveness-monitor lifecycle (checkpoint barriers stop/restart it) ------
    def start_monitor(self) -> None:
        """(Re)start the datanode liveness monitor if it is not running."""
        if self._monitor is None or not self._monitor.is_alive:
            self._monitor = self.env.process(
                self.datanodes.monitor(), name="nn:monitor"
            )

    def stop_monitor(self) -> None:
        """Interrupt the liveness monitor (no-op if already stopped)."""
        if self._monitor is not None and self._monitor.is_alive:
            self._monitor.interrupt("monitor stopped")

    def _rpc(self) -> ProcessGenerator:
        """Charge one client↔namenode RPC round trip (``T_n``)."""
        yield self.env.timeout(self.config.namenode_rpc_latency)

    # -- client RPCs ---------------------------------------------------------
    def create_file(self, client: str, path: str) -> ProcessGenerator:
        """§II step 1: namespace checks + create."""
        yield from self._rpc()
        self.namespace.create(path, client)

    def add_block(
        self,
        client: str,
        path: str,
        size: int,
        excluded: Iterable[str] = (),
    ) -> ProcessGenerator:
        """§II step 2's addBlock(): new block ID + pipeline targets.

        Returns a :class:`BlockTargets` (as the process's value).
        """
        t0 = self.env.now
        sid = self.tracer.begin(
            "allocate", "namenode", f"allocate:{client}", t0,
            client=client, path=path,
        )
        yield from self._rpc()
        inode = self.namespace.check_lease(path, client)
        rank = self.tracer.begin(
            "rank", "namenode", f"allocate:{client}", self.env.now, parent=sid,
        )
        targets = self.placement.choose_targets(
            client, self.config.replication, excluded
        )
        self.tracer.end(rank, self.env.now, targets=targets)
        block = self.blocks.allocate(path, index=len(inode.blocks), size=size)
        self.blocks.expect_replicas(block.block_id, targets)
        self.namespace.append_block(path, client, block)
        self.journal.emit(
            self.env.now,
            "add_block",
            f"block:{block.block_id}",
            path=path,
            client=client,
            targets=targets,
        )
        self.tracer.end(sid, self.env.now, block=block.block_id)
        self.metrics.observe("allocate_latency", self.env.now - t0)
        return BlockTargets(block=block, targets=targets)

    def get_additional_datanode(
        self,
        client: str,
        block: Block,
        existing: Iterable[str],
        excluded: Iterable[str] = (),
    ) -> ProcessGenerator:
        """Recovery: one replacement datanode for a damaged pipeline.

        Returns the chosen datanode name.
        """
        yield from self._rpc()
        existing_set = set(existing)
        avoid = existing_set | set(excluded)
        candidates = [
            d for d in self.datanodes.live_datanodes() if d not in avoid
        ]
        if not candidates:
            raise NoDatanodesAvailable(
                f"no replacement datanode for block {block.block_id}"
            )
        choice = candidates[self.rng.randrange(len(candidates))]
        self.blocks.expect_replicas(block.block_id, (choice,))
        return choice

    def bump_generation(self, block: Block) -> ProcessGenerator:
        """Recovery: new generation stamp for a recovering block."""
        yield from self._rpc()
        new_block = self.blocks.bump_generation(block.block_id)
        self.namespace.replace_block(block.path, new_block)
        return new_block

    def complete_file(self, client: str, path: str) -> ProcessGenerator:
        """§II step 6: the client reports all ACKs received."""
        yield from self._rpc()
        inode = self.namespace.complete(path, client)
        for block in inode.blocks:
            self.blocks.commit(block.block_id)
        self.journal.emit(
            self.env.now, "file_complete", path, client=client,
            blocks=len(inode.blocks),
        )

    def client_heartbeat(self, client: str, records: dict[str, float]) -> ProcessGenerator:
        """SMARTH §III-B: speed records piggybacked on the heartbeat."""
        sid = self.tracer.begin(
            "heartbeat", "namenode", f"heartbeat:{client}", self.env.now,
            client=client,
        )
        yield from self._rpc()
        self.speeds.update(client, records)
        self.tracer.end(sid, self.env.now)
        self.metrics.count("heartbeats_total")

    # -- datanode-facing (synchronous, reached via control messages) -----------
    def register_datanode(self, name: str, rack: str) -> None:
        self.datanodes.register(name, rack)

    def datanode_heartbeat(self, name: str) -> None:
        self.datanodes.heartbeat(name)

    def block_received(self, block_id: int, datanode: str, size: int) -> None:
        self.blocks.replica_received(block_id, datanode, size)

    # -- cluster-state queries (for tests and the experiment harness) ----------
    def replication_of(self, block_id: int) -> int:
        return self.blocks.replication_of(block_id)

    def file_fully_replicated(self, path: str) -> bool:
        """True iff every block of ``path`` has ``replication`` finalized
        replicas — the end-state every fault-tolerance test asserts."""
        inode = self.namespace.get(path)
        return all(
            self.blocks.replication_of(b.block_id) >= self.config.replication
            for b in inode.blocks
        )
