"""Pluggable placement & replication policies (see DESIGN.md §12).

The policy layer turns the strategies the paper fixes at design time —
replica placement, replication targets, the Algorithm 2 threshold, the
pipeline cap — into one per-deployment :class:`Policy` object that the
namenode, the replication monitor, the SMARTH client and the read path
all route through.  ``DefaultPolicy`` is the pre-framework behavior
(proven byte-identical by the golden suites); ``HotspotPolicy`` and
``OnlineTunerPolicy`` are the first two adaptive strategies; new ones
register with :func:`register_policy` and must pass the conformance
harness in ``tests/policy/conformance.py``.

Select a policy explicitly (``HdfsDeployment(..., policy="hotspot")``,
``python -m repro chaos --policy hotspot``) or ambiently for a whole
code path with :func:`use_policy`.

The concrete policy classes are imported lazily (they construct
protocol objects from :mod:`repro.hdfs`/:mod:`repro.smarth`, which
import this package), so ``from repro.policy import HotspotPolicy``
works but does not create an import cycle at package load.
"""

from __future__ import annotations

from .base import NO_TUNING, ClientTuning, PlacementPolicy, Policy, ReplicationPolicy
from .registry import (
    PolicySpec,
    active_policy_spec,
    policy_class,
    policy_names,
    register_policy,
    resolve_policy,
    use_policy,
)

__all__ = [
    "Policy",
    "PlacementPolicy",
    "ReplicationPolicy",
    "ClientTuning",
    "NO_TUNING",
    "PolicySpec",
    "DefaultPolicy",
    "DefaultReplicationPolicy",
    "HotspotPolicy",
    "HotspotReplicationPolicy",
    "OnlineTunerPolicy",
    "register_policy",
    "policy_names",
    "policy_class",
    "resolve_policy",
    "use_policy",
    "active_policy_spec",
]

#: Lazily-resolved public classes → their defining submodule.
_LAZY = {
    "DefaultPolicy": "default",
    "DefaultReplicationPolicy": "default",
    "HotspotPolicy": "hotspot",
    "HotspotReplicationPolicy": "hotspot",
    "OnlineTunerPolicy": "tuner",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
