"""Online per-client protocol tuning (Arslan & Kosar style).

*A Heuristic Approach to Protocol Tuning* tunes bulk-transfer parameters
(parallelism, pipelining, concurrency) by probing a small candidate grid
and then exploiting the best-measured setting, instead of trusting
analytically-fixed constants.  SMARTH has exactly such a constant: the
Algorithm 2 threshold, fixed at 0.8, which spends 20% of block starts on
exploration swaps.  On a *static heterogeneous* cluster that exploration
is pure cost once speeds are learned — swapping a measured-fast first
datanode for a random (often slow) one; on a *shifting* cluster it is
what keeps the speed records fresh.  The right threshold is
workload-dependent, which is the textbook case for probe-then-exploit.

:class:`OnlineTunerPolicy` keeps one arm-indexed throughput histogram
per client in a :class:`repro.obs.MetricsRegistry` (the observations
come from :meth:`observe_upload` feedback the SMARTH client sends at the
end of every ``put``).  The first ``probe_rounds`` passes over the grid
try each candidate :class:`~repro.policy.base.ClientTuning` in turn;
after that every upload uses the arm with the best mean observed
throughput (ties break toward the later, less-exploratory arm).  The
grid defaults to threshold candidates but can carry any tuning —
pipeline caps and packet-train bounds included.

The tuner's state lives on the *policy instance*, so passing one
instance across deployments (``resolve_policy`` re-binds rather than
copies) lets a client's learning persist across uploads that each build
a fresh cluster — the shape of ``bench_policy.py``'s head-to-head.
Everything is deterministic: no RNG, no wall clock, just simulated-time
throughput arithmetic.
"""

from __future__ import annotations

from typing import Optional

from ..obs import MetricsRegistry, labelled
from .base import ClientTuning, Policy
from .registry import register_policy

__all__ = ["OnlineTunerPolicy", "DEFAULT_GRID"]

#: Threshold candidates: the paper's 0.8, a milder 0.9, and pure
#: exploitation.  Kept small — each arm costs ``probe_rounds`` uploads
#: of probing per client.
DEFAULT_GRID: tuple[ClientTuning, ...] = (
    ClientTuning(local_opt_threshold=0.8),
    ClientTuning(local_opt_threshold=0.9),
    ClientTuning(local_opt_threshold=1.0),
)


@register_policy
class OnlineTunerPolicy(Policy):
    """Probe-then-exploit tuning of SMARTH knobs, per client."""

    name = "tuner"
    #: Candidate tunings (the "arms").  Class-level so a subclass can
    #: re-grid; instances may also overwrite before first use.
    grid: tuple[ClientTuning, ...] = DEFAULT_GRID
    #: Full passes over the grid before switching to exploitation.
    probe_rounds = 2

    def __init__(self, deployment=None):
        super().__init__(deployment)
        #: Arm-indexed upload-throughput histograms (bytes/sec), one per
        #: (client, arm) — the `repro.obs` observation store the ISSUE's
        #: tuner learns from.
        self.metrics = MetricsRegistry(enabled=True)
        self._uploads: dict[str, int] = {}

    # -- internals -----------------------------------------------------
    @staticmethod
    def _arm_metric(client: str, arm: int) -> str:
        return labelled("policy_upload_throughput", arm=arm, client=client)

    def _probe_budget(self) -> int:
        return len(self.grid) * self.probe_rounds

    def best_arm(self, client: str) -> int:
        """Arm with the best mean observed throughput for ``client``."""
        means = []
        for arm in range(len(self.grid)):
            histogram = self.metrics.histogram(self._arm_metric(client, arm))
            means.append(histogram.mean if histogram.count else -1.0)
        return max(range(len(self.grid)), key=lambda arm: (means[arm], arm))

    # -- Policy hooks --------------------------------------------------
    def tuning_for(self, client: str) -> ClientTuning:
        count = self._uploads.get(client, 0)
        if count < self._probe_budget():
            return self.grid[count % len(self.grid)]
        return self.grid[self.best_arm(client)]

    def observe_upload(
        self,
        client: str,
        path: str,
        nbytes: int,
        duration: float,
        tuning: ClientTuning,
    ) -> None:
        self._uploads[client] = self._uploads.get(client, 0) + 1
        try:
            arm = self.grid.index(tuning)
        except ValueError:
            return  # a foreign tuning (e.g. handed in by a subclass)
        if duration > 0:
            self.metrics.observe(
                self._arm_metric(client, arm), nbytes / duration
            )

    # -- reporting -----------------------------------------------------
    def chosen(self, client: str) -> Optional[ClientTuning]:
        """The exploitation arm, once probing finished (else ``None``)."""
        if self._uploads.get(client, 0) < self._probe_budget():
            return None
        return self.grid[self.best_arm(client)]

    def describe(self) -> dict:
        return {
            "name": self.name,
            "grid": [
                {
                    "local_opt_threshold": t.local_opt_threshold,
                    "max_pipelines": t.max_pipelines,
                    "coalesce_packets": t.coalesce_packets,
                }
                for t in self.grid
            ],
            "probe_rounds": self.probe_rounds,
        }
