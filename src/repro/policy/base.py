"""Core interfaces of the pluggable placement & replication framework.

The paper fixes SMARTH's key knobs at design time: speed-biased
placement (Algorithm 1), the 0.8 local-optimization threshold
(Algorithm 2), the ``num/repli`` pipeline cap, and a static replication
factor of 3.  ROADMAP item 3 calls for refactoring those decisions into
a *policy* layer so heuristic and adaptive strategies — popularity-driven
replica management (Lee 2020) and online protocol tuning (Arslan &
Kosar) — can be compared head-to-head against the stock behavior.

This module defines the three strategy surfaces:

:class:`PlacementPolicy`
    Where a new block's replicas go (the namenode's ``addBlock``).  The
    concrete implementations live with their protocols —
    :class:`repro.hdfs.placement.DefaultPlacementPolicy` and
    :class:`repro.smarth.global_opt.SmarthPlacementPolicy` — and are
    re-exported from their historical homes for compatibility.

:class:`ReplicationPolicy`
    How the background :class:`~repro.hdfs.replication.ReplicationMonitor`
    heals (and, for policies that manage excess, trims) replicas: the
    per-block target count, source/target selection for a copy, and the
    read-popularity feed.

:class:`Policy`
    The per-deployment aggregate the rest of the system talks to.  Its
    base implementations *are* the pre-framework behavior — the
    ``default`` registry entry is proven byte-identical to the
    pre-refactor code paths by the golden suites — so a subclass only
    overrides the decisions it wants to change.  The design follows the
    ``Namenode.speed_registry_factory`` swap pattern: hooks default to
    stock behavior, and equivalence is provable because the default hook
    leaves every RNG draw sequence untouched.

:class:`ClientTuning`
    Per-upload knob overrides a policy hands a
    :class:`~repro.smarth.multi_writer.SmarthClient` at the start of each
    ``put``: the Algorithm 2 threshold, the pipeline cap, and the
    packet-train coalescing bound.  ``None`` fields mean "keep the
    configured value".
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.node import Node
    from ..hdfs.deployment import HdfsDeployment
    from ..net.topology import Topology

__all__ = [
    "PlacementPolicy",
    "ReplicationPolicy",
    "ClientTuning",
    "NO_TUNING",
    "Policy",
]


class PlacementPolicy(ABC):
    """Strategy interface used by the namenode's addBlock()."""

    @abstractmethod
    def choose_targets(
        self,
        client: str,
        replication: int,
        excluded: Iterable[str] = (),
    ) -> tuple[str, ...]:
        """Pick ``replication`` distinct live datanodes for a new block."""

    @staticmethod
    def _pick(rng: random.Random, candidates: Sequence[str]) -> str:
        return candidates[rng.randrange(len(candidates))]


class ReplicationPolicy:
    """Replica-count and copy-selection strategy for the monitor.

    The base class implements the stock monitor behavior verbatim: a
    uniform target of ``replication`` replicas per block, a uniform
    random source among non-saturated holders, and the rack-aware target
    pick (prefer a rack without a replica yet).  Byte-identity of the
    ``default`` policy rests on these methods consuming the monitor's
    RNG in exactly the historical order.
    """

    #: Whether the monitor should run the excess-trimming pass.  The
    #: stock policy never over-replicates, so the pass (and its per-block
    #: scan cost) is skipped entirely unless a policy opts in.
    manages_excess = False

    def __init__(self, replication: int):
        #: The baseline replication factor (``HdfsConfig.replication``).
        #: No policy may target fewer replicas than this — durability
        #: invariants (acked durability, replication convergence) are
        #: stated against it.
        self.replication = replication

    def scan_replication(self) -> int:
        """Upper bound fed to ``BlockManager.under_replicated``.

        Blocks with at least this many finalized replicas are never
        scanned; a policy whose per-block targets can exceed the base
        factor must widen this bound.
        """
        return self.replication

    def target_replication(self, block_id: int, now: float) -> int:
        """Desired replica count for one block (>= ``replication``)."""
        return self.replication

    def select_source(
        self, rng: random.Random, sources: Sequence[str]
    ) -> str:
        """Pick the holder that streams the copy (uniform random)."""
        return sources[rng.randrange(len(sources))]

    def select_target(
        self,
        rng: random.Random,
        holders: Sequence[str],
        live: set[str],
        topology: "Topology",
    ) -> Optional[str]:
        """A live non-holder, preferring a rack without a replica yet."""
        candidates = sorted(live - set(holders))
        if not candidates:
            return None
        holder_racks = {topology.rack_of(h) for h in holders}
        fresh_rack = [
            c for c in candidates if topology.rack_of(c) not in holder_racks
        ]
        pool = fresh_rack or candidates
        return pool[rng.randrange(len(pool))]

    def excess_replicas(
        self, block_id: int, holders: Sequence[str], now: float
    ) -> tuple[str, ...]:
        """Replicas to drop for one block (only if ``manages_excess``).

        Must never shrink a block below ``replication`` — the monitor
        re-checks, but returning a legal set is the policy's contract.
        """
        return ()

    def note_read(self, block_id: int, at: float) -> None:
        """Read-popularity feed (one whole-block read at time ``at``)."""


@dataclass(frozen=True)
class ClientTuning:
    """Per-upload overrides for one SMARTH client.  ``None`` = keep config."""

    #: Algorithm 2 exploration threshold (the paper's fixed 0.8).
    local_opt_threshold: Optional[float] = None
    #: Concurrent-pipeline cap; overrides the ``num/repli`` rule.  Must
    #: not exceed it — the §IV-C invariant is checked against the rule.
    max_pipelines: Optional[int] = None
    #: Packet-train coalescing bound, with ``HdfsConfig.coalesce_packets``
    #: semantics: ``0`` coalesces whole blocks, ``1`` disables trains,
    #: ``n > 1`` coalesces only blocks of at most ``n`` packets.
    coalesce_packets: Optional[int] = None


#: The identity tuning: every knob keeps its configured value.
NO_TUNING = ClientTuning()


class Policy:
    """Per-deployment strategy aggregate (the ``default`` behavior).

    One instance is bound to one deployment via :meth:`bind` (called by
    ``resolve_policy`` / the deployment constructor).  Instances may be
    re-bound across deployments — an online tuner carries its learned
    state from upload to upload that way — but deployment-scoped caches
    (the memoized replication policy) are reset on each bind.

    Subclasses override only the decisions they change; everything else
    inherits the stock behavior, which the golden suites prove
    byte-identical to the pre-framework code.
    """

    #: Registry name; subclasses registered via ``register_policy`` must
    #: set a unique one.
    name = "default"

    def __init__(self, deployment: Optional["HdfsDeployment"] = None):
        self.deployment: Optional["HdfsDeployment"] = None
        self._replication_policy: Optional[ReplicationPolicy] = None
        if deployment is not None:
            self.bind(deployment)

    def bind(self, deployment: "HdfsDeployment") -> "Policy":
        """Attach to a deployment, resetting deployment-scoped caches."""
        self.deployment = deployment
        self._replication_policy = None
        return self

    # -- placement -----------------------------------------------------
    def placement(self) -> Optional[PlacementPolicy]:
        """Placement override for the *baseline* HDFS protocol.

        ``None`` (the default) keeps the namenode's internally-built
        :class:`~repro.hdfs.placement.DefaultPlacementPolicy` — which
        shares the namenode's RNG with ``getAdditionalDatanode``, so the
        default path must not replace it.
        """
        return None

    def smarth_placement(self) -> Optional[PlacementPolicy]:
        """Placement for the SMARTH protocol (Algorithm 1 by default).

        The stock construction matches the historical
        ``SmarthDeployment`` wiring bit-for-bit (same RNG derivation).
        Return ``None`` to keep the baseline placement even under SMARTH.
        """
        from ..smarth.global_opt import SmarthPlacementPolicy

        deployment = self.deployment
        cfg = deployment.config
        return SmarthPlacementPolicy(
            topology=deployment.network.topology,
            datanodes=deployment.namenode.datanodes,
            speeds=deployment.namenode.speeds,
            rng=random.Random(cfg.seed ^ 0xC0FFEE),
            replication=cfg.hdfs.replication,
            enabled=cfg.smarth.enable_global_opt,
        )

    # -- replication ---------------------------------------------------
    def replication(self) -> ReplicationPolicy:
        """The (memoized) replication strategy for this deployment."""
        if self._replication_policy is None:
            self._replication_policy = self._make_replication()
        return self._replication_policy

    def _make_replication(self) -> ReplicationPolicy:
        """Override point: construct the replication strategy."""
        return ReplicationPolicy(self.deployment.config.hdfs.replication)

    def note_read(self, block_id: int, datanode: str) -> None:
        """One whole-block read served; feeds popularity counters."""
        self.replication().note_read(block_id, self.deployment.env.now)

    def rank_replicas(
        self,
        client: str,
        block_id: int,
        candidates: list[str],
        node: "Node",
    ) -> list[str]:
        """Order live replica holders for one block read, best first.

        ``candidates`` arrives pre-shuffled by the caller's per-(client,
        block) substream, so every tie the sorts below leave is broken by
        a seed-stable coin rather than dict order.  The default is
        speed-aware: candidates sort by the client's recorded speed in
        the namenode's :class:`~repro.hdfs.namenode.SpeedRegistry` (the
        heartbeat-piggybacked §III-B measurements), fastest first.
        Coverage is partial — only pipeline *heads* ever get measured —
        so unrecorded candidates assume the mean recorded speed rather
        than sorting categorically before or after recorded ones:
        known-slow replicas fall behind unknowns, known-fast ones pull
        ahead, and the sort's stability leaves everything else in
        topology-locality order (same node < same rack < off rack).  A
        cold registry — every baseline-HDFS-only history — therefore
        reduces to the pre-ranking locality order exactly.  Sorts are in
        place; the returned list may be ``candidates`` itself.
        """
        deployment = self.deployment
        topology = deployment.network.topology
        if node.name in topology:
            candidates.sort(
                key=lambda dn: topology.distance(node.name, dn)
            )
        else:
            candidates.sort(
                key=lambda dn: 0 if topology.rack_of(dn) == node.rack else 1
            )
        speeds = deployment.namenode.speeds.speed_table(client)
        if speeds:
            prior = sum(speeds.values()) / len(speeds)
            candidates.sort(key=lambda dn: -speeds.get(dn, prior))
        return candidates

    # -- client tuning -------------------------------------------------
    def tuning_for(self, client: str) -> ClientTuning:
        """Knob overrides for ``client``'s next upload (identity here)."""
        return NO_TUNING

    def observe_upload(
        self,
        client: str,
        path: str,
        nbytes: int,
        duration: float,
        tuning: ClientTuning,
    ) -> None:
        """Feedback after one completed upload (no-op by default)."""

    # -- reporting -----------------------------------------------------
    def describe(self) -> dict:
        """Small, JSON-able self-description for reports and benches."""
        return {"name": self.name}
