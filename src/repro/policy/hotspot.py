"""Hotspot-driven dynamic re-replication (popularity-aware replica counts).

*Intelligent Replication Management for HDFS Using Reinforcement
Learning* (Lee 2020) motivates replica counts that follow read demand:
blocks serving many concurrent readers deserve more copies (spreading
read load and shrinking the blast radius of a holder failure), and the
extra copies should be reclaimed once demand cools.

This policy implements the heuristic half of that idea.  The read path
reports every whole-block read through
:meth:`~repro.policy.base.Policy.note_read`; a block whose read count
within a sliding ``window`` reaches ``hot_reads`` is *hot* and its
target replication is raised to ``replication + boost``.  The existing
:class:`~repro.hdfs.replication.ReplicationMonitor` then heals it up
like any under-replicated block (same rack-aware target selection).
When the block cools, the monitor's excess pass trims it back down —
never below the configured base factor, so every durability invariant
(acked durability, replication convergence) keeps holding verbatim.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from .base import Policy, ReplicationPolicy
from .registry import register_policy

__all__ = ["HotspotPolicy", "HotspotReplicationPolicy"]


class HotspotReplicationPolicy(ReplicationPolicy):
    """Replica targets driven by per-block read-popularity counters."""

    manages_excess = True

    def __init__(
        self,
        replication: int,
        boost: int = 1,
        hot_reads: int = 3,
        window: float = 30.0,
    ):
        super().__init__(replication)
        if boost < 1:
            raise ValueError("boost must be >= 1")
        if hot_reads < 1:
            raise ValueError("hot_reads must be >= 1")
        if window <= 0:
            raise ValueError("window must be positive")
        #: Extra replicas granted to a hot block.
        self.boost = boost
        #: Reads within ``window`` that make a block hot.
        self.hot_reads = hot_reads
        #: Sliding popularity window, simulated seconds.
        self.window = window
        self._reads: dict[int, deque] = {}
        self._hot: set[int] = set()
        #: Transition counters (for tests/reports).
        self.promotions = 0
        self.demotions = 0

    # -- popularity ----------------------------------------------------
    def note_read(self, block_id: int, at: float) -> None:
        self._reads.setdefault(block_id, deque()).append(at)

    def heat(self, block_id: int, now: float) -> int:
        """Reads of ``block_id`` within the window ending at ``now``."""
        reads = self._reads.get(block_id)
        if not reads:
            return 0
        cutoff = now - self.window
        while reads and reads[0] < cutoff:
            reads.popleft()
        return len(reads)

    # -- targets -------------------------------------------------------
    def scan_replication(self) -> int:
        return self.replication + self.boost

    def target_replication(self, block_id: int, now: float) -> int:
        hot = self.heat(block_id, now) >= self.hot_reads
        if hot and block_id not in self._hot:
            self._hot.add(block_id)
            self.promotions += 1
        elif not hot and block_id in self._hot:
            self._hot.discard(block_id)
            self.demotions += 1
        return self.replication + self.boost if hot else self.replication

    def excess_replicas(
        self, block_id: int, holders: Sequence[str], now: float
    ) -> tuple[str, ...]:
        target = self.target_replication(block_id, now)
        extra = len(holders) - target
        if extra <= 0:
            return ()
        # Deterministic victim order (reverse name order): the boosted
        # copies were placed *after* the original pipeline's, on
        # later-sorted fresh-rack nodes more often than not, so trimming
        # from the top tends to return to the original layout.
        return tuple(sorted(holders, reverse=True)[:extra])


@register_policy
class HotspotPolicy(Policy):
    """Popularity-driven replica management, registered as ``"hotspot"``."""

    name = "hotspot"
    #: Class-level defaults; subclass (or set on an instance before
    #: binding) to retune.
    boost = 1
    hot_reads = 3
    window = 30.0

    def _make_replication(self) -> ReplicationPolicy:
        return HotspotReplicationPolicy(
            self.deployment.config.hdfs.replication,
            boost=self.boost,
            hot_reads=self.hot_reads,
            window=self.window,
        )

    def describe(self) -> dict:
        return {
            "name": self.name,
            "boost": self.boost,
            "hot_reads": self.hot_reads,
            "window": self.window,
        }
