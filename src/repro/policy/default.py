"""The ``default`` policy: the pre-framework behavior, named.

:class:`DefaultPolicy` adds nothing to :class:`~repro.policy.base.Policy`
— the base class's stock implementations *are* Hadoop/SMARTH's fixed
strategies (rack-aware random placement, Algorithm 1 under SMARTH, a
uniform replication target with rack-aware healing, the configured 0.8
threshold, no tuning feedback).  It exists so the registry, the
conformance harness and the bench can treat "do what the paper does" as
one more policy, and so its byte-identity to the pre-refactor code paths
is a named, tested property (the fig5/faultrec goldens and the
fixed-seed chaos reports pin it).
"""

from __future__ import annotations

from .base import Policy, ReplicationPolicy
from .registry import register_policy

__all__ = ["DefaultPolicy", "DefaultReplicationPolicy"]


class DefaultReplicationPolicy(ReplicationPolicy):
    """Stock monitor strategy: uniform target, rack-aware healing."""


@register_policy
class DefaultPolicy(Policy):
    """The paper's fixed strategies, registered under ``"default"``."""

    name = "default"

    def _make_replication(self) -> ReplicationPolicy:
        return DefaultReplicationPolicy(self.deployment.config.hdfs.replication)
