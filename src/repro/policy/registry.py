"""Policy registry and the session-wide active-policy swap.

Two composable ways to select a policy:

* **Explicit**: pass ``policy=`` to a deployment (or ``--policy`` to the
  chaos CLI) — a registry name, a :class:`~repro.policy.base.Policy`
  subclass, or an already-constructed instance (re-bound to the new
  deployment, keeping its learned state — how an online tuner carries
  knowledge across uploads that each build a fresh deployment).

* **Ambient**: :func:`use_policy` swaps the module-level default that
  every deployment constructed *without* an explicit policy picks up —
  the same pattern as ``scenarios.environment_factory`` and
  ``Namenode.speed_registry_factory``, so existing drivers (experiments,
  workloads, the chaos campaign) run under a policy without threading a
  parameter through every call site.

Built-in policies self-register on first use via their module import;
:func:`register_policy` adds new ones (see DESIGN.md §12).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional, Type, Union

from .base import Policy

if TYPE_CHECKING:  # pragma: no cover
    from ..hdfs.deployment import HdfsDeployment

__all__ = [
    "register_policy",
    "policy_names",
    "policy_class",
    "resolve_policy",
    "use_policy",
    "active_policy_spec",
    "PolicySpec",
]

#: Anything :func:`resolve_policy` accepts.
PolicySpec = Union[str, Type[Policy], Policy, None]

_POLICIES: dict[str, Type[Policy]] = {}
_active_spec: PolicySpec = "default"


def register_policy(cls: Type[Policy]) -> Type[Policy]:
    """Class decorator: add ``cls`` to the registry under ``cls.name``."""
    name = cls.name
    existing = _POLICIES.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"policy name {name!r} already registered by {existing.__name__}"
        )
    _POLICIES[name] = cls
    return cls


def _load_builtin() -> None:
    """Import the shipped policy modules so they self-register.

    Deferred (not done at package import) because the built-ins construct
    protocol objects from :mod:`repro.hdfs` / :mod:`repro.smarth`, which
    themselves import :mod:`repro.policy` — resolving at first *use*
    breaks the cycle.
    """
    from . import default, hotspot, tuner  # noqa: F401


def policy_names() -> tuple[str, ...]:
    """Registered policy names, sorted (``default`` always present)."""
    _load_builtin()
    return tuple(sorted(_POLICIES))


def policy_class(name: str) -> Type[Policy]:
    """Look up a registered policy class by name."""
    _load_builtin()
    try:
        return _POLICIES[name]
    except KeyError:
        known = ", ".join(sorted(_POLICIES))
        raise KeyError(f"unknown policy {name!r}; known: {known}") from None


def resolve_policy(
    spec: PolicySpec, deployment: "HdfsDeployment"
) -> Policy:
    """Turn a policy spec into an instance bound to ``deployment``.

    ``None`` resolves the ambient spec installed by :func:`use_policy`
    (``"default"`` unless swapped).  An existing instance is re-bound,
    not copied — its cross-deployment state survives.
    """
    if spec is None:
        spec = _active_spec
    if isinstance(spec, Policy):
        return spec.bind(deployment)
    if isinstance(spec, str):
        return policy_class(spec)(deployment)
    if isinstance(spec, type) and issubclass(spec, Policy):
        return spec(deployment)
    raise TypeError(
        f"policy spec must be a name, Policy class or instance, got {spec!r}"
    )


def active_policy_spec() -> PolicySpec:
    """The ambient spec deployments resolve when given ``policy=None``."""
    return _active_spec


@contextmanager
def use_policy(spec: PolicySpec) -> Iterator[PolicySpec]:
    """Temporarily install ``spec`` as the ambient policy.

    Every deployment built inside the ``with`` block without an explicit
    ``policy=`` runs under ``spec`` — experiments, workloads and chaos
    campaigns included.
    """
    global _active_spec
    previous = _active_spec
    _active_spec = spec if spec is not None else "default"
    try:
        yield _active_spec
    finally:
        _active_spec = previous
