"""Unit helpers for bytes, bandwidth, and time.

The simulator's canonical units are:

* **bytes** for data sizes,
* **bytes per second** for bandwidth and rates,
* **seconds** for (simulated) time.

The paper quotes sizes in MB/GB (binary multiples, following HDFS
conventions: a block is 64 MiB) and bandwidth in Mbps (decimal megabits,
following networking conventions and ``tc``).  These helpers keep the
conversions explicit at call sites: ``mbps(216)`` or ``gigabytes(8)`` is
much harder to get wrong than a bare ``27_000_000``.
"""

from __future__ import annotations

import re

__all__ = [
    "KB",
    "MB",
    "GB",
    "kilobytes",
    "megabytes",
    "gigabytes",
    "mbps",
    "gbps",
    "to_mbps",
    "to_megabytes",
    "to_gigabytes",
    "parse_size",
    "parse_rate",
    "parse_duration",
    "fmt_size",
    "fmt_rate",
    "fmt_time",
]

#: One kibibyte in bytes (HDFS packet sizes are binary multiples).
KB: int = 1024
#: One mebibyte in bytes (HDFS block size is 64 MB = 64 * MB).
MB: int = 1024 * 1024
#: One gibibyte in bytes.
GB: int = 1024 * 1024 * 1024

_BITS_PER_BYTE = 8
_DECIMAL_MEGA = 1_000_000
_DECIMAL_GIGA = 1_000_000_000


def kilobytes(n: float) -> int:
    """Return *n* KiB expressed in bytes."""
    return int(n * KB)


def megabytes(n: float) -> int:
    """Return *n* MiB expressed in bytes."""
    return int(n * MB)


def gigabytes(n: float) -> int:
    """Return *n* GiB expressed in bytes."""
    return int(n * GB)


def mbps(n: float) -> float:
    """Return *n* megabits/second expressed in bytes/second.

    Network rates use decimal prefixes, matching ``tc`` and the paper's
    Table I (e.g. a small instance's NIC is ``mbps(216)``).
    """
    return n * _DECIMAL_MEGA / _BITS_PER_BYTE


def gbps(n: float) -> float:
    """Return *n* gigabits/second expressed in bytes/second."""
    return n * _DECIMAL_GIGA / _BITS_PER_BYTE


def to_mbps(bytes_per_second: float) -> float:
    """Convert bytes/second back to megabits/second (for reporting)."""
    return bytes_per_second * _BITS_PER_BYTE / _DECIMAL_MEGA


def to_megabytes(n_bytes: float) -> float:
    """Convert bytes to MiB (for reporting)."""
    return n_bytes / MB


def to_gigabytes(n_bytes: float) -> float:
    """Convert bytes to GiB (for reporting)."""
    return n_bytes / GB


_SIZE_SUFFIXES = {
    "b": 1,
    "k": KB,
    "kb": KB,
    "kib": KB,
    "m": MB,
    "mb": MB,
    "mib": MB,
    "g": GB,
    "gb": GB,
    "gib": GB,
}

_RATE_SUFFIXES = {
    "bps": 1 / _BITS_PER_BYTE,
    "kbps": 1_000 / _BITS_PER_BYTE,
    "mbps": _DECIMAL_MEGA / _BITS_PER_BYTE,
    "gbps": _DECIMAL_GIGA / _BITS_PER_BYTE,
    "b/s": 1.0,
    "kb/s": 1_000.0,
    "mb/s": _DECIMAL_MEGA * 1.0,
    "gb/s": _DECIMAL_GIGA * 1.0,
}

_NUMBER_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([a-zA-Z/]*)\s*$")


def parse_size(text: str | int | float) -> int:
    """Parse a human size string (``"8GB"``, ``"64 MB"``, ``"64k"``) to bytes.

    Bare numbers are interpreted as bytes.  Raises :class:`ValueError` for
    unrecognized suffixes.
    """
    if isinstance(text, (int, float)):
        return int(text)
    match = _NUMBER_RE.match(text)
    if not match:
        raise ValueError(f"unparseable size: {text!r}")
    value, suffix = float(match.group(1)), match.group(2).lower()
    if not suffix:
        return int(value)
    try:
        return int(value * _SIZE_SUFFIXES[suffix])
    except KeyError:
        raise ValueError(f"unknown size suffix in {text!r}") from None


def parse_rate(text: str | int | float) -> float:
    """Parse a rate string (``"216Mbps"``, ``"1Gbps"``, ``"100MB/s"``).

    Bare numbers are interpreted as bytes/second.  Lower-case *bits* units
    (``bps`` family) and byte units (``B/s`` family) are both accepted.
    """
    if isinstance(text, (int, float)):
        return float(text)
    match = _NUMBER_RE.match(text)
    if not match:
        raise ValueError(f"unparseable rate: {text!r}")
    value, suffix = float(match.group(1)), match.group(2).lower()
    if not suffix:
        return value
    try:
        return value * _RATE_SUFFIXES[suffix]
    except KeyError:
        raise ValueError(f"unknown rate suffix in {text!r}") from None


_DURATION_SUFFIXES = {
    "s": 1.0,
    "sec": 1.0,
    "m": 60.0,
    "min": 60.0,
    "h": 3600.0,
    "hr": 3600.0,
    "d": 86400.0,
}


def parse_duration(text: str | int | float) -> float:
    """Parse a duration string (``"6h"``, ``"30m"``, ``"2d"``) to seconds.

    Bare numbers are interpreted as seconds.  Raises :class:`ValueError`
    for unrecognized suffixes.
    """
    if isinstance(text, (int, float)):
        return float(text)
    match = _NUMBER_RE.match(text)
    if not match:
        raise ValueError(f"unparseable duration: {text!r}")
    value, suffix = float(match.group(1)), match.group(2).lower()
    if not suffix:
        return value
    try:
        return value * _DURATION_SUFFIXES[suffix]
    except KeyError:
        raise ValueError(f"unknown duration suffix in {text!r}") from None


def fmt_size(n_bytes: float) -> str:
    """Render a byte count with a binary suffix, e.g. ``"8.00 GB"``."""
    value = float(n_bytes)
    for suffix, factor in (("GB", GB), ("MB", MB), ("KB", KB)):
        if abs(value) >= factor:
            return f"{value / factor:.2f} {suffix}"
    return f"{value:.0f} B"


def fmt_rate(bytes_per_second: float) -> str:
    """Render a rate in Mbps, matching the paper's reporting convention."""
    return f"{to_mbps(bytes_per_second):.1f} Mbps"


def fmt_time(seconds: float) -> str:
    """Render a duration in seconds with millisecond precision."""
    return f"{seconds:.3f} s"
