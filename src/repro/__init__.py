"""SMARTH: Enabling Multi-pipeline Data Transfer in HDFS — a full
reproduction (ICPP 2014, Zhang, Wang & Huang).

The package simulates the complete HDFS 1.0.3 write path (namenode,
datanodes, single-pipeline client) plus the SMARTH protocol
(multi-pipeline client, FNFA, global/local optimizers, multi-pipeline
fault tolerance) on a discrete-event cluster substrate, and regenerates
every table and figure of the paper's evaluation.

Quickstart::

    from repro import two_rack, compare

    scenario = two_rack("small", throttle_mbps=50)
    hdfs, smarth, improvement = compare(scenario, "1GB")
    print(f"HDFS {hdfs.duration:.0f}s, SMARTH {smarth.duration:.0f}s "
          f"({improvement:.0f}% faster)")
"""

from .analysis import (
    CostParameters,
    hdfs_time,
    improvement_percent,
    predicted_improvement,
    smarth_time,
    smarth_time_refined,
)
from .cluster import (
    LARGE,
    MEDIUM,
    SMALL,
    Cluster,
    build_custom,
    build_heterogeneous,
    build_homogeneous,
)
from .config import HdfsConfig, NetworkConfig, SimulationConfig, SmarthConfig
from .analysis.trace import Journal, TraceEvent
from .faults import FaultInjector
from .hdfs import (
    Balancer,
    DecommissionManager,
    HdfsClient,
    HdfsDeployment,
    HdfsReader,
    ReadResult,
    ReplicationMonitor,
    WriteResult,
)
from .mapred import JobConfig, JobResult, MapRunner
from .sim import Environment
from .smarth import SmarthClient, SmarthDeployment
from .units import GB, KB, MB, gbps, mbps, parse_size
from .workloads import (
    MultiUploadOutcome,
    UploadOutcome,
    compare,
    contention,
    heterogeneous,
    run_concurrent_uploads,
    run_upload,
    size_sweep,
    sweep,
    two_rack,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "SimulationConfig",
    "HdfsConfig",
    "SmarthConfig",
    "NetworkConfig",
    # substrate
    "Environment",
    "Cluster",
    "build_homogeneous",
    "build_heterogeneous",
    "build_custom",
    "SMALL",
    "MEDIUM",
    "LARGE",
    # systems
    "HdfsDeployment",
    "HdfsClient",
    "HdfsReader",
    "ReadResult",
    "SmarthDeployment",
    "SmarthClient",
    "WriteResult",
    "ReplicationMonitor",
    "DecommissionManager",
    "Balancer",
    # workloads
    "two_rack",
    "contention",
    "heterogeneous",
    "run_upload",
    "compare",
    "UploadOutcome",
    "run_concurrent_uploads",
    "MultiUploadOutcome",
    "sweep",
    "size_sweep",
    "FaultInjector",
    "MapRunner",
    "JobConfig",
    "JobResult",
    "Journal",
    "TraceEvent",
    # analysis
    "CostParameters",
    "hdfs_time",
    "smarth_time",
    "smarth_time_refined",
    "predicted_improvement",
    "improvement_percent",
    # units
    "KB",
    "MB",
    "GB",
    "mbps",
    "gbps",
    "parse_size",
]
