"""Parameter sweeps: one :class:`ComparisonRow` per x-axis point.

Every figure in the paper's evaluation is a sweep of upload-time pairs
over some knob (file size, throttle level, slow-node count); this module
is the single driver all of them share.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from ..analysis.metrics import ComparisonRow
from ..config import SimulationConfig
from .scenarios import Scenario
from .upload import run_upload

__all__ = ["sweep", "size_sweep"]


def sweep(
    scenario_for: Callable[[object], Scenario],
    xs: Iterable[object],
    size: int | str,
    config: Optional[SimulationConfig] = None,
    label_for: Optional[Callable[[object], str]] = None,
) -> list[ComparisonRow]:
    """Run HDFS vs SMARTH at every x; scenario rebuilt per point."""
    rows: list[ComparisonRow] = []
    for x in xs:
        scenario = scenario_for(x)
        hdfs = run_upload(scenario, "hdfs", size, config=config)
        smarth = run_upload(scenario, "smarth", size, config=config)
        if not (hdfs.fully_replicated and smarth.fully_replicated):
            raise RuntimeError(
                f"{scenario.name}: upload finished under-replicated"
            )
        label = label_for(x) if label_for else str(x)
        rows.append(
            ComparisonRow(
                label=label,
                hdfs_seconds=hdfs.duration,
                smarth_seconds=smarth.duration,
            )
        )
    return rows


def size_sweep(
    scenario: Scenario,
    sizes: Sequence[int | str],
    config: Optional[SimulationConfig] = None,
) -> list[ComparisonRow]:
    """Fixed scenario, varying file size (the Figure 5 / 13 shape)."""
    rows: list[ComparisonRow] = []
    for size in sizes:
        hdfs = run_upload(scenario, "hdfs", size, config=config)
        smarth = run_upload(scenario, "smarth", size, config=config)
        if not (hdfs.fully_replicated and smarth.fully_replicated):
            raise RuntimeError(
                f"{scenario.name}: upload finished under-replicated"
            )
        rows.append(
            ComparisonRow(
                label=str(size),
                hdfs_seconds=hdfs.duration,
                smarth_seconds=smarth.duration,
            )
        )
    return rows
