"""Multi-client workloads: several uploads sharing one cluster.

The paper's §IV-C buffer rule is *per client* ("its buffer is set to …
64 MB … for each client"), so distinct clients may hold pipelines on the
same datanode simultaneously; they contend for NIC and disk bandwidth
through the normal queueing model.  This module runs N concurrent
uploads (optionally staggered) and reports per-client and aggregate
outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..config import SimulationConfig
from ..hdfs.deployment import HdfsDeployment
from ..hdfs.protocol import WriteResult
from ..sim import Environment, ProcessGenerator
from ..smarth.deployment import SmarthDeployment
from ..units import parse_size
from .scenarios import Scenario

__all__ = ["MultiUploadOutcome", "run_concurrent_uploads"]


@dataclass
class MultiUploadOutcome:
    """Results of one concurrent-upload run."""

    results: list[WriteResult]
    fully_replicated: bool
    system: str
    scenario: str
    start: float = 0.0
    end: float = 0.0

    @property
    def makespan(self) -> float:
        """Time from the first start to the last completion."""
        return self.end - self.start

    @property
    def total_bytes(self) -> int:
        return sum(r.size for r in self.results)

    @property
    def aggregate_throughput(self) -> float:
        return self.total_bytes / self.makespan if self.makespan > 0 else 0.0


def run_concurrent_uploads(
    scenario: Scenario,
    system: str,
    sizes: Sequence[int | str],
    config: Optional[SimulationConfig] = None,
    stagger: float = 0.0,
    n_extra_hosts: Optional[int] = None,
) -> MultiUploadOutcome:
    """Upload ``len(sizes)`` files concurrently, one client per file.

    The first client uses the cluster's client host; additional ones need
    extra client hosts, which the scenario's builder must have provisioned
    (``two_rack``/``contention`` do when built via this function's
    ``n_extra_hosts`` rebuild path; custom scenarios must provide them).
    """
    if system not in ("hdfs", "smarth"):
        raise ValueError(f"unknown system {system!r}; expected hdfs|smarth")
    if not sizes:
        raise ValueError("need at least one upload")
    parsed = [parse_size(s) for s in sizes]
    config = config or SimulationConfig()

    env, cluster = scenario.make(config)
    needed_extra = len(parsed) - 1
    available_extra = len(cluster.extra_client_hosts)
    if needed_extra > available_extra:
        raise ValueError(
            f"scenario provides {available_extra} extra client hosts, "
            f"need {needed_extra} (build the cluster with n_extra_clients)"
        )

    deployment = (
        SmarthDeployment(cluster) if system == "smarth" else HdfsDeployment(cluster)
    )
    hosts = [cluster.client_host] + cluster.extra_client_hosts[:needed_extra]

    results: list[WriteResult] = [None] * len(parsed)  # type: ignore[list-item]

    def one_upload(env: Environment, index: int) -> ProcessGenerator:
        yield env.timeout(stagger * index)
        client = deployment.client(host=hosts[index])
        result = yield env.process(
            client.put(f"/data/client{index}.bin", parsed[index])
        )
        results[index] = result

    start = env.now
    procs = [
        env.process(one_upload(env, i), name=f"upload:{i}")
        for i in range(len(parsed))
    ]
    env.run(until=env.all_of(procs))
    end = env.now
    env.run(until=env.now + 1.0)  # let trailing blockReceived reports land

    holes = [i for i, r in enumerate(results) if r is None]
    if holes:
        # A `None` hole means an upload process finished without producing
        # a WriteResult (e.g. its generator was interrupted or returned
        # early).  Surfacing it here with the client index beats handing
        # callers a list they have to hole-check themselves.
        raise RuntimeError(
            f"upload for client {holes[0]} (of {len(parsed)}) completed "
            f"without a WriteResult; failed client indexes: {holes}"
        )

    replicated = all(
        deployment.namenode.file_fully_replicated(f"/data/client{i}.bin")
        for i in range(len(parsed))
    )
    return MultiUploadOutcome(
        results=list(results),
        fully_replicated=replicated,
        system=system,
        scenario=scenario.name,
        start=start,
        end=end,
    )
