"""Workloads: scenario builders, upload drivers and parameter sweeps."""

from .multi import MultiUploadOutcome, run_concurrent_uploads
from .scenarios import Scenario, contention, heterogeneous, two_rack
from .sharded import (
    PodPlan,
    PodRunOutcome,
    PodSpec,
    campaign10k,
    run_pods_sharded,
    run_pods_single_env,
)
from .sweep import size_sweep, sweep
from .upload import UploadOutcome, compare, run_upload

__all__ = [
    "Scenario",
    "two_rack",
    "contention",
    "heterogeneous",
    "run_upload",
    "compare",
    "UploadOutcome",
    "run_concurrent_uploads",
    "MultiUploadOutcome",
    "PodSpec",
    "PodPlan",
    "PodRunOutcome",
    "campaign10k",
    "run_pods_single_env",
    "run_pods_sharded",
    "sweep",
    "size_sweep",
]
