"""End-to-end upload workloads: the `hdfs put` the paper measures.

:func:`run_upload` builds a scenario, deploys either baseline HDFS or
SMARTH on it, optionally wires fault injection, uploads one file and
returns everything the experiment harness needs.  :func:`compare` runs
both systems on identical scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..analysis.metrics import improvement_percent
from ..config import SimulationConfig
from ..faults.injector import FaultInjector
from ..hdfs.deployment import HdfsDeployment
from ..hdfs.protocol import WriteResult
from ..policy.registry import PolicySpec
from ..smarth.deployment import SmarthDeployment
from ..units import parse_size
from .scenarios import Scenario

__all__ = ["UploadOutcome", "run_upload", "compare"]


@dataclass
class UploadOutcome:
    """Everything observed from one simulated upload."""

    result: WriteResult
    fully_replicated: bool
    system: str
    scenario: str
    injected_faults: tuple[str, ...] = ()
    #: The deployment the upload ran on — only kept when the caller asked
    #: for observability (``observe=True``), so traces and metrics can be
    #: exported after the run.
    deployment: Optional[object] = None

    @property
    def duration(self) -> float:
        return self.result.duration


def run_upload(
    scenario: Scenario,
    system: str,
    size: int | str,
    config: Optional[SimulationConfig] = None,
    path: str = "/data/upload.bin",
    fault_hook: Optional[Callable[[FaultInjector], None]] = None,
    observe: bool = False,
    policy: "PolicySpec" = None,
) -> UploadOutcome:
    """Upload ``size`` bytes through ``system`` ("hdfs" or "smarth").

    ``policy`` accepts anything :func:`repro.policy.resolve_policy`
    does; passing one *instance* across calls lets stateful policies
    (the online tuner) learn across otherwise-independent uploads.
    """
    if system not in ("hdfs", "smarth"):
        raise ValueError(f"unknown system {system!r}; expected hdfs|smarth")
    size = parse_size(size)
    config = config or SimulationConfig()

    env, cluster = scenario.make(config)
    deployment = (
        SmarthDeployment(cluster, observe=observe, policy=policy)
        if system == "smarth"
        else HdfsDeployment(cluster, observe=observe, policy=policy)
    )

    injected: tuple[str, ...] = ()
    if fault_hook is not None:
        injector = FaultInjector(deployment)
        fault_hook(injector)

    client = deployment.client()
    result = env.run(until=env.process(client.put(path, size)))

    if fault_hook is not None:
        injected = injector.killed()

    # Let trailing blockReceived reports land before checking replication.
    env.run(until=env.now + 1.0)
    return UploadOutcome(
        result=result,
        fully_replicated=deployment.namenode.file_fully_replicated(path),
        system=system,
        scenario=scenario.name,
        injected_faults=injected,
        deployment=deployment if observe else None,
    )


def compare(
    scenario: Scenario,
    size: int | str,
    config: Optional[SimulationConfig] = None,
    fault_hook: Optional[Callable[[FaultInjector], None]] = None,
) -> tuple[UploadOutcome, UploadOutcome, float]:
    """Run both systems on the scenario; returns (hdfs, smarth, improvement%)."""
    hdfs = run_upload(scenario, "hdfs", size, config=config, fault_hook=fault_hook)
    smarth = run_upload(
        scenario, "smarth", size, config=config, fault_hook=fault_hook
    )
    return hdfs, smarth, improvement_percent(hdfs.duration, smarth.duration)
