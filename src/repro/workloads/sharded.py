"""Pod-partitioned multi-tenant workloads for the sharded simulation core.

Large multi-tenant campaigns decompose along rack/client-group
boundaries: a *pod* is one client group plus the datanodes (and
namenode) it writes to — the cell architecture real fleets shard
ingestion across.  Pods share no channels, so the conservative
cross-shard lookahead between them is infinite and every executor must
agree on the result:

* :func:`run_pods_single_env` — all pods simulated in **one**
  environment (the single-heap baseline, or an in-process
  :class:`~repro.sim.ShardedEnvironment` with each pod pinned to a
  shard).
* :func:`run_pods_sharded` — pods grouped onto shards and executed in a
  worker-process pool (via :func:`repro.pool.map_named`), each shard
  simulating its pods in its own environment; results merge in fixed
  pod order.

The per-client ``(start, end)`` timeline is keyed ``(pod, client)`` and
must be identical across all of these modes and any shard count — the
shard-invariance property ``benchmarks/bench_shard.py`` and the
workloads test suite assert, never assume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import SimulationConfig
from ..hdfs.deployment import HdfsDeployment
from ..net.nic import aggregate_counters
from ..pool import map_named
from ..sim import Environment, ProcessGenerator, ShardedEnvironment
from ..smarth.deployment import SmarthDeployment
from ..units import MB
from .scenarios import two_rack

__all__ = [
    "PodSpec",
    "PodPlan",
    "PodRunOutcome",
    "campaign10k",
    "run_pods_single_env",
    "run_pods_sharded",
]

#: (pod index, client index) → it sorts, so merged timelines have one
#: canonical order regardless of executor.
ClientKey = tuple[int, int]

_INF = float("inf")


@dataclass(frozen=True)
class PodSpec:
    """One independent cell: a client group and its private sub-cluster."""

    index: int
    n_clients: int
    n_datanodes: int
    file_bytes: int
    stagger: float

    def __post_init__(self) -> None:
        if self.n_clients < 1:
            raise ValueError("pod needs at least one client")
        if self.n_datanodes < 1:
            raise ValueError("pod needs at least one datanode")

    def scenario(self):
        return two_rack(
            "small",
            n_datanodes=self.n_datanodes,
            n_extra_clients=self.n_clients - 1,
        )


@dataclass(frozen=True)
class PodPlan:
    """A fixed partition of a multi-tenant campaign into pods.

    The pod structure is part of the *workload*, not the executor: every
    executor runs the same pods, only distributed differently, which is
    what makes their wall-clock times comparable.
    """

    pods: tuple[PodSpec, ...]

    @classmethod
    def regular(
        cls,
        n_pods: int,
        clients_per_pod: int,
        datanodes_per_pod: int,
        file_bytes: int,
        stagger: float = 0.05,
    ) -> "PodPlan":
        """``n_pods`` identical pods (the scale-benchmark shape)."""
        if n_pods < 1:
            raise ValueError("need at least one pod")
        return cls(
            pods=tuple(
                PodSpec(
                    index=index,
                    n_clients=clients_per_pod,
                    n_datanodes=datanodes_per_pod,
                    file_bytes=file_bytes,
                    stagger=stagger,
                )
                for index in range(n_pods)
            )
        )

    @property
    def n_clients(self) -> int:
        return sum(pod.n_clients for pod in self.pods)

    @property
    def n_datanodes(self) -> int:
        return sum(pod.n_datanodes for pod in self.pods)

    def shard_assignment(self, shards: int) -> list[list[PodSpec]]:
        """Round-robin pods over ``shards`` groups (fixed, deterministic)."""
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        groups: list[list[PodSpec]] = [[] for _ in range(shards)]
        for pod in self.pods:
            groups[pod.index % shards].append(pod)
        return groups


@dataclass
class PodRunOutcome:
    """Merged result of one pod-plan execution under any executor."""

    #: ``((pod, client), start, end)`` in canonical (pod, client) order.
    timeline: list[tuple[ClientKey, float, float]]
    #: Simulation events dispatched, summed over all environments.
    events_processed: int
    fully_replicated: bool
    #: Executor label: ``single``, ``sharded-inproc``, or ``processes``.
    executor: str
    #: Environment health dict (single-env modes only).
    health: Optional[dict] = None
    #: Events per worker shard (process executor only).
    shard_events: Optional[list[int]] = None
    #: Aggregate NIC ``(bytes_sent, bytes_received)`` over every host
    #: (single-env modes only).
    bytes_moved: Optional[tuple[int, int]] = None

    @property
    def makespan(self) -> float:
        starts = [start for _key, start, _end in self.timeline]
        ends = [end for _key, _start, end in self.timeline]
        return (max(ends) - min(starts)) if self.timeline else 0.0


def campaign10k(scale: float = 1.0) -> PodPlan:
    """The 10k-client ingestion campaign: 100 pods of 100 clients x 10
    datanodes (10,000 clients, 1,000 datanodes at full scale).

    Pod shape is tuned for the analytic fast paths the campaign
    benchmark measures: 4 MB files (one 64-packet block, inside the
    data-queue bound so the train's batched feeder engages) and a 0.5 s
    client stagger (uploads within a pod barely overlap, so the
    coalesced packet-train path conducts nearly every block).  ``scale``
    shrinks the campaign by dropping pods — the per-pod shape, and
    therefore per-client timing, is invariant — e.g. ``scale=0.02`` is
    the 2-pod CI smoke shape.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    n_pods = max(1, round(100 * scale))
    return PodPlan.regular(
        n_pods,
        clients_per_pod=100,
        datanodes_per_pod=10,
        file_bytes=4 * MB,
        stagger=0.5,
    )


def _deployment(system: str, cluster):
    if system == "smarth":
        return SmarthDeployment(cluster)
    if system == "hdfs":
        return HdfsDeployment(cluster)
    raise ValueError(f"unknown system {system!r}; expected hdfs|smarth")


def _start_pod(
    env: Environment,
    pod: PodSpec,
    system: str,
    config: SimulationConfig,
    results: dict[ClientKey, tuple[float, float]],
) -> tuple[list, object]:
    """Build one pod's cluster in ``env`` and launch its client uploads."""
    cluster = pod.scenario().build(env, config)
    deployment = _deployment(system, cluster)
    hosts = [cluster.client_host] + cluster.extra_client_hosts[: pod.n_clients - 1]

    def one_upload(client_index: int) -> ProcessGenerator:
        yield env.timeout(pod.stagger * client_index)
        client = deployment.client(host=hosts[client_index])
        result = yield env.process(
            client.put(
                f"/data/pod{pod.index}/client{client_index}.bin",
                pod.file_bytes,
            )
        )
        results[(pod.index, client_index)] = (result.start, result.end)

    procs = [
        env.process(one_upload(i), name=f"pod{pod.index}:upload:{i}")
        for i in range(pod.n_clients)
    ]
    return procs, deployment


def _finish(env: Environment, procs: list) -> None:
    env.run(until=env.all_of(procs))
    env.run(until=env.now + 1.0)  # let trailing blockReceived reports land


def _replicated(deployment, pod: PodSpec) -> bool:
    return all(
        deployment.namenode.file_fully_replicated(
            f"/data/pod{pod.index}/client{i}.bin"
        )
        for i in range(pod.n_clients)
    )


def run_pods_single_env(
    plan: PodPlan,
    system: str = "smarth",
    config: Optional[SimulationConfig] = None,
    shards: Optional[int] = None,
    windowed: bool = False,
    workers: Optional[int] = None,
    window: float = 5.0,
) -> PodRunOutcome:
    """Run every pod inside one environment.

    ``shards=None`` uses the plain single-heap :class:`Environment` (the
    baseline every other executor is checked against); ``shards=k`` uses
    an in-process :class:`ShardedEnvironment` with pod *i* pinned to
    shard ``i % k`` — bit-identical by the deterministic merge, with
    per-shard load visible in the outcome's ``health``.

    ``windowed=True`` (requires ``shards``) executes with
    :meth:`~repro.sim.ShardedEnvironment.run_windows` at infinite
    lookahead — pods share nothing, so the whole run is one conservative
    window — in chunks of ``window`` simulated seconds (periodic model
    processes never let the schedule run dry, so each chunk bounds the
    drain and the barrier checks upload completion).  ``workers=N``
    drains each chunk's shards on a thread pool.
    """
    config = config or SimulationConfig()
    if shards is None:
        if windowed or workers:
            raise ValueError("windowed/workers execution requires shards")
        env: Environment = Environment()
        executor = "single"
    else:
        env = ShardedEnvironment(
            shards=shards, lookahead=_INF if windowed else 0.0
        )
        executor = "sharded-windowed" if windowed else "sharded-inproc"

    results: dict[ClientKey, tuple[float, float]] = {}
    all_procs = []
    deployments = []
    for pod in plan.pods:
        if isinstance(env, ShardedEnvironment):
            with env.pinned(pod.index % env.shard_count):
                procs, deployment = _start_pod(env, pod, system, config, results)
        else:
            procs, deployment = _start_pod(env, pod, system, config, results)
        all_procs.extend(procs)
        deployments.append(deployment)

    if windowed:
        assert isinstance(env, ShardedEnvironment)
        while not all(proc.triggered for proc in all_procs):
            env.run_windows(until=env.now + window, workers=workers)
        env.run(until=env.now + 1.0)  # trailing blockReceived reports
    else:
        _finish(env, all_procs)
    replicated = all(
        _replicated(deployment, pod)
        for deployment, pod in zip(deployments, plan.pods)
    )
    return PodRunOutcome(
        timeline=[
            (key, start, end)
            for key, (start, end) in sorted(results.items())
        ],
        events_processed=env.events_processed,
        fully_replicated=replicated,
        executor=executor,
        health=env.health(),
        bytes_moved=aggregate_counters(
            host
            for deployment in deployments
            for host in deployment.cluster.all_hosts
        ),
    )


def _run_pod_group(
    pods: tuple[PodSpec, ...], system: str, config: SimulationConfig
) -> tuple[list[tuple[ClientKey, float, float]], int, bool]:
    """Worker entry point: simulate one shard's pods, each in a fresh env.

    Module-level so it pickles to pool workers; also the ``jobs=1`` path,
    so sequential and parallel execution share every line.
    """
    timeline: list[tuple[ClientKey, float, float]] = []
    events = 0
    replicated = True
    for pod in pods:
        env = Environment()
        results: dict[ClientKey, tuple[float, float]] = {}
        procs, deployment = _start_pod(env, pod, system, config, results)
        _finish(env, procs)
        timeline.extend((key, start, end) for key, (start, end) in sorted(results.items()))
        events += env.events_processed
        replicated = replicated and _replicated(deployment, pod)
    return timeline, events, replicated


def run_pods_sharded(
    plan: PodPlan,
    shards: int,
    system: str = "smarth",
    config: Optional[SimulationConfig] = None,
    jobs: Optional[int] = None,
) -> PodRunOutcome:
    """Execute the plan's pods across a worker-process pool.

    Pods are grouped onto ``shards`` shards round-robin and each shard's
    group runs in its own child process (``jobs`` defaults to
    ``shards``).  Cross-pod lookahead is infinite — pods share nothing —
    so no window barriers are needed and the merged timeline is exactly
    the single-environment one, in the same canonical order.
    """
    config = config or SimulationConfig()
    groups = plan.shard_assignment(shards)
    tasks = [
        (f"shard{index}", (tuple(group), system, config))
        for index, group in enumerate(groups)
        if group
    ]
    jobs = shards if jobs is None else jobs
    outputs = map_named(_run_pod_group, tasks, jobs=jobs)

    timeline: list[tuple[ClientKey, float, float]] = []
    shard_events = []
    replicated = True
    for group_timeline, events, group_replicated in outputs:
        timeline.extend(group_timeline)
        shard_events.append(events)
        replicated = replicated and group_replicated
    timeline.sort(key=lambda item: item[0])
    return PodRunOutcome(
        timeline=timeline,
        events_processed=sum(shard_events),
        fully_replicated=replicated,
        executor="processes",
        shard_events=shard_events,
    )
