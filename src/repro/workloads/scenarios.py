"""Scenario builders — the paper's four evaluation settings (§V).

A :class:`Scenario` is a named recipe producing a fresh cluster (with its
throttles applied) inside a fresh environment, so repeated runs are fully
independent and deterministic per seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..cluster.builder import (
    Cluster,
    build_heterogeneous,
    build_homogeneous,
)
from ..config import SimulationConfig
from ..sim import Environment

__all__ = [
    "Scenario",
    "two_rack",
    "contention",
    "heterogeneous",
    "environment_factory",
]

#: Factory :meth:`Scenario.make` uses for fresh environments.  Swapping
#: it (e.g. to ``lambda: ShardedEnvironment(shards=4)``) reruns every
#: experiment, chaos campaign and workload on a different scheduler —
#: the hook the shard-invariance equivalence suite drives, mirroring how
#: the scale suite swaps ``speed_registry_factory``.
environment_factory: Callable[[], Environment] = Environment


@dataclass(frozen=True)
class Scenario:
    """A reproducible cluster recipe."""

    name: str
    description: str
    build: Callable[[Environment, SimulationConfig], Cluster]

    def make(
        self, config: Optional[SimulationConfig] = None
    ) -> tuple[Environment, Cluster]:
        """Instantiate the scenario: fresh environment + cluster."""
        config = config or SimulationConfig()
        env = environment_factory()
        return env, self.build(env, config)


def two_rack(
    instance: str = "small",
    n_datanodes: int = 9,
    throttle_mbps: Optional[float] = None,
    n_extra_clients: int = 0,
) -> Scenario:
    """§V-B.1: homogeneous cluster on two racks, optional boundary throttle."""

    def build(env: Environment, config: SimulationConfig) -> Cluster:
        cluster = build_homogeneous(
            env,
            instance,
            n_datanodes=n_datanodes,
            config=config,
            n_extra_clients=n_extra_clients,
        )
        if throttle_mbps is not None:
            cluster.throttle_rack_boundary(throttle_mbps)
        return cluster

    label = f"{throttle_mbps:g}Mbps" if throttle_mbps else "default"
    return Scenario(
        name=f"two_rack[{instance},{label}]",
        description=(
            f"{n_datanodes} {instance} datanodes over two racks, "
            f"cross-rack bandwidth {label}"
        ),
        build=build,
    )


def contention(
    instance: str = "small",
    n_datanodes: int = 9,
    n_slow: int = 1,
    slow_mbps: float = 50,
    n_extra_clients: int = 0,
) -> Scenario:
    """§V-B.2: ``n_slow`` datanodes throttled in both directions."""
    if n_slow < 0 or n_slow > n_datanodes:
        raise ValueError("n_slow must be within [0, n_datanodes]")

    def build(env: Environment, config: SimulationConfig) -> Cluster:
        cluster = build_homogeneous(
            env,
            instance,
            n_datanodes=n_datanodes,
            config=config,
            n_extra_clients=n_extra_clients,
        )
        cluster.throttle_datanodes(n_slow, slow_mbps)
        return cluster

    return Scenario(
        name=f"contention[{instance},{n_slow}x{slow_mbps:g}Mbps]",
        description=(
            f"{n_datanodes} {instance} datanodes, {n_slow} of them "
            f"throttled to {slow_mbps:g} Mbps"
        ),
        build=build,
    )


def heterogeneous() -> Scenario:
    """§V-B.3: 3 small + 3 medium + 3 large datanodes, medium namenode."""

    def build(env: Environment, config: SimulationConfig) -> Cluster:
        return build_heterogeneous(env, config=config)

    return Scenario(
        name="heterogeneous",
        description="3 small + 3 medium + 3 large datanodes (medium namenode)",
        build=build,
    )
