"""Paper-reported reference numbers, digitized from the text of §V.

Only claims the paper states numerically are recorded; bar-chart-only
values are represented by the qualitative trend the text asserts.  Every
entry carries the sentence it came from, so EXPERIMENTS.md can quote its
provenance.
"""

from __future__ import annotations

__all__ = ["PAPER_CLAIMS", "TABLE1"]

#: Table I verbatim (memory GB, ECUs, network Mbps).
TABLE1 = {
    "small": {"memory_gb": 1.7, "ecus": 1, "network_mbps": 216},
    "medium": {"memory_gb": 3.75, "ecus": 2, "network_mbps": 376},
    "large": {"memory_gb": 7.5, "ecus": 4, "network_mbps": 376},
}

PAPER_CLAIMS: dict[str, dict] = {
    "fig5": {
        "claim": "upload time is proportional to file size (1–8 GB), with "
        "and without 100 Mbps two-rack throttling; no big gain for SMARTH "
        "when the network is homogeneous and unthrottled; medium and "
        "large clusters perform the same (equal NICs)",
        "source": "§V-B.1, Figure 5(a)-(f)",
    },
    "fig6": {
        "cluster": "small",
        "improvement_pct": {50: 130, 150: 27},
        "claim": "the more we throttle the network, the better SMARTH "
        "does: 130% at 50 Mbps, about 27% at 150 Mbps",
        "source": "§V-B.1, Figure 6",
    },
    "fig7": {
        "cluster": "medium",
        "improvement_pct": {50: 225},
        "claim": "SMARTH achieves an improvement of 225% in the medium "
        "cluster at 50 Mbps throttling",
        "source": "§V-B.1, Figure 7",
    },
    "fig8": {
        "cluster": "large",
        "improvement_pct": {50: 245},
        "claim": "SMARTH outperforms HDFS by 245% in the large cluster at "
        "50 Mbps throttling",
        "source": "§V-B.1, Figure 8",
    },
    "fig9": {
        "claim": "improvement decreases monotonically as the cross-rack "
        "throttle is relaxed, for all three cluster types",
        "source": "§V-B.1, Figure 9",
    },
    "fig10": {
        "cluster": "small",
        "improvement_pct": {1: 78},
        "claim": "with even one 50 Mbps datanode, SMARTH outperforms "
        "Hadoop by 78%; more slow nodes → more improvement",
        "source": "§V-B.2, Figure 10",
    },
    "fig11": {
        "clusters": ("medium", "large"),
        "improvement_pct": {("medium", 1): 167},
        "claim": "167% improvement uploading 8 GB in the medium cluster "
        "with one 50 Mbps node; similar in the large cluster; medium and "
        "large perform alike",
        "source": "§V-B.2, Figure 11(a)(b)",
    },
    "fig12": {
        "clusters": ("small", "medium"),
        "improvement_pct": {("small", 1): 19, ("medium", 1): 59},
        "claim": "at 150 Mbps node throttling the benefit drops to 19% "
        "(small) and 59% (medium) versus the 50 Mbps case",
        "source": "§V-B.2, Figure 12(a)(b)",
    },
    "fig13": {
        "hdfs_seconds_8gb": 289,
        "smarth_seconds_8gb": 205,
        "improvement_pct": 41,
        "claim": "uploading 8 GB in the heterogeneous cluster takes 289 s "
        "on HDFS and 205 s on SMARTH — 41% faster",
        "source": "§V-B.3, Figure 13",
    },
    "table1": {
        "claim": "EC2 instance catalog used throughout the evaluation",
        "source": "§V-A, Table I",
        "values": TABLE1,
    },
    "faultrec": {
        "claim": "when a pipeline datanode fails mid-transfer, both "
        "clients recover via Algorithm 3 (SMARTH additionally pauses its "
        "other pipelines per Algorithm 4) and the upload completes "
        "without losing acknowledged data",
        "source": "§III-B, Algorithms 3-4",
    },
}
