"""Experiment drivers — one function per table/figure of the paper's §V.

Each driver runs the same workload the paper measured (scaled by
``scale`` when exploratory speed matters more than full 8 GB fidelity)
and returns an :class:`~repro.experiments.report.ExperimentResult` whose
rows are the exact series the figure plots, with the paper's numeric
claims attached for side-by-side comparison.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..analysis.metrics import ComparisonRow
from ..cluster.instance import INSTANCE_CATALOG
from ..config import SimulationConfig
from ..units import GB, MB, to_gigabytes, to_mbps
from ..workloads.scenarios import contention, heterogeneous, two_rack
from ..workloads.sweep import size_sweep, sweep
from ..workloads.upload import run_upload
from .paper_data import PAPER_CLAIMS
from .report import ExperimentResult

__all__ = [
    "experiment_config",
    "table1",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "faultrec",
    "ALL_EXPERIMENTS",
]

#: Simulation packet granularity for the 1–8 GB experiment runs; packet-
#: level dynamics are granularity-stable (bench_ablation_granularity).
EXPERIMENT_PACKET = 4 * MB


def experiment_config(seed: int = 20140901) -> SimulationConfig:
    """The configuration every §V experiment runs under."""
    return SimulationConfig(seed=seed).with_hdfs(packet_size=EXPERIMENT_PACKET)


def _scaled(size_gb: float, scale: float) -> int:
    return max(int(size_gb * scale * GB), 64 * MB)


def _rows_to_dicts(rows: Sequence[ComparisonRow]) -> list[dict]:
    return [r.as_dict() for r in rows]


# ---------------------------------------------------------------------------
def table1() -> ExperimentResult:
    """Table I: the EC2 instance catalog the evaluation runs on."""
    rows = [
        {
            "instance": name,
            "memory_gb": round(to_gigabytes(itype.memory), 2),
            "ecus": itype.ecus,
            "network_mbps": round(to_mbps(itype.network_rate)),
        }
        for name, itype in INSTANCE_CATALOG.items()
    ]
    return ExperimentResult(
        experiment_id="table1",
        title="Amazon EC2 instance types",
        columns=("instance", "memory_gb", "ecus", "network_mbps"),
        rows=rows,
        paper_claim=PAPER_CLAIMS["table1"],
        measured={r["instance"]: f"{r['network_mbps']}Mbps" for r in rows},
    )


def fig5(
    config: Optional[SimulationConfig] = None,
    scale: float = 1.0,
    sizes_gb: Sequence[float] = (1, 2, 4, 8),
    instances: Sequence[str] = ("small", "medium", "large"),
    throttle_mbps: float = 100,
) -> ExperimentResult:
    """Figure 5(a)-(f): upload time vs file size, default vs throttled."""
    config = config or experiment_config()
    rows: list[dict] = []
    for instance in instances:
        for throttled in (False, True):
            scenario = two_rack(
                instance, throttle_mbps=throttle_mbps if throttled else None
            )
            series = size_sweep(
                scenario,
                [_scaled(g, scale) for g in sizes_gb],
                config=config,
            )
            for size_gb, row in zip(sizes_gb, series):
                rows.append(
                    {
                        "instance": instance,
                        "network": f"{throttle_mbps:g}Mbps" if throttled else "default",
                        "size_gb": round(size_gb * scale, 3),
                        "hdfs_s": round(row.hdfs_seconds, 1),
                        "smarth_s": round(row.smarth_seconds, 1),
                        "improvement_pct": round(row.improvement, 1),
                    }
                )

    # Measured linearity: time(max size) / time(min size) vs size ratio.
    measured = {}
    for instance in instances:
        subset = [
            r
            for r in rows
            if r["instance"] == instance and r["network"] == "default"
        ]
        if len(subset) >= 2:
            ratio = subset[-1]["hdfs_s"] / subset[0]["hdfs_s"]
            size_ratio = subset[-1]["size_gb"] / subset[0]["size_gb"]
            measured[f"{instance}_time_ratio"] = round(ratio, 2)
            measured[f"{instance}_size_ratio"] = round(size_ratio, 2)
    return ExperimentResult(
        experiment_id="fig5",
        title="Uploading time vs file size, with and without throttling",
        columns=(
            "instance",
            "network",
            "size_gb",
            "hdfs_s",
            "smarth_s",
            "improvement_pct",
        ),
        rows=rows,
        paper_claim=PAPER_CLAIMS["fig5"],
        measured=measured,
    )


def _throttle_figure(
    experiment_id: str,
    cluster: str,
    config: Optional[SimulationConfig],
    scale: float,
    throttles: Sequence[Optional[float]],
    size_gb: float,
) -> ExperimentResult:
    config = config or experiment_config()
    rows = sweep(
        scenario_for=lambda t: two_rack(cluster, throttle_mbps=t),
        xs=list(throttles),
        size=_scaled(size_gb, scale),
        config=config,
        label_for=lambda t: f"{t:g}Mbps" if t else "default",
    )
    claims = PAPER_CLAIMS[experiment_id]
    measured = {
        row.label: f"{row.improvement:.0f}%" for row in rows
    }
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"{cluster} cluster: upload time vs cross-rack throttle (8 GB)",
        columns=("label", "hdfs_s", "smarth_s", "improvement_pct"),
        rows=_rows_to_dicts(rows),
        paper_claim=claims,
        measured=measured,
    )


def fig6(config=None, scale: float = 1.0, throttles=(50, 100, 150, None)) -> ExperimentResult:
    """Figure 6: small cluster, throttle sweep (paper: 130% @50, 27% @150)."""
    return _throttle_figure("fig6", "small", config, scale, throttles, 8)


def fig7(config=None, scale: float = 1.0, throttles=(50, 100, 150, None)) -> ExperimentResult:
    """Figure 7: medium cluster, throttle sweep (paper: 225% @50)."""
    return _throttle_figure("fig7", "medium", config, scale, throttles, 8)


def fig8(config=None, scale: float = 1.0, throttles=(50, 100, 150, None)) -> ExperimentResult:
    """Figure 8: large cluster, throttle sweep (paper: 245% @50)."""
    return _throttle_figure("fig8", "large", config, scale, throttles, 8)


def fig9(
    config=None,
    scale: float = 1.0,
    throttles=(50, 100, 150),
    clusters=("small", "medium", "large"),
) -> ExperimentResult:
    """Figure 9: improvement vs throttle level for all three clusters."""
    config = config or experiment_config()
    rows: list[dict] = []
    measured: dict = {}
    for cluster in clusters:
        series = sweep(
            scenario_for=lambda t, c=cluster: two_rack(c, throttle_mbps=t),
            xs=list(throttles),
            size=_scaled(8, scale),
            config=config,
            label_for=lambda t: f"{t:g}",
        )
        improvements = []
        for throttle, row in zip(throttles, series):
            rows.append(
                {
                    "cluster": cluster,
                    "throttle_mbps": throttle,
                    "improvement_pct": round(row.improvement, 1),
                }
            )
            improvements.append(row.improvement)
        measured[f"{cluster}_monotone_decreasing"] = all(
            a >= b for a, b in zip(improvements, improvements[1:])
        )
    return ExperimentResult(
        experiment_id="fig9",
        title="Improvement vs bandwidth throttling (all clusters)",
        columns=("cluster", "throttle_mbps", "improvement_pct"),
        rows=rows,
        paper_claim=PAPER_CLAIMS["fig9"],
        measured=measured,
    )


def _contention_figure(
    experiment_id: str,
    clusters: Sequence[str],
    slow_mbps: float,
    config: Optional[SimulationConfig],
    scale: float,
    ks: Sequence[int],
) -> ExperimentResult:
    config = config or experiment_config()
    rows: list[dict] = []
    measured: dict = {}
    for cluster in clusters:
        series = sweep(
            scenario_for=lambda k, c=cluster: contention(
                c, n_slow=k, slow_mbps=slow_mbps
            ),
            xs=list(ks),
            size=_scaled(8, scale),
            config=config,
            label_for=str,
        )
        for k, row in zip(ks, series):
            rows.append(
                {
                    "cluster": cluster,
                    "slow_nodes": k,
                    "hdfs_s": round(row.hdfs_seconds, 1),
                    "smarth_s": round(row.smarth_seconds, 1),
                    "improvement_pct": round(row.improvement, 1),
                }
            )
            if k == 1:
                measured[f"{cluster}_k1"] = f"{row.improvement:.0f}%"
    return ExperimentResult(
        experiment_id=experiment_id,
        title=(
            f"{'/'.join(clusters)} cluster(s): upload time vs number of "
            f"{slow_mbps:g} Mbps datanodes (8 GB)"
        ),
        columns=("cluster", "slow_nodes", "hdfs_s", "smarth_s", "improvement_pct"),
        rows=rows,
        paper_claim=PAPER_CLAIMS[experiment_id],
        measured=measured,
    )


def fig10(config=None, scale: float = 1.0, ks=(0, 1, 2, 3, 4, 5)) -> ExperimentResult:
    """Figure 10: small cluster, 50 Mbps slow-node sweep (paper: 78% @k=1)."""
    return _contention_figure("fig10", ("small",), 50, config, scale, ks)


def fig11(config=None, scale: float = 1.0, ks=(0, 1, 2, 3, 4, 5)) -> ExperimentResult:
    """Figure 11: medium/large clusters, 50 Mbps slow nodes (167% @k=1 medium)."""
    return _contention_figure("fig11", ("medium", "large"), 50, config, scale, ks)


def fig12(config=None, scale: float = 1.0, ks=(0, 1, 2, 3, 4, 5)) -> ExperimentResult:
    """Figure 12: small/medium clusters, 150 Mbps slow nodes (19%/59% @k=1)."""
    return _contention_figure("fig12", ("small", "medium"), 150, config, scale, ks)


def fig13(
    config=None, scale: float = 1.0, sizes_gb: Sequence[float] = (1, 2, 4, 8)
) -> ExperimentResult:
    """Figure 13: heterogeneous cluster, time vs size (289 s vs 205 s @8 GB)."""
    config = config or experiment_config()
    series = size_sweep(
        heterogeneous(),
        [_scaled(g, scale) for g in sizes_gb],
        config=config,
    )
    rows = [
        {
            "size_gb": round(g * scale, 3),
            "hdfs_s": round(row.hdfs_seconds, 1),
            "smarth_s": round(row.smarth_seconds, 1),
            "improvement_pct": round(row.improvement, 1),
        }
        for g, row in zip(sizes_gb, series)
    ]
    last = rows[-1]
    return ExperimentResult(
        experiment_id="fig13",
        title="Heterogeneous cluster: upload time vs data size",
        columns=("size_gb", "hdfs_s", "smarth_s", "improvement_pct"),
        rows=rows,
        paper_claim=PAPER_CLAIMS["fig13"],
        measured={
            "hdfs_s_at_max": last["hdfs_s"],
            "smarth_s_at_max": last["smarth_s"],
            "improvement_at_max": f"{last['improvement_pct']:.0f}%",
        },
    )


def faultrec(
    config=None, scale: float = 1.0, size_gb: float = 1.0
) -> ExperimentResult:
    """Fault recovery under a fixed schedule: one mid-pipeline kill at
    t=1 s plus one 50 Mbps throttle at t=3 s (the paper's §III-B fault
    model, pinned for golden-result testing)."""
    config = config or experiment_config()
    size = _scaled(size_gb, scale)
    scenario = two_rack("small")

    def faults(injector) -> None:
        injector.kill_busy_at(at=1.0, pick=1)
        injector.throttle_at("dn1", 50.0, at=3.0)

    rows = []
    for system in ("hdfs", "smarth"):
        outcome = run_upload(
            scenario, system, size, config=config, fault_hook=faults
        )
        rows.append(
            {
                "system": system,
                "time_s": round(outcome.duration, 1),
                "recoveries": outcome.result.recoveries,
                "max_pipelines": outcome.result.max_concurrent_pipelines,
                "fully_replicated": outcome.fully_replicated,
                "killed": ",".join(outcome.injected_faults),
            }
        )
    return ExperimentResult(
        experiment_id="faultrec",
        title="Pipeline recovery under a fixed kill + throttle schedule",
        columns=(
            "system",
            "time_s",
            "recoveries",
            "max_pipelines",
            "fully_replicated",
            "killed",
        ),
        rows=rows,
        paper_claim=PAPER_CLAIMS["faultrec"],
        measured={
            "hdfs_recoveries": rows[0]["recoveries"],
            "smarth_recoveries": rows[1]["recoveries"],
        },
    )


#: Registry used by the benchmark harness and EXPERIMENTS.md generator.
ALL_EXPERIMENTS = {
    "table1": table1,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "faultrec": faultrec,
}
