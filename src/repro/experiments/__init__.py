"""Experiment drivers reproducing every table and figure of the paper."""

from .figures import (
    ALL_EXPERIMENTS,
    experiment_config,
    faultrec,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    table1,
)
from .paper_data import PAPER_CLAIMS, TABLE1
from .report import ExperimentResult, format_table, render_bars
from .runner import run_all, to_markdown

__all__ = [
    "ALL_EXPERIMENTS",
    "experiment_config",
    "table1",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "faultrec",
    "PAPER_CLAIMS",
    "TABLE1",
    "ExperimentResult",
    "format_table",
    "render_bars",
    "run_all",
    "to_markdown",
]
