"""Experiment result containers and plain-text reporting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

__all__ = ["ExperimentResult", "format_table", "render_bars"]


def render_bars(
    rows: Sequence[dict],
    value_key: str,
    label_key: str = "label",
    width: int = 48,
    unit: str = "",
) -> str:
    """Render one numeric column as a horizontal ASCII bar chart.

    The experiments are figures in the paper; this gives the CLI and the
    examples a way to *show* a series, not just tabulate it.
    """
    values = [float(r[value_key]) for r in rows]
    if not values:
        raise ValueError("no rows to render")
    peak = max(values)
    if peak <= 0:
        peak = 1.0
    labels = [str(r.get(label_key, "")) for r in rows]
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(1, round(width * value / peak)) if value > 0 else ""
        lines.append(
            f"{label.rjust(label_width)} | {bar} {value:g}{unit}"
        )
    return "\n".join(lines)


def format_table(columns: Sequence[str], rows: Sequence[dict]) -> str:
    """Render rows as an aligned text table (same series the paper plots)."""
    table = [[str(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in table)) if table else len(c)
        for i, c in enumerate(columns)
    ]
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    lines = [fmt(list(columns)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in table)
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """One reproduced table or figure."""

    experiment_id: str
    title: str
    columns: tuple[str, ...]
    rows: list[dict]
    #: What the paper reports (from repro.experiments.paper_data).
    paper_claim: dict = field(default_factory=dict)
    #: Headline numbers we measured, keyed like the paper's claims.
    measured: dict = field(default_factory=dict)
    notes: str = ""

    def to_text(self) -> str:
        parts = [
            f"== {self.experiment_id}: {self.title} ==",
            format_table(self.columns, self.rows),
        ]
        if self.paper_claim.get("claim"):
            parts.append(f"paper   : {self.paper_claim['claim']}")
        if self.measured:
            measured = ", ".join(f"{k}={v}" for k, v in self.measured.items())
            parts.append(f"measured: {measured}")
        if self.notes:
            parts.append(f"notes   : {self.notes}")
        return "\n".join(parts)

    def chart(self, value_key: Optional[str] = None, width: int = 48) -> str:
        """ASCII bar chart of one numeric column (defaults to the last)."""
        key = value_key or self.columns[-1]
        label_key = self.columns[0]
        return render_bars(
            self.rows, value_key=key, label_key=label_key, width=width
        )
