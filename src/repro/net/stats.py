"""Per-flow transfer accounting.

The SMARTH client needs measured transfer speeds per first-datanode
(§III-B); the experiment harness needs end-to-end throughput.  Both read
from :class:`FlowStats` records collected by the transport layer.

By default :class:`FlowStats` *aggregates*: each (src, dst) pair keeps
byte/time/count accumulators, so memory is O(node pairs) no matter how
many packets fly — an 8 GB upload is over a million transfers, and
retaining a FlowSample for each grew without bound.  Tests and debugging
can opt back into full retention with ``keep_samples=True``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FlowSample", "FlowStats"]


@dataclass(frozen=True)
class FlowSample:
    """One completed transfer: ``size`` bytes from ``src`` to ``dst``."""

    src: str
    dst: str
    size: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def rate(self) -> float:
        """Observed rate in bytes/second (0 for zero-duration transfers)."""
        return self.size / self.duration if self.duration > 0 else 0.0


class FlowStats:
    """Accumulates transfer statistics grouped by (src, dst) node pair.

    Aggregating by default; pass ``keep_samples=True`` to also retain
    every :class:`FlowSample` (unbounded memory — opt-in for tests).
    """

    def __init__(self, keep_samples: bool = False):
        self.keep_samples = keep_samples
        self._samples: list[FlowSample] = []
        #: (src, dst) -> [total_bytes, total_duration, count]
        self._agg: dict[tuple[str, str], list] = {}
        self._count = 0

    @property
    def samples(self) -> list[FlowSample]:
        """Retained samples (empty unless ``keep_samples`` was set)."""
        return self._samples

    def record(self, sample: FlowSample) -> None:
        acc = self._agg.get((sample.src, sample.dst))
        if acc is None:
            acc = self._agg[(sample.src, sample.dst)] = [0, 0.0, 0]
        acc[0] += sample.size
        acc[1] += sample.end - sample.start
        acc[2] += 1
        self._count += 1
        if self.keep_samples:
            self._samples.append(sample)

    def total_bytes(self, src: str | None = None, dst: str | None = None) -> int:
        """Total bytes over flows matching the given endpoints (None = any)."""
        return sum(
            acc[0]
            for (s, d), acc in self._agg.items()
            if (src is None or s == src) and (dst is None or d == dst)
        )

    def mean_rate(self, src: str, dst: str) -> float:
        """Average observed rate between a pair, 0.0 if never measured."""
        acc = self._agg.get((src, dst))
        if acc is None:
            return 0.0
        total_bytes, total_time, _ = acc
        return total_bytes / total_time if total_time > 0 else 0.0

    def pairs(self) -> tuple[tuple[str, str], ...]:
        return tuple(sorted(self._agg))

    def __len__(self) -> int:
        return self._count
