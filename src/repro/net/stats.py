"""Per-flow transfer accounting.

The SMARTH client needs measured transfer speeds per first-datanode
(§III-B); the experiment harness needs end-to-end throughput.  Both read
from :class:`FlowStats` records collected by the transport layer.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

__all__ = ["FlowSample", "FlowStats"]


@dataclass(frozen=True)
class FlowSample:
    """One completed transfer: ``size`` bytes from ``src`` to ``dst``."""

    src: str
    dst: str
    size: int
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def rate(self) -> float:
        """Observed rate in bytes/second (0 for zero-duration transfers)."""
        return self.size / self.duration if self.duration > 0 else 0.0


@dataclass
class FlowStats:
    """Accumulates :class:`FlowSample` records grouped by node pair."""

    samples: list[FlowSample] = field(default_factory=list)
    _by_pair: dict[tuple[str, str], list[FlowSample]] = field(
        default_factory=lambda: defaultdict(list)
    )

    def record(self, sample: FlowSample) -> None:
        self.samples.append(sample)
        self._by_pair[(sample.src, sample.dst)].append(sample)

    def total_bytes(self, src: str | None = None, dst: str | None = None) -> int:
        """Total bytes over flows matching the given endpoints (None = any)."""
        return sum(
            s.size
            for s in self.samples
            if (src is None or s.src == src) and (dst is None or s.dst == dst)
        )

    def mean_rate(self, src: str, dst: str) -> float:
        """Average observed rate between a pair, 0.0 if never measured."""
        flows = self._by_pair.get((src, dst), [])
        if not flows:
            return 0.0
        total_bytes = sum(s.size for s in flows)
        total_time = sum(s.duration for s in flows)
        return total_bytes / total_time if total_time > 0 else 0.0

    def pairs(self) -> tuple[tuple[str, str], ...]:
        return tuple(sorted(self._by_pair))

    def __len__(self) -> int:
        return len(self.samples)
