"""Bandwidth throttling — an emulation of the paper's ``tc`` usage.

The paper shapes traffic three ways, all reproduced here as *rules* that
cap the effective rate of a (source, destination) node pair:

* **rack boundary throttling** (§V-B.1): "we throttle the network
  bandwidth of nodes using tc" so that traffic crossing the two-rack
  boundary is limited (50/100/150 Mbps experiments);
* **per-node throttling** (§V-B.2): individual datanodes capped at
  50/150 Mbps in both directions (bandwidth-contention scenario);
* **per-pair caps** — the general mechanism, also useful for tests.

The effective rate of a transfer is the minimum of the endpoint NIC rates
and every matching rule, exactly how nested ``tc htb`` classes compose.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.node import Node

__all__ = ["ThrottleRule", "NodeThrottle", "PairThrottle", "RackBoundaryThrottle", "ThrottleTable"]


class ThrottleRule:
    """Base class: a predicate over (src, dst) plus a rate cap."""

    def __init__(self, rate: float, description: str = ""):
        if rate <= 0:
            raise ValueError(f"throttle rate must be positive, got {rate}")
        self.rate = float(rate)
        self.description = description

    def applies(self, src: "Node", dst: "Node") -> bool:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.rate:.0f} B/s {self.description}>"


class NodeThrottle(ThrottleRule):
    """Caps all traffic to or from one node (``tc`` on that VM)."""

    def __init__(self, node_name: str, rate: float):
        super().__init__(rate, f"node={node_name}")
        self.node_name = node_name

    def applies(self, src: "Node", dst: "Node") -> bool:
        return src.name == self.node_name or dst.name == self.node_name


class PairThrottle(ThrottleRule):
    """Caps traffic between one ordered pair of nodes."""

    def __init__(self, src_name: str, dst_name: str, rate: float):
        super().__init__(rate, f"{src_name}->{dst_name}")
        self.src_name = src_name
        self.dst_name = dst_name

    def applies(self, src: "Node", dst: "Node") -> bool:
        return src.name == self.src_name and dst.name == self.dst_name


class RackBoundaryThrottle(ThrottleRule):
    """Caps any traffic whose endpoints sit in different racks.

    This reproduces the paper's two-rack scenario: intra-rack traffic runs
    at NIC speed, inter-rack traffic at the throttle rate.
    """

    def __init__(self, rate: float):
        super().__init__(rate, "cross-rack")

    def applies(self, src: "Node", dst: "Node") -> bool:
        return src.rack != dst.rack


class ThrottleTable:
    """The set of active throttle rules for a cluster.

    Listeners subscribed via :meth:`subscribe` are called after every rule
    change; the :class:`~repro.net.transport.Network` uses this to re-quote
    in-flight channel reservations when ``tc`` rules change mid-run (only
    when ``NetworkConfig.requote_in_flight`` opts in — the default keeps
    in-flight packets at the rate they started with).
    """

    def __init__(self, rules: list[ThrottleRule] | None = None):
        self._rules: list[ThrottleRule] = list(rules or [])
        self._listeners: list[Callable[["ThrottleTable"], None]] = []

    @property
    def rules(self) -> tuple[ThrottleRule, ...]:
        return tuple(self._rules)

    def subscribe(self, listener: Callable[["ThrottleTable"], None]) -> None:
        """Call ``listener(table)`` after every add/remove of a rule."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[["ThrottleTable"], None]) -> None:
        """Remove a previously subscribed listener (no-op if absent).

        Packet trains subscribe for the lifetime of one block; without
        removal every settled train would leak a dead listener into every
        later rule change.
        """
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def _notify(self) -> None:
        for listener in self._listeners:
            listener(self)

    def add(self, rule: ThrottleRule) -> "ThrottleTable":
        self._rules.append(rule)
        self._notify()
        return self

    def replace_rules(self, rules: "list[ThrottleRule] | tuple[ThrottleRule, ...]") -> None:
        """Swap the whole rule set without notifying listeners.

        Checkpoint restore path: rules are plain picklable objects, and a
        restore happens on a quiescent deployment (no in-flight
        reservations), so re-quote listeners have nothing to do.
        """
        self._rules = list(rules)

    def remove_matching(self, predicate: Callable[[ThrottleRule], bool]) -> int:
        """Drop rules matching ``predicate``; returns how many were removed."""
        kept = [r for r in self._rules if not predicate(r)]
        removed = len(self._rules) - len(kept)
        self._rules = kept
        if removed:
            self._notify()
        return removed

    def effective_rate(self, src: "Node", dst: "Node") -> float:
        """min(src NIC, dst NIC, all matching rules) in bytes/second."""
        rate = min(src.nic.rate, dst.nic.rate)
        for rule in self._rules:
            if rule.applies(src, dst):
                rate = min(rate, rule.rate)
        return rate

    def effective_rates(
        self, pairs: "Sequence[tuple[Node, Node]]"
    ) -> list[float]:
        """Batch form of :meth:`effective_rate` over a whole flow set.

        Delegates to the vectorized batch kernel
        (:func:`repro.sim.batch.effective_rates`): one mask per rule over
        flat endpoint arrays instead of ``len(pairs) * len(rules)``
        predicate calls, bit-identical to the scalar loop.
        """
        from ..sim.batch import effective_rates

        return effective_rates(self, pairs)

    def __len__(self) -> int:
        return len(self._rules)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ThrottleTable {self._rules!r}>"
