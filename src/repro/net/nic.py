"""Full-duplex network interface model.

A NIC has two independent serializing channels — egress and ingress — so a
node can send and receive at full rate simultaneously (EC2 instances are
full duplex), but concurrent *sends* from one node share its egress
capacity by queueing.  That queueing is the physical mechanism behind the
paper's observation that a single synchronous pipeline "could not
optimally make use of network capacity": with one pipeline, the client's
egress channel sits idle while waiting for ACKs; SMARTH's multiple
pipelines keep it busy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from ..sim import Channel, Environment, ProcessGenerator

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.node import Node

__all__ = ["NIC", "aggregate_counters"]


class NIC:
    """A full-duplex network interface with a fixed line rate.

    Parameters
    ----------
    env:
        The simulation environment.
    rate:
        Line rate in bytes/second (e.g. ``mbps(216)`` for an EC2 small
        instance).
    name:
        Diagnostic label, usually the owning node's name.
    """

    def __init__(self, env: Environment, rate: float, name: str = "nic"):
        if rate <= 0:
            raise ValueError(f"NIC rate must be positive, got {rate}")
        self.env = env
        self.rate = float(rate)
        self.name = name
        #: Serializing transmit channel: one frame on the wire at a time.
        self.egress = Channel(env, name=f"{name}:tx")
        #: Serializing receive channel.
        self.ingress = Channel(env, name=f"{name}:rx")
        #: Lifetime byte counters (for throughput accounting).  Updated
        #: when an occupancy is *committed* (analytic model), so mid-run
        #: reads include bytes whose quoted completion lies in the future.
        self.bytes_sent = 0
        self.bytes_received = 0

    @property
    def busy_until(self) -> float:
        """Time this NIC next falls fully idle (max over both channels)."""
        tx, rx = self.egress.busy_until, self.ingress.busy_until
        return tx if tx > rx else rx

    def occupy_egress(self, size: int, rate: float) -> ProcessGenerator:
        """Hold the transmit channel for ``size / rate`` seconds.

        ``rate`` is the *effective* path rate (already min-reduced over the
        receiver and any throttles), which models a ``tc``-shaped flow: the
        sender clocks packets out at the shaped rate, so a slow destination
        occupies the sender for longer.
        """
        end = self.egress.quote(size, rate)
        self.bytes_sent += size
        yield self.env.timeout_at(end)

    def occupy_ingress(self, size: int, rate: float) -> ProcessGenerator:
        """Hold the receive channel for ``size / rate`` seconds."""
        end = self.ingress.quote(size, rate)
        self.bytes_received += size
        yield self.env.timeout_at(end)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<NIC {self.name} rate={self.rate:.0f} B/s>"


def aggregate_counters(nodes: "Iterable[Node]") -> tuple[int, int]:
    """Sum ``(bytes_sent, bytes_received)`` over every node's NIC.

    Campaign benchmarks report aggregate bytes moved; the counters are
    committed at occupancy-quote time, so a mid-run read includes bytes
    whose quoted completion lies in the future.
    """
    sent = received = 0
    for node in nodes:
        sent += node.nic.bytes_sent
        received += node.nic.bytes_received
    return sent, received
