"""Network substrate: NICs, topology, throttling (tc emulation), transport."""

from .nic import NIC
from .stats import FlowSample, FlowStats
from .throttle import (
    NodeThrottle,
    PairThrottle,
    RackBoundaryThrottle,
    ThrottleRule,
    ThrottleTable,
)
from .topology import (
    DISTANCE_OFF_RACK,
    DISTANCE_SAME_NODE,
    DISTANCE_SAME_RACK,
    Topology,
)
from .transport import Network

__all__ = [
    "NIC",
    "Network",
    "Topology",
    "ThrottleTable",
    "ThrottleRule",
    "NodeThrottle",
    "PairThrottle",
    "RackBoundaryThrottle",
    "FlowSample",
    "FlowStats",
    "DISTANCE_SAME_NODE",
    "DISTANCE_SAME_RACK",
    "DISTANCE_OFF_RACK",
]
