"""The network fabric: data transfers and control messages between nodes.

:class:`Network` bundles the topology, the throttle table and flow
statistics, and provides the two primitives every protocol in this
reproduction is built from:

* :meth:`Network.transfer` — move ``size`` bytes from one node to another.
  The transfer occupies the sender's egress channel and the receiver's
  ingress channel for ``size / effective_rate`` (store-and-forward), then
  arrives after the link propagation latency.  Effective rate is the min
  of NIC rates and throttle rules — the ``tc`` model.
* :meth:`Network.send_control` — deliver a latency-only control message
  (ACK hop, FNFA, RPC).  Control packets are a few dozen bytes; per
  §III-D "the time of transferring ACKs and the time of sending data
  packets overlaps", so they do not contend for NIC bandwidth.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..config import NetworkConfig
from ..sim import Environment, ProcessGenerator
from .stats import FlowSample, FlowStats
from .throttle import ThrottleTable
from .topology import Topology

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.node import Node

__all__ = ["Network"]


class Network:
    """The shared fabric connecting every node in a cluster."""

    def __init__(
        self,
        env: Environment,
        topology: Topology,
        throttles: ThrottleTable | None = None,
        config: NetworkConfig | None = None,
    ):
        self.env = env
        self.topology = topology
        self.throttles = throttles if throttles is not None else ThrottleTable()
        self.config = config if config is not None else NetworkConfig()
        self.stats = FlowStats()

    def effective_rate(self, src: "Node", dst: "Node") -> float:
        """Current shaped rate between two nodes, bytes/second."""
        return self.throttles.effective_rate(src, dst)

    def transfer(self, src: "Node", dst: "Node", size: int) -> ProcessGenerator:
        """Move ``size`` bytes from ``src`` to ``dst`` (a process generator).

        Completes when the last byte has *arrived* at ``dst``.  Yields the
        flow's :class:`FlowSample` as the process return value so callers
        can feed SMARTH's speed records.
        """
        if size < 0:
            raise ValueError(f"transfer size must be non-negative, got {size}")
        start = self.env.now
        if src is dst:
            # Loopback (e.g. a client co-located with a datanode): no NIC
            # occupancy, negligible latency.
            yield self.env.timeout(0)
        else:
            rate = self.effective_rate(src, dst)
            egress = self.env.process(
                src.nic.occupy_egress(size, rate), name=f"tx:{src.name}->{dst.name}"
            )
            ingress = self.env.process(
                dst.nic.occupy_ingress(size, rate), name=f"rx:{src.name}->{dst.name}"
            )
            yield self.env.all_of([egress, ingress])
            yield self.env.timeout(self.config.link_latency)
        sample = FlowSample(
            src=src.name, dst=dst.name, size=size, start=start, end=self.env.now
        )
        self.stats.record(sample)
        return sample

    def send_control(self, src: "Node", dst: "Node") -> ProcessGenerator:
        """Deliver a latency-only control message from ``src`` to ``dst``."""
        if src is dst:
            yield self.env.timeout(0)
        else:
            yield self.env.timeout(self.config.control_latency)

    def connection_setup(self, hops: int = 1) -> ProcessGenerator:
        """Model pipeline construction cost: ``hops`` stream connects."""
        if hops < 0:
            raise ValueError("hops must be non-negative")
        yield self.env.timeout(self.config.connection_setup * hops)
