"""The network fabric: data transfers and control messages between nodes.

:class:`Network` bundles the topology, the throttle table and flow
statistics, and provides the two primitives every protocol in this
reproduction is built from:

* :meth:`Network.transfer` — move ``size`` bytes from one node to another.
  The transfer occupies the sender's egress channel and the receiver's
  ingress channel for ``size / effective_rate`` (store-and-forward), then
  arrives after the link propagation latency.  Effective rate is the min
  of NIC rates and throttle rules — the ``tc`` model.
* :meth:`Network.send_control` — deliver a latency-only control message
  (ACK hop, FNFA, RPC).  Control packets are a few dozen bytes; per
  §III-D "the time of transferring ACKs and the time of sending data
  packets overlaps", so they do not contend for NIC bandwidth.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..config import NetworkConfig
from ..sim import Environment, ProcessGenerator
from .stats import FlowSample, FlowStats
from .throttle import ThrottleTable
from .topology import Topology

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.node import Node

__all__ = ["Network"]


class Network:
    """The shared fabric connecting every node in a cluster."""

    def __init__(
        self,
        env: Environment,
        topology: Topology,
        throttles: ThrottleTable | None = None,
        config: NetworkConfig | None = None,
    ):
        self.env = env
        self.topology = topology
        self.throttles = throttles if throttles is not None else ThrottleTable()
        self.config = config if config is not None else NetworkConfig()
        self.stats = FlowStats(keep_samples=self.config.keep_flow_samples)
        #: Channels holding preemptible reservations (requote mode only).
        self._preemptible_channels: set = set()
        #: Requote-hook telemetry: channels walked vs skipped because the
        #: rule change left every live flow's effective rate unchanged.
        self.requotes_applied = 0
        self.requotes_skipped = 0
        if self.config.requote_in_flight:
            self.throttles.subscribe(self._requote_in_flight)

    def effective_rate(self, src: "Node", dst: "Node") -> float:
        """Current shaped rate between two nodes, bytes/second."""
        return self.throttles.effective_rate(src, dst)

    def transfer(self, src: "Node", dst: "Node", size: int) -> ProcessGenerator:
        """Move ``size`` bytes from ``src`` to ``dst`` (a process generator).

        Completes when the last byte has *arrived* at ``dst``.  Yields the
        flow's :class:`FlowSample` as the process return value so callers
        can feed SMARTH's speed records.

        Fast path: both NIC channels are FIFO, so the occupancy is quoted
        analytically (``max(now, busy_until) + size/rate`` per channel) and
        the whole transfer is a single absolute-time timeout — no spawned
        egress/ingress processes, no AllOf barrier, no request/release
        pairs.  With ``NetworkConfig.requote_in_flight`` the transfer
        instead holds preemptible reservations so ``tc`` rule changes can
        re-quote it mid-flight.
        """
        if size < 0:
            raise ValueError(f"transfer size must be non-negative, got {size}")
        start = self.env.now
        if src is dst:
            # Loopback (e.g. a client co-located with a datanode): no NIC
            # occupancy, negligible latency.
            yield self.env.timeout(0)
        else:
            rate = self.effective_rate(src, dst)
            egress, ingress = src.nic.egress, dst.nic.ingress
            if self.config.requote_in_flight:
                e_res = egress.reserve(size, rate, preemptible=True, tag=(src, dst))
                i_res = ingress.reserve(size, rate, preemptible=True, tag=(src, dst))
                self._preemptible_channels.add(egress)
                self._preemptible_channels.add(ingress)
                yield self.env.all_of([e_res, i_res])
                yield self.env.timeout(self.config.link_latency)
            else:
                e_end = egress.quote(size, rate)
                i_end = ingress.quote(size, rate)
                done = (e_end if e_end > i_end else i_end) + self.config.link_latency
                yield self.env.timeout_at(done)
            src.nic.bytes_sent += size
            dst.nic.bytes_received += size
        sample = FlowSample(
            src=src.name, dst=dst.name, size=size, start=start, end=self.env.now
        )
        self.stats.record(sample)
        return sample

    def transfer_begin(
        self, src: "Node", dst: "Node", size: int
    ) -> "tuple[object, Callable[[], FlowSample]]":
        """Quote a transfer without a generator: ``(done_event, finish)``.

        The inline-send fast path in the clients' packet loops: the caller
        yields ``done_event`` (an absolute-time timeout at arrival) and, if
        it was not interrupted, calls ``finish()`` to apply the byte
        counters and record the :class:`FlowSample` — mirroring exactly
        what :meth:`transfer` would have done, minus the spawned process.
        An abandoned transfer (pipeline error) never calls ``finish()``,
        matching an interrupted :meth:`transfer` process.  Only valid with
        ``requote_in_flight`` off (callers fall back to :meth:`transfer`).
        """
        if size < 0:
            raise ValueError(f"transfer size must be non-negative, got {size}")
        start = self.env.now
        if src is dst:
            done_event = self.env.timeout(0)
            loopback = True
        else:
            rate = self.effective_rate(src, dst)
            e_end = src.nic.egress.quote(size, rate)
            i_end = dst.nic.ingress.quote(size, rate)
            done = (e_end if e_end > i_end else i_end) + self.config.link_latency
            done_event = self.env.timeout_at(done)
            loopback = False

        def finish() -> FlowSample:
            if not loopback:
                src.nic.bytes_sent += size
                dst.nic.bytes_received += size
            sample = FlowSample(
                src=src.name, dst=dst.name, size=size, start=start, end=self.env.now
            )
            self.stats.record(sample)
            return sample

        return done_event, finish

    def _requote_in_flight(self, _table: ThrottleTable) -> None:
        """Preemption hook: throttle rules changed, re-quote live flows.

        Every distinct live (src, dst) pair's new shaped rate is computed
        exactly once, in one vectorized pass
        (:meth:`~repro.net.throttle.ThrottleTable.effective_rates`), and a
        channel whose in-flight reservations are all unaffected by the
        change is skipped outright — a no-op :meth:`Channel.preempt`
        would still walk the FIFO and re-derive every quote (and could
        nudge a mid-transmission quote by an ulp re-splitting the bytes
        at an unchanged rate).
        """
        stale = []
        pending = []
        pairs: list = []
        seen: set = set()
        for channel in self._preemptible_channels:
            if not channel.has_in_flight:
                stale.append(channel)
                continue
            flows = [
                res
                for res in channel._in_flight
                if not res.triggered and res.tag is not None
            ]
            for res in flows:
                if res.tag not in seen:
                    seen.add(res.tag)
                    pairs.append(res.tag)
            pending.append((channel, flows))
        rate_of = dict(zip(pairs, self.throttles.effective_rates(pairs)))
        for channel, flows in pending:
            if all(rate_of[res.tag] == res.rate for res in flows):
                self.requotes_skipped += 1
                continue
            self.requotes_applied += 1
            channel.preempt(lambda res: rate_of.get(res.tag))
            if not channel.has_in_flight:
                stale.append(channel)
        self._preemptible_channels.difference_update(stale)

    def send_control(self, src: "Node", dst: "Node") -> ProcessGenerator:
        """Deliver a latency-only control message from ``src`` to ``dst``."""
        if src is dst:
            yield self.env.timeout(0)
        else:
            yield self.env.timeout(self.config.control_latency)

    def connection_setup(self, hops: int = 1) -> ProcessGenerator:
        """Model pipeline construction cost: ``hops`` stream connects."""
        if hops < 0:
            raise ValueError("hops must be non-negative")
        yield self.env.timeout(self.config.connection_setup * hops)
