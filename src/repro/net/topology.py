"""Rack-aware network topology.

HDFS models the network as a tree (datacenter → racks → nodes) and
measures "distance" as the number of tree edges between nodes: 0 for the
same node, 2 within a rack, 4 across racks.  The default placement policy
and SMARTH's Algorithm 1 both need these queries (``randomRemoteRackNode``,
``nodeOnSameRack``), so the topology is a first-class substrate object,
backed by a :mod:`networkx` graph for distance computation and for
exporting/visualizing cluster layouts.
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

__all__ = ["Topology", "DISTANCE_SAME_NODE", "DISTANCE_SAME_RACK", "DISTANCE_OFF_RACK"]

DISTANCE_SAME_NODE = 0
DISTANCE_SAME_RACK = 2
DISTANCE_OFF_RACK = 4

_ROOT = "/"


class Topology:
    """A two-level tree: root → racks → hosts."""

    def __init__(self) -> None:
        self._graph = nx.Graph()
        self._graph.add_node(_ROOT, kind="root")
        self._rack_of: dict[str, str] = {}
        #: rack → sorted host tuple, rebuilt lazily after membership edits.
        #: Placement consults rack membership per replica per block, while
        #: hosts only ever join at cluster build time — without the index
        #: every ``choose_targets`` pays an O(hosts) scan per rack query.
        self._rack_index: dict[str, tuple[str, ...]] | None = None
        #: rack → sorted tuple of hosts *outside* that rack.
        self._remote_index: dict[str, tuple[str, ...]] | None = None

    # -- construction -----------------------------------------------------
    def add_rack(self, rack: str) -> None:
        """Register a rack (idempotent)."""
        if not rack:
            raise ValueError("rack name must be non-empty")
        if not self._graph.has_node(f"rack:{rack}"):
            self._graph.add_node(f"rack:{rack}", kind="rack", name=rack)
            self._graph.add_edge(_ROOT, f"rack:{rack}")

    def add_host(self, host: str, rack: str) -> None:
        """Place ``host`` in ``rack``, creating the rack if needed."""
        if host in self._rack_of:
            raise ValueError(f"host {host!r} already registered")
        self.add_rack(rack)
        self._graph.add_node(f"host:{host}", kind="host", name=host)
        self._graph.add_edge(f"rack:{rack}", f"host:{host}")
        self._rack_of[host] = rack
        self._rack_index = None
        self._remote_index = None

    # -- queries ----------------------------------------------------------
    @property
    def racks(self) -> tuple[str, ...]:
        """All rack names, sorted."""
        return tuple(
            sorted(
                data["name"]
                for _, data in self._graph.nodes(data=True)
                if data.get("kind") == "rack"
            )
        )

    @property
    def hosts(self) -> tuple[str, ...]:
        """All host names, sorted."""
        return tuple(sorted(self._rack_of))

    def rack_of(self, host: str) -> str:
        """The rack containing ``host``."""
        try:
            return self._rack_of[host]
        except KeyError:
            raise KeyError(f"unknown host {host!r}") from None

    @property
    def rack_map(self) -> dict[str, str]:
        """The live host→rack mapping, for read-only bulk lookups.

        Placement scans hundreds of hosts per replica choice; indexing
        this dict directly skips a method call per host.  Callers must
        not mutate it — membership changes go through :meth:`add_host`.
        """
        return self._rack_of

    def _build_rack_indexes(self) -> None:
        by_rack: dict[str, list[str]] = {}
        for host in sorted(self._rack_of):
            by_rack.setdefault(self._rack_of[host], []).append(host)
        self._rack_index = {r: tuple(hs) for r, hs in by_rack.items()}
        all_hosts = self.hosts
        self._remote_index = {
            rack: tuple(h for h in all_hosts if self._rack_of[h] != rack)
            for rack in self._rack_index
        }

    def hosts_in_rack(self, rack: str) -> tuple[str, ...]:
        """All hosts in ``rack``, sorted; served from the rack index."""
        if f"rack:{rack}" not in self._graph:
            raise KeyError(f"unknown rack {rack!r}")
        if self._rack_index is None:
            self._build_rack_indexes()
        assert self._rack_index is not None
        return self._rack_index.get(rack, ())

    def same_rack(self, a: str, b: str) -> bool:
        """True iff both hosts share a rack."""
        return self.rack_of(a) == self.rack_of(b)

    def distance(self, a: str, b: str) -> int:
        """HDFS tree distance (0 same node, 2 same rack, 4 off rack).

        Computed via shortest path on the topology tree so it stays
        correct if the tree ever grows more levels.
        """
        if a == b:
            self.rack_of(a)  # raise on unknown host
            return DISTANCE_SAME_NODE
        return nx.shortest_path_length(self._graph, f"host:{a}", f"host:{b}")

    def remote_rack_hosts(self, host: str) -> tuple[str, ...]:
        """All hosts *not* in ``host``'s rack, sorted (Algorithm 1 l.12)."""
        rack = self.rack_of(host)
        if self._remote_index is None:
            self._build_rack_indexes()
        assert self._remote_index is not None
        # rack_of succeeded, so the host's rack is guaranteed indexed.
        return self._remote_index[rack]

    def graph_copy(self) -> nx.Graph:
        """A copy of the underlying graph (for analysis/plotting)."""
        return self._graph.copy()

    @classmethod
    def from_rack_map(cls, rack_map: dict[str, Iterable[str]]) -> "Topology":
        """Build from ``{rack_name: [host, ...]}``."""
        topo = cls()
        for rack, hosts in rack_map.items():
            for host in hosts:
                topo.add_host(host, rack)
        return topo

    def __contains__(self, host: str) -> bool:
        return host in self._rack_of

    def __len__(self) -> int:
        return len(self._rack_of)
