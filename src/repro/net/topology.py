"""Rack-aware network topology.

HDFS models the network as a tree (datacenter → racks → nodes) and
measures "distance" as the number of tree edges between nodes: 0 for the
same node, 2 within a rack, 4 across racks.  The default placement policy
and SMARTH's Algorithm 1 both need these queries (``randomRemoteRackNode``,
``nodeOnSameRack``), so the topology is a first-class substrate object,
backed by a :mod:`networkx` graph for distance computation and for
exporting/visualizing cluster layouts.
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

__all__ = ["Topology", "DISTANCE_SAME_NODE", "DISTANCE_SAME_RACK", "DISTANCE_OFF_RACK"]

DISTANCE_SAME_NODE = 0
DISTANCE_SAME_RACK = 2
DISTANCE_OFF_RACK = 4

_ROOT = "/"


class Topology:
    """A two-level tree: root → racks → hosts."""

    def __init__(self) -> None:
        self._graph = nx.Graph()
        self._graph.add_node(_ROOT, kind="root")
        self._rack_of: dict[str, str] = {}

    # -- construction -----------------------------------------------------
    def add_rack(self, rack: str) -> None:
        """Register a rack (idempotent)."""
        if not rack:
            raise ValueError("rack name must be non-empty")
        if not self._graph.has_node(f"rack:{rack}"):
            self._graph.add_node(f"rack:{rack}", kind="rack", name=rack)
            self._graph.add_edge(_ROOT, f"rack:{rack}")

    def add_host(self, host: str, rack: str) -> None:
        """Place ``host`` in ``rack``, creating the rack if needed."""
        if host in self._rack_of:
            raise ValueError(f"host {host!r} already registered")
        self.add_rack(rack)
        self._graph.add_node(f"host:{host}", kind="host", name=host)
        self._graph.add_edge(f"rack:{rack}", f"host:{host}")
        self._rack_of[host] = rack

    # -- queries ----------------------------------------------------------
    @property
    def racks(self) -> tuple[str, ...]:
        """All rack names, sorted."""
        return tuple(
            sorted(
                data["name"]
                for _, data in self._graph.nodes(data=True)
                if data.get("kind") == "rack"
            )
        )

    @property
    def hosts(self) -> tuple[str, ...]:
        """All host names, sorted."""
        return tuple(sorted(self._rack_of))

    def rack_of(self, host: str) -> str:
        """The rack containing ``host``."""
        try:
            return self._rack_of[host]
        except KeyError:
            raise KeyError(f"unknown host {host!r}") from None

    def hosts_in_rack(self, rack: str) -> tuple[str, ...]:
        """All hosts in ``rack``, sorted."""
        if f"rack:{rack}" not in self._graph:
            raise KeyError(f"unknown rack {rack!r}")
        return tuple(sorted(h for h, r in self._rack_of.items() if r == rack))

    def same_rack(self, a: str, b: str) -> bool:
        """True iff both hosts share a rack."""
        return self.rack_of(a) == self.rack_of(b)

    def distance(self, a: str, b: str) -> int:
        """HDFS tree distance (0 same node, 2 same rack, 4 off rack).

        Computed via shortest path on the topology tree so it stays
        correct if the tree ever grows more levels.
        """
        if a == b:
            self.rack_of(a)  # raise on unknown host
            return DISTANCE_SAME_NODE
        return nx.shortest_path_length(self._graph, f"host:{a}", f"host:{b}")

    def remote_rack_hosts(self, host: str) -> tuple[str, ...]:
        """All hosts *not* in ``host``'s rack, sorted (Algorithm 1 l.12)."""
        rack = self.rack_of(host)
        return tuple(sorted(h for h, r in self._rack_of.items() if r != rack))

    def graph_copy(self) -> nx.Graph:
        """A copy of the underlying graph (for analysis/plotting)."""
        return self._graph.copy()

    @classmethod
    def from_rack_map(cls, rack_map: dict[str, Iterable[str]]) -> "Topology":
        """Build from ``{rack_name: [host, ...]}``."""
        topo = cls()
        for rack, hosts in rack_map.items():
            for host in hosts:
                topo.add_host(host, rack)
        return topo

    def __contains__(self, host: str) -> bool:
        return host in self._rack_of

    def __len__(self) -> int:
        return len(self._rack_of)
