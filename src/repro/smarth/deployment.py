"""SMARTH deployment: baseline HDFS services + Algorithm 1 placement."""

from __future__ import annotations

from typing import Optional

from ..cluster.builder import Cluster
from ..cluster.node import Node
from ..config import SimulationConfig
from ..hdfs.deployment import HdfsDeployment
from ..policy.registry import PolicySpec
from .multi_writer import SmarthClient

__all__ = ["SmarthDeployment"]


class SmarthDeployment(HdfsDeployment):
    """An HDFS deployment with the SMARTH namenode placement installed.

    Datanode and namenode services are unchanged (SMARTH is a protocol
    change, not a storage change); the namenode's placement policy is
    swapped for the deployment policy's
    :meth:`~repro.policy.base.Policy.smarth_placement` — the stock
    :class:`~repro.smarth.global_opt.SmarthPlacementPolicy` under the
    default policy — and clients are
    :class:`~repro.smarth.multi_writer.SmarthClient` instances.
    """

    def __init__(
        self,
        cluster: Cluster,
        config: Optional[SimulationConfig] = None,
        enable_replication_monitor: bool = True,
        observe: bool = False,
        start_services: bool = True,
        policy: PolicySpec = None,
    ):
        super().__init__(
            cluster,
            config=config,
            enable_replication_monitor=enable_replication_monitor,
            observe=observe,
            start_services=start_services,
            policy=policy,
        )
        placement = self.policy.smarth_placement()
        if placement is not None:
            self.namenode.placement = placement

    def client(
        self, host: Optional[Node] = None, name: Optional[str] = None
    ) -> SmarthClient:
        """Create a SMARTH write client on ``host`` (default: the cluster's
        client node)."""
        return SmarthClient(self, host=host, name=name)
