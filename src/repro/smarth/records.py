"""Client-side transfer-speed records (§III-B).

The SMARTH client "records the transmission speed of data blocks to all
the first datanodes in transfer pipeline that it had communicated
before".  We keep an exponential moving average per datanode — a single
latest sample is noisy when block transfers overlap with background
replication traffic — plus the raw latest sample for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SpeedSample", "SpeedRecords"]

#: EWMA weight of the newest sample.
_ALPHA = 0.5


@dataclass(frozen=True)
class SpeedSample:
    """One measured block transfer to a first datanode."""

    datanode: str
    nbytes: int
    duration: float
    at: float

    @property
    def rate(self) -> float:
        return self.nbytes / self.duration if self.duration > 0 else 0.0


class SpeedRecords:
    """Per-first-datanode observed transfer speeds on one client."""

    def __init__(self) -> None:
        self._ewma: dict[str, float] = {}
        self._latest: dict[str, SpeedSample] = {}
        self._dirty = False

    def record(self, sample: SpeedSample) -> None:
        """Fold one completed block transfer into the records."""
        if sample.duration <= 0:
            return
        rate = sample.rate
        previous = self._ewma.get(sample.datanode)
        self._ewma[sample.datanode] = (
            rate if previous is None else _ALPHA * rate + (1 - _ALPHA) * previous
        )
        self._latest[sample.datanode] = sample
        self._dirty = True

    def speed_of(self, datanode: str) -> float | None:
        """Smoothed speed in bytes/s, or None if never measured."""
        return self._ewma.get(datanode)

    def latest(self, datanode: str) -> SpeedSample | None:
        return self._latest.get(datanode)

    def known_datanodes(self) -> tuple[str, ...]:
        return tuple(sorted(self._ewma))

    def snapshot(self) -> dict[str, float]:
        """All smoothed speeds — the heartbeat payload (§III-B)."""
        return dict(self._ewma)

    def take_dirty(self) -> bool:
        """True if new samples arrived since the last heartbeat."""
        dirty, self._dirty = self._dirty, False
        return dirty

    def __len__(self) -> int:
        return len(self._ewma)
