"""Heartbeat speed reporting (§III-B).

"Client records the transmission speed of data blocks … and sends these
records to the namenode every three seconds by remote procedure calls
(RPCs), following the default heartbeat mechanism in Hadoop."
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim import Interrupt, ProcessGenerator
from .records import SpeedRecords

if TYPE_CHECKING:  # pragma: no cover
    from ..hdfs.namenode import Namenode

__all__ = ["speed_reporter"]


def speed_reporter(
    namenode: "Namenode",
    client_name: str,
    records: SpeedRecords,
    interval: float,
) -> ProcessGenerator:
    """Background process: push dirty speed records every ``interval``.

    Only sends when new samples exist, mirroring Hadoop's heartbeat
    piggybacking (the beat always happens; the payload only when there is
    something to report — we skip the empty beats to keep the event count
    down, the namenode-side effect is identical).

    The owning client interrupts the loop when its upload completes (the
    interrupt also tombstones the pending interval timer, see
    ``Process._resume``); the stop is journalled so traces show when a
    client's heartbeat traffic ceased.
    """
    env = namenode.env
    try:
        while True:
            yield env.timeout(interval)
            if records.take_dirty():
                yield from namenode.client_heartbeat(
                    client_name, records.snapshot()
                )
    except Interrupt as stop:
        namenode.journal.emit(
            env.now,
            "reporter_stopped",
            f"client:{client_name}",
            client=client_name,
            cause=str(stop.cause) if stop.cause is not None else "",
        )
        return
