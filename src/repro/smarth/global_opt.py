"""Algorithm 1 — the namenode's global optimization.

When the namenode has transfer records for the requesting client it
computes ``n = num_active_datanodes / replication`` (the maximum pipeline
count) and picks the *first* datanode uniformly at random from the
client's ``n`` fastest datanodes; the second replica goes to a random
remote-rack node and the third to the second's rack, preserving the
default policy's fault-tolerance layout.  Without records it falls back
to the original HDFS method (Algorithm 1 line 21).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Iterable, Sequence

from ..hdfs.placement import DefaultPlacementPolicy, PlacementPolicy
from ..hdfs.protocol import NoDatanodesAvailable

if TYPE_CHECKING:  # pragma: no cover
    from ..hdfs.datanode_manager import DatanodeManager
    from ..hdfs.namenode import SpeedRegistry
    from ..net.topology import Topology

__all__ = ["SmarthPlacementPolicy"]


class SmarthPlacementPolicy(PlacementPolicy):
    """TopN-speed-aware placement with the default policy as fallback."""

    def __init__(
        self,
        topology: "Topology",
        datanodes: "DatanodeManager",
        speeds: "SpeedRegistry",
        rng: random.Random,
        replication: int,
        enabled: bool = True,
    ):
        self.topology = topology
        self.datanodes = datanodes
        self.speeds = speeds
        self.rng = rng
        self.replication = replication
        self.enabled = enabled
        self.fallback = DefaultPlacementPolicy(topology, datanodes, rng)
        #: Diagnostic counters: how often each path was taken.
        self.topn_selections = 0
        self.fallback_selections = 0

    def choose_targets(
        self,
        client: str,
        replication: int,
        excluded: Iterable[str] = (),
    ) -> tuple[str, ...]:
        if replication < 1:
            raise ValueError("replication must be >= 1")
        excluded_set = set(excluded)
        live = self.datanodes.live_datanodes()
        live_set = self.datanodes.live_set()
        available: Sequence[str]
        if excluded_set:
            available = [d for d in live if d not in excluded_set]
        else:
            available = live
        if not available:
            raise NoDatanodesAvailable("no live datanodes available")
        replication = min(replication, len(available))

        # Algorithm 1 line 3: the maximum pipeline size n = num / repli.
        n = max(1, len(live) // max(1, self.replication))
        # Line 5: TopN is the client's n fastest datanodes *cluster-wide*.
        # The §IV-C disjointness rule then restricts the pick to currently
        # available ones — computing TopN only over available nodes would
        # hand out known-slow first datanodes whenever the fast ones are
        # busy, which defeats the optimization.
        top_global = (
            self.speeds.top_n(client, n, among=live_set) if self.enabled else []
        )
        if not top_global:
            # Line 21: no transmission records → original HDFS method.
            self.fallback_selections += 1
            return self.fallback.choose_targets(client, replication, excluded_set)
        if len(top_global) < n:
            # Fewer than n datanodes have records: fill the TopN with
            # unmeasured candidates.  They are untested, not slow — §III-C
            # explicitly wants nodes without fresh records to get "a
            # chance to test the bandwidth performance"; without this a
            # single slow early measurement would shadow every unmeasured
            # fast node indefinitely.
            top_set = set(top_global)
            unmeasured = [d for d in live if d not in top_set]
            self.rng.shuffle(unmeasured)
            top_global = top_global + unmeasured[: n - len(top_global)]

        # Membership in ``available`` without materializing a set of it:
        # available == live minus excluded by construction.
        top_n = [
            d for d in top_global
            if d in live_set and d not in excluded_set
        ]
        if not top_n:
            # Every TopN node is busy in another of this client's
            # pipelines: take the fastest of what is available (known
            # speeds first, then unmeasured).
            ranked = self.speeds.top_n(
                client, len(available), among=frozenset(available)
            )
            ranked_set = set(ranked)
            unmeasured = [d for d in available if d not in ranked_set]
            self.rng.shuffle(unmeasured)
            top_n = (ranked + unmeasured)[:1]

        self.topn_selections += 1
        targets: list[str] = []

        # Line 10: first datanode random among the client's TopN.
        first = self._pick(self.rng, top_n)
        targets.append(first)

        # Line 12: second replica on a remote rack (relative to the first).
        # Fused scan over the rack map, same trick as the default policy:
        # one pass builds both `remaining` and the rack-filtered subset.
        rack_map = self.topology.rack_map
        if len(targets) < replication:
            first_rack = rack_map[first]
            remaining = []
            remote = []
            for d in available:
                if d in targets:
                    continue
                remaining.append(d)
                if rack_map[d] != first_rack:
                    remote.append(d)
            targets.append(self._pick(self.rng, remote or remaining))

        # Line 14: third replica on the same rack as the second.
        if len(targets) < replication:
            second_rack = rack_map[targets[1]]
            remaining = []
            same = []
            for d in available:
                if d in targets:
                    continue
                remaining.append(d)
                if rack_map[d] == second_rack:
                    same.append(d)
            targets.append(self._pick(self.rng, same or remaining))

        # Line 16: anything further is uniform random.
        while len(targets) < replication:
            remaining = [d for d in available if d not in targets]
            targets.append(self._pick(self.rng, remaining))

        return tuple(targets)
