"""The SMARTH client: asynchronous multi-pipeline upload (§III-A).

Per block: request targets (Algorithm 1 on the namenode), reorder them
locally (Algorithm 2), stream every packet to the first datanode, and on
FNFA immediately move to the next block while up to
``n = num_datanodes / replication`` pipelines replicate in the background.
A datanode serves at most one of this client's live pipelines and the
first datanode buffers one full block (§IV-C), so the client is never
gated by the slowest replica — only by its own NIC and the first
datanodes' bandwidth.

Fault tolerance follows Algorithm 4: failed pipelines enter an error set;
the client stops sending, recovers each one (Algorithm 3 semantics via
:func:`repro.hdfs.client.recovery.recover_pipeline`, resending the
un-ACKed packets), and then resumes the interrupted block.
"""

from __future__ import annotations

import random
from typing import Optional

from ..cluster.node import Node
from ..hdfs.client.output_stream import (
    DATA_QUEUE_PACKETS,
    BlockPlan,
    plan_file,
    producer,
)
from ..hdfs.client.recovery import recover_pipeline
from ..hdfs.client.responder import PacketResponder
from ..hdfs.deployment import HdfsDeployment
from ..hdfs.protocol import DatanodeDead, Packet, WriteResult
from ..hdfs.train import plan_train
from ..policy.base import NO_TUNING, ClientTuning
from ..sim import Event, Interrupt, ProcessGenerator, Resource, Store, race
from .local_opt import LocalOptimizer
from .pipeline import PipelineState, SmarthPipeline
from .records import SpeedRecords, SpeedSample
from .reporter import speed_reporter

__all__ = ["SmarthClient"]

_OK = "ok"
_PAUSED = "paused"
_ERROR = "error"


class SmarthClient:
    """Multi-pipeline write client implementing the SMARTH protocol."""

    system = "smarth"
    #: Whether the current upload's file fits the data queue (set per
    #: put); gates the train's batched feeder.
    _batchable = False

    def __init__(
        self,
        deployment: HdfsDeployment,
        host: Optional[Node] = None,
        name: Optional[str] = None,
    ):
        self.deployment = deployment
        self.env = deployment.env
        self.network = deployment.network
        self.config = deployment.config
        self.node = host or deployment.cluster.client_host
        self.name = name or self.node.name

        self.records = SpeedRecords()
        self.local_opt = LocalOptimizer(
            self.records,
            rng=random.Random(self.config.seed ^ 0x5A5A5A),
            threshold=self.config.smarth.local_opt_threshold,
            enabled=self.config.smarth.enable_local_opt,
        )
        self._reporter = self.env.process(
            speed_reporter(
                deployment.namenode,
                self.name,
                self.records,
                self.config.hdfs.heartbeat_interval,
            ),
            name=f"reporter:{self.name}",
        )

        # Algorithm 4's error pipeline set plus its wake-up signal.
        self._error_list: list[SmarthPipeline] = []
        self._error_flag: Event = self.env.event()
        self._active: set[SmarthPipeline] = set()
        self._blacklist: set[str] = set()
        self._recoveries = 0
        self._max_concurrent = 0
        self._trace_upload = 0
        self._datanode_set: frozenset[str] = frozenset()
        #: Per-upload knob overrides from the deployment policy (set at
        #: the start of each :meth:`put`; identity under DefaultPolicy).
        self._tuning: ClientTuning = NO_TUNING

    def _all_datanodes(self) -> frozenset[str]:
        """Deployment datanode names; cached, membership only ever grows."""
        if len(self._datanode_set) != len(self.deployment.datanodes):
            self._datanode_set = frozenset(self.deployment.datanodes)
        return self._datanode_set

    def stop_reporter(self) -> None:
        """Interrupt the speed-reporter loop if it is still running.

        :meth:`put` stops it on success; a *failed* upload leaves it
        alive, so service wrappers call this in a ``finally`` to keep the
        schedule drainable.
        """
        if self._reporter.is_alive:
            self._reporter.interrupt("client stopped")

    # ------------------------------------------------------------------
    def put(self, path: str, size: int) -> ProcessGenerator:
        """Upload ``size`` bytes to ``path`` (returns a WriteResult)."""
        env = self.env
        namenode = self.deployment.namenode
        hdfs_cfg = self.config.hdfs
        smarth_cfg = self.config.smarth
        start = env.now
        # Ask the deployment policy for this upload's knobs (DESIGN.md
        # §12).  The default policy returns the identity tuning, leaving
        # the configured threshold/cap/train behavior untouched.
        policy = self.deployment.policy
        tuning = policy.tuning_for(self.name)
        self._tuning = tuning
        if tuning.local_opt_threshold is not None:
            self.local_opt.threshold = tuning.local_opt_threshold
        tracer = self.deployment.tracer
        self._trace_upload = tracer.begin(
            "upload", f"client:{self.name}", f"upload:{path}", start,
            size=size, system=self.system,
        )

        yield from namenode.create_file(self.name, path)

        plans = plan_file(size, hdfs_cfg)
        data_queue: Store = Store(env, capacity=DATA_QUEUE_PACKETS)
        # Producer puts can never block when the whole file fits the
        # queue — the safety gate for the train's batched feeder.
        self._batchable = (
            sum(p.n_packets for p in plans) <= DATA_QUEUE_PACKETS
        )
        env.process(
            producer(env, self.node, plans, data_queue), name=f"producer:{path}"
        )

        cap = (
            tuning.max_pipelines
            if tuning.max_pipelines is not None
            else smarth_cfg.pipeline_cap(
                self.deployment.live_datanode_count(), hdfs_cfg.replication
            )
        )
        slots = Resource(env, capacity=cap)
        buffer_bytes = smarth_cfg.datanode_buffer or hdfs_cfg.block_size
        all_pipelines: list[SmarthPipeline] = []

        for plan in plans:
            slot = slots.request()
            yield slot
            yield from self._drain_errors(data_queue, buffer_bytes)
            yield from self._wait_for_headroom(data_queue, buffer_bytes)

            pipeline = yield from self._open_new_pipeline(
                path, plan, slot, buffer_bytes
            )
            self._active.add(pipeline)
            all_pipelines.append(pipeline)
            self._max_concurrent = max(self._max_concurrent, len(self._active))

            # Stream the whole block to the first datanode, then wait for
            # the FNFA before requesting the next block (§III-A step 3).
            yield from self._stream_pipeline(pipeline, data_queue, buffer_bytes)
            yield from self._await_fnfa(pipeline, data_queue, buffer_bytes)

            pipeline.state = PipelineState.BACKGROUND
            self._arm_watcher(pipeline)

        # §III-A step 5: wait until the pipeline set is empty.
        yield from self._drain_all(data_queue, buffer_bytes)

        yield from namenode.complete_file(self.name, path)
        if self._reporter.is_alive:
            self._reporter.interrupt("upload finished")
        tracer.end(self._trace_upload, env.now)

        policy.observe_upload(self.name, path, size, env.now - start, tuning)
        return WriteResult(
            path=path,
            size=size,
            start=start,
            end=env.now,
            n_blocks=len(plans),
            system=self.system,
            pipelines=[p.targets for p in all_pipelines],
            max_concurrent_pipelines=self._max_concurrent,
            recoveries=self._recoveries,
        )

    # ------------------------------------------------------------------
    def _busy_datanodes(self, exclude: Optional[SmarthPipeline] = None) -> set[str]:
        """Datanodes locked by live pipelines (§IV-C disjointness)."""
        busy: set[str] = set()
        for pipeline in self._active:
            if pipeline is exclude or pipeline.state is PipelineState.DONE:
                continue
            busy.update(pipeline.targets)
        return busy

    def _wait_for_headroom(
        self, data_queue: Store, buffer_bytes: int
    ) -> ProcessGenerator:
        """Hold back until a full-width pipeline can be placed.

        Algorithm 1 recomputes ``n = num / repli`` per request; when
        failures shrink the pool (dead nodes are blacklisted), opening a
        degraded pipeline would silently under-replicate the block.
        Instead wait for a live pipeline to release its datanodes.
        """
        replication = self.config.hdfs.replication
        total = self._all_datanodes()
        while self._active:
            available = total - self._busy_datanodes() - self._blacklist
            if len(available) >= replication:
                return
            live = [
                p for p in self._active if p.state is not PipelineState.DONE
            ]
            if not live:
                return
            yield self.env.any_of([p.done for p in live] + [self._error_flag])
            yield from self._drain_errors(data_queue, buffer_bytes)

    def _open_new_pipeline(
        self, path: str, plan: BlockPlan, slot, buffer_bytes: int
    ) -> ProcessGenerator:
        """addBlock + Algorithm 2 reorder + build the receiver chain."""
        namenode = self.deployment.namenode
        excluded = self._busy_datanodes() | self._blacklist
        result = yield from namenode.add_block(
            self.name, path, plan.size, excluded=excluded
        )
        targets = self.local_opt.reorder(result.targets)
        pipeline = SmarthPipeline(self.env, plan, result.block, targets, slot)
        pipeline.trace_block = self.deployment.tracer.begin(
            "block", f"client:{self.name}", f"b{result.block.block_id}",
            self.env.now, parent=self._trace_upload, size=plan.size,
        )
        self.deployment.metrics.count("blocks_total")
        while True:
            try:
                yield from self._build_streams(pipeline, buffer_bytes)
            except DatanodeDead as dead:
                # addBlock handed out a node that crashed before the
                # namenode noticed (heartbeat lag): blacklist it and
                # replace it via Algorithm 3, keeping the same block.
                self._recoveries += 1
                self._blacklist.add(dead.datanode)
                excluded = self._busy_datanodes(exclude=pipeline) | self._blacklist
                new_block, new_targets = yield from recover_pipeline(
                    self.deployment,
                    self.name,
                    pipeline.block,
                    pipeline.targets,
                    dead.datanode,
                    0,
                    excluded,
                    trace_parent=pipeline.trace_block,
                )
                pipeline.rebind_block(new_block, new_targets)
                continue
            break
        pipeline.started_at = self.env.now
        self.deployment.metrics.gauge("pipelines_live", 1)
        return pipeline

    def _build_streams(
        self, pipeline: SmarthPipeline, buffer_bytes: int
    ) -> ProcessGenerator:
        """Open receivers + responder for the pipeline's current targets."""
        tracer = self.deployment.tracer
        pipeline.trace_attempt = tracer.begin(
            "pipeline", f"client:{self.name}", f"b{pipeline.block.block_id}",
            self.env.now, parent=pipeline.trace_block,
            targets=pipeline.targets,
        )
        try:
            handle = self.deployment.open_pipeline(
                pipeline.block,
                pipeline.targets,
                self.node,
                want_fnfa=not pipeline.fnfa_received,
                buffer_bytes=buffer_bytes,
                initial_bytes=pipeline.acked_bytes,
            )
        except DatanodeDead:
            tracer.end(pipeline.trace_attempt, self.env.now, aborted=True)
            pipeline.trace_attempt = 0
            raise
        yield self.env.process(
            self.network.connection_setup(len(pipeline.targets))
        )
        responder = PacketResponder(self.env, pipeline.block, handle.ack_in)
        pipeline.bind(handle, responder)

    # ------------------------------------------------------------------
    def _stream_pipeline(
        self, pipeline: SmarthPipeline, data_queue: Store, buffer_bytes: int
    ) -> ProcessGenerator:
        """Send every pending packet of the pipeline's block."""
        while True:
            status, failed = yield from self._send_seqs(pipeline, data_queue)
            if status == _OK:
                pipeline.fully_streamed = True
                pipeline.trace_ack = self.deployment.tracer.begin(
                    "ack", f"client:{self.name}",
                    f"b{pipeline.block.block_id}",
                    self.env.now, parent=pipeline.trace_attempt,
                )
                return
            if status == _ERROR:
                self._enqueue_error(pipeline, failed)
            yield from self._drain_errors(data_queue, buffer_bytes)

    def _send_seqs(
        self, pipeline: SmarthPipeline, data_queue: Store, watch_flag: bool = True
    ) -> ProcessGenerator:
        """One transmission attempt.  Returns (status, failed_datanode).

        ``watch_flag=False`` is used when resending *inside* an error
        drain — the flag is already triggered for the failure being
        serviced and must not pause the resend.
        """
        env = self.env
        handle = pipeline.handle
        tracer = self.deployment.tracer
        t_stream = tracer.begin(
            "stream", f"client:{self.name}", f"b{pipeline.block.block_id}",
            env.now, parent=pipeline.trace_attempt,
        )

        # Steady-state fast path: hand the whole block to one packet
        # train (see repro.hdfs.train).  Only a completely fresh attempt
        # qualifies — any produced/sent/acked state means a resend, whose
        # per-packet bookkeeping the train does not reproduce.
        if (
            not pipeline.produced
            and not pipeline.sent_seqs
            and not pipeline.acked_seqs
            and pipeline.recoveries == 0
            and self._train_allowed(pipeline.plan)
        ):
            train = plan_train(
                self.deployment,
                self.node,
                handle,
                pipeline.responder,
                data_queue,
                pipeline.plan,
                batchable=self._batchable,
            )
            if train is not None:
                return (
                    yield from self._stream_train(
                        pipeline, train, watch_flag, t_stream
                    )
                )

        for seq in pipeline.pending_seqs():
            packet = pipeline.produced.get(seq)
            if packet is None:
                chunk = yield data_queue.get()
                packet = Packet(
                    block=pipeline.block,
                    seq=chunk.seq,
                    size=chunk.size,
                    is_last=chunk.is_last_in_block,
                )
                pipeline.produced[seq] = packet

            send = env.process(
                self._send_packet(pipeline, packet), name=f"send:{seq}"
            )
            # race() instead of an `a | b | c` Condition: one wait per
            # packet, and on healthy runs only `send` ever fires.
            if watch_flag:
                yield race(env, send, handle.error, self._error_flag)
            else:
                yield race(env, send, handle.error)

            if handle.error.triggered:
                if send.is_alive:
                    send.interrupt("pipeline failed")
                tracer.end(t_stream, env.now, aborted=True)
                return _ERROR, handle.error.value
            if watch_flag and self._error_flag.triggered:
                # Algorithm 4 line 1: another pipeline failed — stop the
                # current block transfer (after the in-flight packet).
                if send.is_alive:
                    yield send
                pipeline.note_sent(seq)
                pipeline.responder.packet_sent(packet)
                tracer.end(t_stream, env.now, paused=True)
                return _PAUSED, None
            pipeline.note_sent(seq)
            pipeline.responder.packet_sent(packet)
        tracer.end(t_stream, env.now)
        return _OK, None

    def _train_allowed(self, plan: BlockPlan) -> bool:
        """Per-upload packet-train gate from the policy's tuning.

        Mirrors ``HdfsConfig.coalesce_packets`` semantics (``0`` whole
        blocks, ``1`` disabled, ``n > 1`` only blocks of at most ``n``
        packets); ``None`` defers entirely to the config, which
        ``plan_train`` applies itself.
        """
        bound = self._tuning.coalesce_packets
        if bound is None or bound == 0:
            return True
        if bound == 1:
            return False
        return plan.n_packets <= bound

    def _send_packet(
        self, pipeline: SmarthPipeline, packet: Packet
    ) -> ProcessGenerator:
        """Deliver one packet to the first datanode (reserve + transfer)."""
        yield from pipeline.handle.receivers[0].send_in(self.node, packet)

    def _stream_train(
        self,
        pipeline: SmarthPipeline,
        train,
        watch_flag: bool,
        t_stream: int = 0,
    ) -> ProcessGenerator:
        """Run one block's transmission as a coalesced packet train.

        Resumes at the legacy "last packet delivered to the first
        datanode" instant (``train.sent``); the train itself keeps
        conducting the downstream hops and the ACK walk in the
        background, settling the responder at the legacy block-done time.
        Unlike the per-packet loop this does not pause mid-block when
        *another* pipeline fails — the error set is serviced right after
        this block finishes streaming, which is protocol-legal (the block
        being streamed is healthy) but not packet-for-packet identical,
        so it can only happen via a direct unscheduled kill (scheduled
        disturbances decline the train up front).
        """
        env = self.env
        handle = pipeline.handle
        tracer = self.deployment.tracer
        train.start()
        yield race(env, train.sent, handle.error)

        def mirror(chunk) -> None:
            pipeline.produced[chunk.seq] = Packet(
                block=pipeline.block,
                seq=chunk.seq,
                size=chunk.size,
                is_last=chunk.is_last_in_block,
            )

        if not train.sent.triggered:
            # The error settle already ran (synchronously, inside the
            # error event's callbacks); mirror the per-packet loop's
            # client-side state for Algorithm 4.
            for chunk in train.chunks:
                mirror(chunk)
            if train.pending_get is not None:
                chunk = yield train.pending_get
                mirror(chunk)
            for seq in range(train.sent_count):
                pipeline.note_sent(seq)
            # Close after the pending-get drain: a per-packet sender
            # parked on the data queue only observes the error once the
            # chunk arrives, and the span end must match that instant.
            tracer.end(t_stream, env.now, aborted=True)
            return _ERROR, handle.error.value

        for chunk in train.chunks:
            mirror(chunk)
        for seq in range(train.sent_count):
            pipeline.note_sent(seq)
        tracer.end(t_stream, env.now)
        if watch_flag and self._error_flag.triggered:
            return _PAUSED, None
        return _OK, None

    def _await_fnfa(
        self, pipeline: SmarthPipeline, data_queue: Store, buffer_bytes: int
    ) -> ProcessGenerator:
        """Block until the first datanode confirms the whole block."""
        env = self.env
        tracer = self.deployment.tracer
        t_fnfa = tracer.begin(
            "fnfa_wait", f"client:{self.name}",
            f"b{pipeline.block.block_id}:fnfa",
            env.now, parent=pipeline.trace_block,
        )
        while not pipeline.fnfa_received:
            handle = pipeline.handle
            if handle.fnfa_in is None:
                tracer.end(t_fnfa, env.now, aborted=True)
                return  # FNFA already consumed on a previous handle
            fnfa_get = handle.fnfa_in.get()
            yield race(env, fnfa_get, handle.error, self._error_flag)

            if fnfa_get.triggered:
                fnfa = fnfa_get.value
                pipeline.fnfa_received = True
                self.deployment.metrics.observe(
                    "fnfa_latency", fnfa.finished_at - pipeline.started_at
                )
                if not pipeline.skip_speed_record:
                    self.records.record(
                        SpeedSample(
                            datanode=fnfa.datanode,
                            nbytes=pipeline.plan.size,
                            duration=fnfa.finished_at - pipeline.started_at,
                            at=env.now,
                        )
                    )
                tracer.end(t_fnfa, env.now, datanode=fnfa.datanode)
                return
            if handle.error.triggered:
                self._enqueue_error(pipeline, handle.error.value)
            yield from self._drain_errors(data_queue, buffer_bytes)
        tracer.end(t_fnfa, env.now)

    # ------------------------------------------------------------------
    def _arm_watcher(self, pipeline: SmarthPipeline) -> None:
        """Watch a background pipeline for completion or failure."""
        pipeline.watcher = self.env.process(
            self._watch(pipeline), name=f"watch:b{pipeline.block.block_id}"
        )

    def _watch(self, pipeline: SmarthPipeline) -> ProcessGenerator:
        responder = pipeline.responder
        handle = pipeline.handle
        try:
            yield race(self.env, responder.block_done, handle.error)
            if responder.block_done.triggered:
                self._complete(pipeline)
            else:
                self._enqueue_error(pipeline, handle.error.value)
        except Interrupt:
            return

    def _complete(self, pipeline: SmarthPipeline) -> None:
        """All ACKs in: free the datanodes and the pipeline slot."""
        pipeline.mark_done()
        self._active.discard(pipeline)
        pipeline.slot.cancel()
        self.deployment.journal.emit(
            self.env.now,
            "pipeline_done",
            f"block:{pipeline.block.block_id}",
            client=self.name,
        )
        tracer = self.deployment.tracer
        now = self.env.now
        tracer.end(pipeline.trace_ack, now)
        tracer.end(pipeline.trace_attempt, now)
        tracer.end(pipeline.trace_block, now)
        self.deployment.metrics.gauge("pipelines_live", -1)

    def _enqueue_error(self, pipeline: SmarthPipeline, failed: str) -> None:
        """Algorithm 4: add the pipeline to the error pipeline set."""
        if failed:
            self._blacklist.add(failed)
        if pipeline not in self._error_list:
            self._error_list.append(pipeline)
        if not self._error_flag.triggered:
            self._error_flag.succeed()

    def _drain_errors(
        self, data_queue: Store, buffer_bytes: int
    ) -> ProcessGenerator:
        """Algorithm 4 lines 3-6: recover every pipeline in the error set."""
        while self._error_list:
            pipeline = self._error_list.pop(0)
            if pipeline.state is PipelineState.DONE:
                continue
            self._recoveries += 1
            failed = (
                pipeline.handle.error.value
                if pipeline.handle.error.triggered
                else None
            )
            pipeline.teardown()
            tracer = self.deployment.tracer
            tracer.end(pipeline.trace_ack, self.env.now, aborted=True)
            tracer.end(pipeline.trace_attempt, self.env.now, aborted=True)
            pipeline.trace_ack = 0
            pipeline.trace_attempt = 0

            excluded = self._busy_datanodes(exclude=pipeline) | self._blacklist
            new_block, new_targets = yield from recover_pipeline(
                self.deployment,
                self.name,
                pipeline.block,
                pipeline.targets,
                failed or "",
                pipeline.acked_bytes,
                excluded,
                trace_parent=pipeline.trace_block,
            )
            pipeline.rebind_block(new_block, new_targets)
            try:
                yield from self._build_streams(pipeline, buffer_bytes)
            except DatanodeDead as dead:
                # The replacement crashed before we could connect: loop
                # the pipeline back through the error set with the dead
                # node blacklisted.
                self._enqueue_error(pipeline, dead.datanode)
                continue

            if pipeline.fully_streamed:
                # The client had finished streaming this block before the
                # failure: resend the un-ACKed tail now (Algorithm 4 line
                # 7, "start transferring the interrupted block").
                yield from self._resend_background(pipeline, data_queue)
                if (
                    pipeline.state is PipelineState.BACKGROUND
                    and pipeline.state is not PipelineState.DONE
                ):
                    self._arm_watcher(pipeline)
            # Not-yet-fully-streamed pipelines are resent by their
            # _stream_pipeline loop after this drain returns.
        # Reset the wake-up flag for the next failure.
        self._error_flag = self.env.event()

    def _resend_background(
        self, pipeline: SmarthPipeline, data_queue: Store
    ) -> ProcessGenerator:
        status, failed = yield from self._send_seqs(
            pipeline, data_queue, watch_flag=False
        )
        if status == _ERROR:
            # The rebuilt pipeline failed too: recurse via the set.
            self._enqueue_error(pipeline, failed)
            return
        pipeline.trace_ack = self.deployment.tracer.begin(
            "ack", f"client:{self.name}", f"b{pipeline.block.block_id}",
            self.env.now, parent=pipeline.trace_attempt,
        )

    def _drain_all(
        self, data_queue: Store, buffer_bytes: int
    ) -> ProcessGenerator:
        """Wait until every pipeline is DONE, recovering stragglers."""
        while True:
            yield from self._drain_errors(data_queue, buffer_bytes)
            live = [p for p in self._active if p.state is not PipelineState.DONE]
            if not live:
                return
            events = [p.done for p in live] + [self._error_flag]
            yield self.env.any_of(events)
