"""Client-side state of one SMARTH pipeline (§III-A).

Each live pipeline owns its ACK queue and PacketResponder (step 4: "After
creating a pipeline, we create an ACK queue and a PacketResponder thread
for it").  The :class:`SmarthPipeline` bundles that per-pipeline state —
the produced packets, acknowledged prefix, the current
:class:`~repro.hdfs.deployment.PipelineHandle` (which changes across
recoveries), FNFA bookkeeping and the pipeline-slot lease.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

from ..hdfs.client.output_stream import BlockPlan
from ..hdfs.client.responder import PacketResponder
from ..hdfs.deployment import PipelineHandle
from ..hdfs.protocol import Block, Packet
from ..sim import Environment, Event, Process, Request

__all__ = ["PipelineState", "SmarthPipeline"]


class PipelineState(Enum):
    #: The client is still streaming this block to the first datanode.
    STREAMING = "streaming"
    #: FNFA received; replication continues without the client.
    BACKGROUND = "background"
    #: All ACKs received; datanodes and slot released.
    DONE = "done"


class SmarthPipeline:
    """One block's pipeline as the client sees it."""

    def __init__(
        self,
        env: Environment,
        plan: BlockPlan,
        block: Block,
        targets: tuple[str, ...],
        slot: Request,
    ):
        self.env = env
        self.plan = plan
        self.block = block
        self.targets = targets
        self.slot = slot

        self.state = PipelineState.STREAMING
        self.handle: Optional[PipelineHandle] = None
        self.responder: Optional[PacketResponder] = None
        self.watcher: Optional[Process] = None

        #: Packets produced so far, keyed by sequence number (recovery
        #: resends from here without re-charging production time).
        self.produced: dict[int, Packet] = {}
        #: Sequence numbers acknowledged by the *whole* pipeline.
        self.acked_seqs: set[int] = set()
        #: Sequence numbers already transmitted on the *current* handle —
        #: a pause to service another pipeline's failure must not resend
        #: them (the pipeline is healthy; duplicates would corrupt it).
        self.sent_seqs: set[int] = set()
        #: The cumulative send order on the current handle (ACKs arrive
        #: as a prefix of this list).
        self.attempt_order: list[int] = []

        self.fnfa_received = False
        #: True once every packet of the block has been transmitted at
        #: least once; from then on error recovery owns retransmission.
        self.fully_streamed = False
        #: Set when a recovery makes the FNFA timing meaningless.
        self.skip_speed_record = False
        self.started_at: float = env.now
        self.recoveries = 0
        #: Fires when the pipeline reaches DONE.
        self.done: Event = env.event()

        #: Open span ids on the client tracer (0 when tracing is off):
        #: the block span (whole-block lifetime), the current pipeline
        #: attempt, and the current ack-wait span.
        self.trace_block: int = 0
        self.trace_attempt: int = 0
        self.trace_ack: int = 0

    # ------------------------------------------------------------------
    @property
    def first_datanode(self) -> str:
        return self.targets[0]

    @property
    def acked_bytes(self) -> int:
        return sum(self.produced[s].size for s in self.acked_seqs)

    def pending_seqs(self) -> list[int]:
        """Sequence numbers still requiring transmission on this handle."""
        return [
            s
            for s in range(self.plan.n_packets)
            if s not in self.acked_seqs and s not in self.sent_seqs
        ]

    def note_sent(self, seq: int) -> None:
        self.sent_seqs.add(seq)
        self.attempt_order.append(seq)

    def bind(self, handle: PipelineHandle, responder: PacketResponder) -> None:
        """Attach a (re)built pipeline handle and its responder."""
        self.handle = handle
        self.responder = responder
        self.sent_seqs = set()
        self.attempt_order = []

    def fold_acks(self) -> None:
        """Fold the current attempt's acknowledged prefix into state."""
        if self.responder is not None:
            self.acked_seqs.update(
                self.attempt_order[: self.responder.acked_count]
            )

    def rebind_block(self, block: Block, targets: tuple[str, ...]) -> None:
        """Adopt the recovered block (new generation) and targets."""
        self.block = block
        self.targets = targets
        self.recoveries += 1
        self.skip_speed_record = True
        self.produced = {
            seq: Packet(block, pkt.seq, pkt.size, pkt.is_last)
            for seq, pkt in self.produced.items()
        }

    def teardown(self) -> None:
        """Stop the current attempt's machinery (before recovery)."""
        self.fold_acks()
        if self.watcher is not None and self.watcher.is_alive:
            self.watcher.interrupt("pipeline recovery")
        self.watcher = None
        if self.responder is not None:
            self.responder.stop()
        if self.handle is not None:
            self.handle.teardown()

    def mark_done(self) -> None:
        self.state = PipelineState.DONE
        if not self.done.triggered:
            self.done.succeed(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SmarthPipeline block={self.block.block_id} {self.state.value} "
            f"targets={self.targets}>"
        )
