"""SMARTH: asynchronous multi-pipeline HDFS data transfer (the paper's
contribution) — multi-pipeline client, FNFA handling, global (Algorithm 1)
and local (Algorithm 2) optimizers, and multi-pipeline fault tolerance
(Algorithm 4)."""

from .deployment import SmarthDeployment
from .global_opt import SmarthPlacementPolicy
from .local_opt import LocalOptimizer
from .multi_writer import SmarthClient
from .pipeline import PipelineState, SmarthPipeline
from .records import SpeedRecords, SpeedSample
from .reporter import speed_reporter

__all__ = [
    "SmarthDeployment",
    "SmarthClient",
    "SmarthPipeline",
    "PipelineState",
    "SmarthPlacementPolicy",
    "LocalOptimizer",
    "SpeedRecords",
    "SpeedSample",
    "speed_reporter",
]
