"""Algorithm 2 — the client's local optimization.

Before opening a pipeline the client sorts the namenode-proposed targets
by its *local* speed records (descending), then with probability
``1 - threshold`` (threshold = 0.8 in the paper) swaps the first datanode
with a random other target.  The swap is the exploration step: it
refreshes the transfer record of a datanode that was previously measured
slow, so that a recovered node can re-enter the TopN.
"""

from __future__ import annotations

import random

from .records import SpeedRecords

__all__ = ["LocalOptimizer"]


class LocalOptimizer:
    """Sort-then-occasionally-swap target ordering (Algorithm 2)."""

    def __init__(
        self,
        records: SpeedRecords,
        rng: random.Random,
        threshold: float = 0.8,
        enabled: bool = True,
    ):
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        self.records = records
        self.rng = rng
        self.threshold = threshold
        self.enabled = enabled
        #: Diagnostics: how many exploratory swaps have happened.
        self.swaps = 0

    def reorder(self, targets: tuple[str, ...]) -> tuple[str, ...]:
        """Return the pipeline order the client will actually use."""
        if not self.enabled or len(targets) < 2:
            return tuple(targets)

        # Line 2-3: sort descending by locally observed transfer speed.
        # Unmeasured datanodes sort last (speed 0 — they have never been a
        # first datanode for this client).
        ordered = sorted(
            targets,
            key=lambda d: self.records.speed_of(d) or 0.0,
            reverse=True,
        )

        # Lines 4-8: exploration — r > threshold swaps targets[0] with a
        # random other pipeline position.
        r = self.rng.random()
        if r > self.threshold:
            index = self.rng.randint(1, len(ordered) - 1)
            ordered[0], ordered[index] = ordered[index], ordered[0]
            self.swaps += 1

        return tuple(ordered)
