"""Result metrics and series summaries for the experiment harness."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..hdfs.protocol import WriteResult
from ..units import to_mbps

__all__ = ["improvement_percent", "ComparisonRow", "summarize_series"]


def improvement_percent(hdfs_seconds: float, smarth_seconds: float) -> float:
    """The paper's headline metric: ``(T_hdfs / T_smarth - 1) * 100``."""
    if smarth_seconds <= 0:
        raise ValueError("smarth time must be positive")
    return (hdfs_seconds / smarth_seconds - 1.0) * 100.0


@dataclass(frozen=True)
class ComparisonRow:
    """One x-axis point of an HDFS-vs-SMARTH figure."""

    label: str
    hdfs_seconds: float
    smarth_seconds: float

    @property
    def improvement(self) -> float:
        return improvement_percent(self.hdfs_seconds, self.smarth_seconds)

    @classmethod
    def from_results(
        cls, label: str, hdfs: WriteResult, smarth: WriteResult
    ) -> "ComparisonRow":
        return cls(
            label=label,
            hdfs_seconds=hdfs.duration,
            smarth_seconds=smarth.duration,
        )

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "hdfs_s": round(self.hdfs_seconds, 2),
            "smarth_s": round(self.smarth_seconds, 2),
            "improvement_pct": round(self.improvement, 1),
        }


def summarize_series(values: Sequence[float]) -> dict:
    """Mean / min / max / stdev of a measurement series."""
    if not values:
        raise ValueError("empty series")
    n = len(values)
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / n
    return {
        "n": n,
        "mean": mean,
        "min": min(values),
        "max": max(values),
        "stdev": math.sqrt(var),
    }


def throughput_mbps(result: WriteResult) -> float:
    """Goodput of a completed upload in Mbps."""
    return to_mbps(result.throughput)
