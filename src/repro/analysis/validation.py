"""Cross-validation of the simulator against the §III-D cost model.

Used by tests and ``benchmarks/bench_cost_model.py`` to demonstrate that
the discrete-event simulator and the closed-form formulas agree in the
regimes where the formulas' assumptions hold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import SimulationConfig
from ..units import mbps
from ..workloads.scenarios import Scenario, two_rack
from ..workloads.upload import run_upload
from .cost_model import CostParameters, hdfs_time, smarth_time_refined

__all__ = ["ValidationPoint", "validate_hdfs", "validate_smarth"]


@dataclass(frozen=True)
class ValidationPoint:
    """One simulator-vs-model comparison."""

    label: str
    simulated: float
    predicted: float

    @property
    def relative_error(self) -> float:
        """(simulated - predicted) / predicted."""
        return (self.simulated - self.predicted) / self.predicted


def _cost_parameters(size: int, config: SimulationConfig) -> CostParameters:
    return CostParameters(
        file_size=size,
        block_size=config.hdfs.block_size,
        packet_size=config.hdfs.packet_size,
        t_n=config.hdfs.namenode_rpc_latency,
        # Disk writes and production overlap transmission in both the
        # simulator and real HDFS; the network-bound regime has t_c,t_w=0.
        t_c=0.0,
        t_w=0.0,
    )


def validate_hdfs(
    size: int,
    throttle_mbps: float,
    instance: str = "small",
    config: Optional[SimulationConfig] = None,
    scenario: Optional[Scenario] = None,
) -> ValidationPoint:
    """Compare a baseline upload against Formula (2).

    With a two-rack throttle every pipeline crosses the boundary at least
    once, so ``B_min`` is the throttle rate.
    """
    config = config or SimulationConfig()
    scenario = scenario or two_rack(instance, throttle_mbps=throttle_mbps)
    outcome = run_upload(scenario, "hdfs", size, config=config)
    predicted = hdfs_time(_cost_parameters(size, config), mbps(throttle_mbps))
    return ValidationPoint(
        label=f"hdfs[{instance}@{throttle_mbps:g}Mbps]",
        simulated=outcome.duration,
        predicted=predicted,
    )


def validate_smarth(
    size: int,
    throttle_mbps: float,
    instance: str = "small",
    config: Optional[SimulationConfig] = None,
) -> ValidationPoint:
    """Compare a SMARTH upload against the refined Formula (3).

    The refinement (see :func:`repro.analysis.cost_model.smarth_time_refined`)
    models the §IV-C rotation over both racks' datanodes — the client's
    effective first-hop rate is the harmonic mean of same-rack (NIC rate)
    and cross-rack (throttle rate) hops — plus the aggregate drain cap of
    ``n`` concurrent pipelines.
    """
    from ..cluster.instance import instance_by_name

    config = config or SimulationConfig()
    scenario = two_rack(instance, throttle_mbps=throttle_mbps)
    outcome = run_upload(scenario, "smarth", size, config=config)

    nic = instance_by_name(instance).network_rate
    throttle = mbps(throttle_mbps)
    # Algorithm 1 hands out a client-rack (full NIC) first datanode, but
    # Algorithm 2 swaps the first with a replica node with probability
    # 1 - threshold = 0.2, and replica nodes sit across the throttled
    # boundary — so the first-hop rotation is a 4:1 fast/slow mix.
    first_hop_rates = [nic] * 4 + [min(nic, throttle)]
    predicted = smarth_time_refined(
        _cost_parameters(size, config),
        first_hop_rates=first_hop_rates,
        drain_rate=throttle,
        n_pipelines=3,
    )
    return ValidationPoint(
        label=f"smarth[{instance}@{throttle_mbps:g}Mbps]",
        simulated=outcome.duration,
        predicted=predicted,
    )
