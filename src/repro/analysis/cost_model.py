"""The paper's §III-D analytic cost model — Formulas (1), (2) and (3).

Notation (all rates bytes/second, times seconds, sizes bytes):

* ``D`` — file size, ``B`` — block size, ``P`` — packet size;
* ``T_n`` — client↔namenode RPC time per block;
* ``T_c`` — packet production time (local read + checksum);
* ``T_w`` — per-packet datanode write time;
* ``B_min`` — minimum bandwidth along the whole pipeline (client→dn1 and
  every dn→dn hop);
* ``B_max`` — bandwidth between the client and the *first* datanode.

Formula (1) — production-bound (``T_c ≥ P/B``)::

    T = T_n * ⌈D/B⌉ + (T_c + T_w) * ⌈D/P⌉

Formula (2) — baseline HDFS, transmission-bound (``T_c < P/B_min``)::

    T = T_n * ⌈D/B⌉ + (P/B_min + T_w) * ⌈D/P⌉

Formula (3) — SMARTH, transmission-bound (``T_c < P/B_max``)::

    T = T_n * ⌈D/B⌉ + (P/B_max + T_w) * ⌈D/P⌉

Two practical notes, both verified by ``benchmarks/bench_cost_model.py``:

* The paper charges ``T_w`` serially per packet; in any real datanode (and
  in our simulator) disk writes overlap transmission, so for comparisons
  against the simulator pass ``t_w=0`` unless the disk genuinely is the
  bottleneck.
* Formula (3) implicitly assumes background pipelines always drain fast
  enough.  :func:`smarth_time_refined` adds the two effects the formula
  abstracts away — the aggregate drain cap ``n_pipelines * drain_rate``
  and first-hop rotation over heterogeneous datanodes (§IV-C forces the
  client to cycle through *all* datanodes, so slow first hops mix in).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = [
    "CostParameters",
    "production_bound_time",
    "hdfs_time",
    "smarth_time",
    "smarth_time_refined",
    "predicted_improvement",
    "harmonic_mean",
]


@dataclass(frozen=True)
class CostParameters:
    """Inputs shared by all three formulas."""

    file_size: int
    block_size: int
    packet_size: int
    t_n: float = 1e-3
    t_c: float = 0.0
    t_w: float = 0.0

    def __post_init__(self) -> None:
        if min(self.file_size, self.block_size, self.packet_size) <= 0:
            raise ValueError("sizes must be positive")
        if min(self.t_n, self.t_c, self.t_w) < 0:
            raise ValueError("per-item times must be non-negative")

    @property
    def n_blocks(self) -> int:
        return math.ceil(self.file_size / self.block_size)

    @property
    def n_packets(self) -> int:
        return math.ceil(self.file_size / self.packet_size)


def production_bound_time(p: CostParameters) -> float:
    """Formula (1): the producer is the bottleneck (``T_c ≥ P/B``)."""
    return p.t_n * p.n_blocks + (p.t_c + p.t_w) * p.n_packets


def _transmission_time(p: CostParameters, bandwidth: float) -> float:
    if bandwidth <= 0:
        raise ValueError("bandwidth must be positive")
    per_packet = p.packet_size / bandwidth
    if p.t_c >= per_packet:
        return production_bound_time(p)
    return p.t_n * p.n_blocks + (per_packet + p.t_w) * p.n_packets


def hdfs_time(p: CostParameters, b_min: float) -> float:
    """Formula (2): baseline upload time at pipeline bandwidth ``b_min``."""
    return _transmission_time(p, b_min)


def smarth_time(p: CostParameters, b_max: float) -> float:
    """Formula (3): SMARTH upload time at first-hop bandwidth ``b_max``."""
    return _transmission_time(p, b_max)


def harmonic_mean(rates: Sequence[float]) -> float:
    """Effective rate of a rotation over hops with the given rates.

    Sending equal-size blocks to first datanodes of varying bandwidth
    takes ``sum(B/r_i)``, so the effective streaming rate is the harmonic
    mean — the right aggregate for §IV-C's forced rotation.
    """
    rates = [r for r in rates if r > 0]
    if not rates:
        raise ValueError("need at least one positive rate")
    return len(rates) / sum(1.0 / r for r in rates)


def smarth_time_refined(
    p: CostParameters,
    first_hop_rates: Iterable[float],
    drain_rate: float,
    n_pipelines: int,
) -> float:
    """Formula (3) extended with the two real-world caps it abstracts away.

    ``first_hop_rates`` — client→datanode bandwidth of every datanode the
    §IV-C rotation will cycle through; ``drain_rate`` — the bandwidth at
    which one background pipeline completes replication (its slowest
    hop); ``n_pipelines`` — the concurrency cap ``num/repli``.
    """
    if n_pipelines < 1:
        raise ValueError("n_pipelines must be >= 1")
    stream_rate = harmonic_mean(list(first_hop_rates))
    effective = min(stream_rate, n_pipelines * drain_rate)
    return _transmission_time(p, effective)


def predicted_improvement(hdfs_seconds: float, smarth_seconds: float) -> float:
    """The paper's improvement metric, in percent: ``T_hdfs/T_smarth - 1``."""
    if smarth_seconds <= 0:
        raise ValueError("smarth time must be positive")
    return (hdfs_seconds / smarth_seconds - 1.0) * 100.0
