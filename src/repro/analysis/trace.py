"""Event journal: a structured trace of protocol-level events.

Production distributed systems live and die by their observability; the
simulator mirrors that with a lightweight journal every deployment owns.
Components emit one :class:`TraceEvent` per protocol milestone — block
allocation, pipeline open/close, FNFA, recovery, datanode death — and
tests, examples and debugging sessions read the same stream.

The journal is append-only and cheap (a list append per event); disable
it for maximum-speed sweeps with ``journal.disable()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

__all__ = ["TraceEvent", "Journal"]


@dataclass(frozen=True)
class TraceEvent:
    """One protocol milestone."""

    time: float
    kind: str
    subject: str
    details: dict = field(default_factory=dict)

    def __str__(self) -> str:
        details = " ".join(f"{k}={v}" for k, v in self.details.items())
        return f"[{self.time:10.3f}s] {self.kind:<16s} {self.subject} {details}"


class Journal:
    """Append-only trace of a deployment's protocol events."""

    def __init__(self, enabled: bool = True):
        self._events: list[TraceEvent] = []
        self._enabled = enabled
        self._listeners: list[Callable[[TraceEvent], None]] = []

    # -- control -----------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def clear(self) -> None:
        self._events.clear()

    def restore_events(self, events: "list[TraceEvent] | tuple[TraceEvent, ...]") -> None:
        """Replace the whole event list (checkpoint restore path)."""
        self._events = list(events)

    # -- writing ------------------------------------------------------------
    def emit(self, time: float, kind: str, subject: str, **details: object) -> None:
        if self._enabled:
            event = TraceEvent(time, kind, subject, details)
            self._events.append(event)
            for listener in self._listeners:
                listener(event)

    def subscribe(self, listener: Callable[[TraceEvent], None]) -> None:
        """Call ``listener(event)`` on every emitted event.

        Listeners observe the protocol stream live — the hook the chaos
        engine's :class:`~repro.faults.invariants.InvariantMonitor` uses
        to check invariants *during* a run, not just after it.  Listeners
        must not mutate simulation state.
        """
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[TraceEvent], None]) -> None:
        """Remove a previously subscribed listener (missing is a no-op)."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    # -- reading ------------------------------------------------------------
    def events(
        self, kind: Optional[str] = None, subject: Optional[str] = None
    ) -> tuple[TraceEvent, ...]:
        """Events in emission order, optionally filtered."""
        return tuple(
            e
            for e in self._events
            if (kind is None or e.kind == kind)
            and (subject is None or e.subject == subject)
        )

    def kinds(self) -> tuple[str, ...]:
        return tuple(sorted({e.kind for e in self._events}))

    def count(self, kind: str) -> int:
        return sum(1 for e in self._events if e.kind == kind)

    def between(self, start: float, end: float) -> tuple[TraceEvent, ...]:
        return tuple(e for e in self._events if start <= e.time <= end)

    def timeline(self, limit: Optional[int] = None) -> str:
        """Human-readable rendering, newest last."""
        events = self._events if limit is None else self._events[-limit:]
        return "\n".join(str(e) for e in events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)
