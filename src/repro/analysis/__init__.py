"""Analysis: the §III-D cost model, metrics, and sim-vs-model validation."""

from .cost_model import (
    CostParameters,
    harmonic_mean,
    hdfs_time,
    predicted_improvement,
    production_bound_time,
    smarth_time,
    smarth_time_refined,
)
from .metrics import ComparisonRow, improvement_percent, summarize_series
from .statistics import ReplicatedComparison, SeedSummary, repeat_compare
from .trace import Journal, TraceEvent
from .validation import ValidationPoint, validate_hdfs, validate_smarth

__all__ = [
    "CostParameters",
    "production_bound_time",
    "hdfs_time",
    "smarth_time",
    "smarth_time_refined",
    "predicted_improvement",
    "harmonic_mean",
    "ComparisonRow",
    "improvement_percent",
    "summarize_series",
    "ValidationPoint",
    "validate_hdfs",
    "validate_smarth",
    "SeedSummary",
    "ReplicatedComparison",
    "repeat_compare",
    "Journal",
    "TraceEvent",
]
