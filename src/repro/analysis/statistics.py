"""Seed-replication statistics for experiment results.

The paper's EC2 measurements are averages over repeated runs; our
simulator is deterministic *per seed*, so the analogue is repeating an
experiment across seeds and summarizing.  This module provides exactly
that: run a scenario under ``n`` seeds and report mean, spread and a
t-distribution confidence interval for the upload times and the
improvement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy import stats as scipy_stats

from ..config import SimulationConfig
from ..units import parse_size
from ..workloads.scenarios import Scenario
from ..workloads.upload import run_upload

__all__ = ["SeedSummary", "ReplicatedComparison", "repeat_compare"]


@dataclass(frozen=True)
class SeedSummary:
    """Mean / stdev / CI of one measured quantity across seeds."""

    mean: float
    stdev: float
    ci_low: float
    ci_high: float
    n: int

    @classmethod
    def from_samples(
        cls, samples: Sequence[float], confidence: float = 0.95
    ) -> "SeedSummary":
        values = np.asarray(list(samples), dtype=float)
        if values.size == 0:
            raise ValueError("no samples")
        mean = float(values.mean())
        if values.size == 1:
            return cls(mean=mean, stdev=0.0, ci_low=mean, ci_high=mean, n=1)
        stdev = float(values.std(ddof=1))
        sem = stdev / np.sqrt(values.size)
        t = scipy_stats.t.ppf(0.5 + confidence / 2, df=values.size - 1)
        half = float(t * sem)
        return cls(
            mean=mean,
            stdev=stdev,
            ci_low=mean - half,
            ci_high=mean + half,
            n=int(values.size),
        )

    def __str__(self) -> str:
        return f"{self.mean:.1f} ± {self.ci_high - self.mean:.1f} (n={self.n})"


@dataclass(frozen=True)
class ReplicatedComparison:
    """HDFS-vs-SMARTH comparison replicated across seeds."""

    scenario: str
    size: int
    hdfs: SeedSummary
    smarth: SeedSummary
    improvement: SeedSummary

    @property
    def smarth_wins_significantly(self) -> bool:
        """True when the improvement CI sits entirely above zero."""
        return self.improvement.ci_low > 0


def repeat_compare(
    scenario: Scenario,
    size: int | str,
    seeds: Sequence[int],
    config: Optional[SimulationConfig] = None,
    confidence: float = 0.95,
) -> ReplicatedComparison:
    """Run both systems once per seed; summarize across the replicas."""
    if not seeds:
        raise ValueError("need at least one seed")
    size = parse_size(size)
    base = config or SimulationConfig()

    hdfs_times: list[float] = []
    smarth_times: list[float] = []
    improvements: list[float] = []
    for seed in seeds:
        config_s = SimulationConfig(
            network=base.network, hdfs=base.hdfs, smarth=base.smarth, seed=seed
        )
        hdfs = run_upload(scenario, "hdfs", size, config=config_s)
        smarth = run_upload(scenario, "smarth", size, config=config_s)
        if not (hdfs.fully_replicated and smarth.fully_replicated):
            raise RuntimeError(f"seed {seed}: upload under-replicated")
        hdfs_times.append(hdfs.duration)
        smarth_times.append(smarth.duration)
        improvements.append((hdfs.duration / smarth.duration - 1) * 100)

    return ReplicatedComparison(
        scenario=scenario.name,
        size=size,
        hdfs=SeedSummary.from_samples(hdfs_times, confidence),
        smarth=SeedSummary.from_samples(smarth_times, confidence),
        improvement=SeedSummary.from_samples(improvements, confidence),
    )
