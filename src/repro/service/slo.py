"""Per-tenant SLO reporting from :mod:`repro.obs` histograms.

The service records every upload latency twice — once per class and once
per tenant — under labelled metric names
(``service.latency{cls=interactive}`` and
``service.latency{cls=interactive,tenant=interactive-0007}``), plus one
violation counter per class.  :func:`slo_table` renders those instruments
into a fixed-width, name-sorted, byte-deterministic table: one row per
class (count, p50/p95/p99, SLO target, violations) followed by the ten
worst tenants by p99.
"""

from __future__ import annotations

from ..obs import MetricsRegistry, labelled

__all__ = ["slo_table", "LATENCY", "VIOLATIONS"]

LATENCY = "service.latency"
VIOLATIONS = "service.slo_violations"

_WORST_TENANTS = 10


def class_latency(cls: str) -> str:
    return labelled(LATENCY, cls=cls)


def tenant_latency(cls: str, tenant: str) -> str:
    return labelled(LATENCY, cls=cls, tenant=tenant)


def class_violations(cls: str) -> str:
    return labelled(VIOLATIONS, cls=cls)


def _fmt(value: float) -> str:
    return f"{value:12.6f}"


def slo_table(metrics: MetricsRegistry, classes) -> str:
    """Render the per-class + worst-tenant SLO table (deterministic)."""
    lines = [
        f"{'class':<14s} {'count':>8s} {'p50':>12s} {'p95':>12s} "
        f"{'p99':>12s} {'slo':>12s} {'violations':>10s}"
    ]
    for spec in classes:
        hist = metrics.histogram(class_latency(spec.name))
        violations = metrics.counter_value(class_violations(spec.name))
        lines.append(
            f"{spec.name:<14s} {hist.count:>8d} "
            f"{_fmt(hist.percentile(50))} {_fmt(hist.percentile(95))} "
            f"{_fmt(hist.percentile(99))} {_fmt(spec.slo)} "
            f"{int(violations):>10d}"
        )

    tenants: list[tuple[float, str, int]] = []
    prefix = f"{LATENCY}{{cls="
    for hist in metrics.histograms():
        if hist.name.startswith(prefix) and ",tenant=" in hist.name:
            tenant = hist.name.rsplit("tenant=", 1)[1].rstrip("}")
            tenants.append((hist.percentile(99), tenant, hist.count))
    tenants.sort(key=lambda t: (-t[0], t[1]))

    if tenants:
        lines.append("")
        lines.append(
            f"worst tenants by p99 (top {min(_WORST_TENANTS, len(tenants))} "
            f"of {len(tenants)})"
        )
        lines.append(f"{'tenant':<22s} {'count':>8s} {'p99':>12s}")
        for p99, tenant, count in tenants[:_WORST_TENANTS]:
            lines.append(f"{tenant:<22s} {count:>8d} {_fmt(p99)}")
    return "\n".join(lines) + "\n"
