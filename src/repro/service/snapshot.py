"""Versioned on-disk snapshots for checkpoint/resume.

A snapshot is a pickle of ``{"format", "version", "state"}`` where
``state`` is plain data only — dataclasses, dicts, lists, RNG state
tuples — captured at a *quiescent barrier* (empty event schedule).
Generator frames are never serialized; resume rebuilds the deployment
from the spec and replays plain state into it, which is what makes the
byte-identical-continuation guarantee provable rather than hopeful.
"""

from __future__ import annotations

import pickle

from ..sim import SnapshotError

__all__ = ["SNAPSHOT_FORMAT", "SNAPSHOT_VERSION", "save_snapshot", "load_snapshot"]

SNAPSHOT_FORMAT = "repro-service-snapshot"
SNAPSHOT_VERSION = 1


def save_snapshot(path, state: dict) -> None:
    """Write ``state`` to ``path`` as a versioned snapshot file."""
    payload = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "state": state,
    }
    with open(path, "wb") as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)


def load_snapshot(path) -> dict:
    """Read and validate a snapshot file; returns the ``state`` dict."""
    try:
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError) as err:
        raise SnapshotError(f"cannot read snapshot {path}: {err}") from err
    if not isinstance(payload, dict) or payload.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(f"{path} is not a {SNAPSHOT_FORMAT} file")
    version = payload.get("version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"{path}: unsupported snapshot version {version!r} "
            f"(this build reads version {SNAPSHOT_VERSION})"
        )
    return payload["state"]
