"""Admission control for the ingest service.

A pure state machine (no environment or process references, so it is
trivially checkpointable and property-testable): at most ``max_inflight``
uploads run concurrently, at most ``queue_limit`` wait in a FIFO queue,
and everything beyond that is *rejected* — bounded-queue backpressure,
not silent unbounded buffering.

Conservation invariant (checked at every drain): every arrival is
eventually exactly one of completed, failed or rejected, and the queue
never exceeds its bound.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["AdmissionController"]

ADMIT = "admit"
QUEUE = "queue"
REJECT = "reject"


class AdmissionController:
    """Bounded-concurrency, bounded-queue admission state machine."""

    def __init__(self, max_inflight: int, queue_limit: int):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        self.max_inflight = max_inflight
        self.queue_limit = queue_limit
        self.queue: list = []
        self.inflight = 0
        # Monotone counters.
        self.arrivals = 0
        self.admitted = 0
        self.enqueued = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.dequeued = 0
        # High-water marks.
        self.max_queue_depth = 0
        self.max_inflight_seen = 0

    # ------------------------------------------------------------------
    def on_arrival(self, item) -> str:
        """Decide one arrival: ``admit`` | ``queue`` | ``reject``."""
        self.arrivals += 1
        if self.inflight < self.max_inflight:
            self.inflight += 1
            self.admitted += 1
            if self.inflight > self.max_inflight_seen:
                self.max_inflight_seen = self.inflight
            return ADMIT
        if len(self.queue) < self.queue_limit:
            self.queue.append(item)
            self.enqueued += 1
            if len(self.queue) > self.max_queue_depth:
                self.max_queue_depth = len(self.queue)
            return QUEUE
        self.rejected += 1
        return REJECT

    def on_done(self, ok: bool) -> Optional[object]:
        """One upload finished; returns the dequeued next item, if any."""
        if self.inflight <= 0:
            raise RuntimeError("on_done with no inflight uploads")
        self.inflight -= 1
        if ok:
            self.completed += 1
        else:
            self.failed += 1
        if self.queue:
            item = self.queue.pop(0)
            self.dequeued += 1
            self.inflight += 1
            return item
        return None

    # -- invariants --------------------------------------------------------
    @property
    def settled(self) -> int:
        """Arrivals with a final outcome."""
        return self.completed + self.failed + self.rejected

    def check_drained(self) -> None:
        """Assert the conservation invariant at a quiescent point."""
        if self.inflight != 0 or self.queue:
            raise AssertionError(
                f"not drained: inflight={self.inflight} "
                f"queued={len(self.queue)}"
            )
        if self.arrivals != self.settled:
            raise AssertionError(
                f"conservation violated: arrivals={self.arrivals} != "
                f"completed={self.completed} + failed={self.failed} + "
                f"rejected={self.rejected}"
            )

    # -- snapshot protocol -------------------------------------------------
    def export_state(self) -> dict:
        if self.queue or self.inflight:
            raise AssertionError(
                "admission controller must be drained before checkpointing"
            )
        return {
            "arrivals": self.arrivals,
            "admitted": self.admitted,
            "enqueued": self.enqueued,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "dequeued": self.dequeued,
            "max_queue_depth": self.max_queue_depth,
            "max_inflight_seen": self.max_inflight_seen,
        }

    def restore_state(self, state: dict) -> None:
        self.queue = []
        self.inflight = 0
        for key, value in state.items():
            setattr(self, key, int(value))
