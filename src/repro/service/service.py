"""The continuous-ingestion multi-tenant service (checkpoint/resume).

:class:`IngestService` runs an open-loop upload workload against one
long-lived SMARTH/HDFS deployment.  The simulated horizon is split into
*segments* of ``checkpoint_every`` seconds; every segment ends at a
**quiescent barrier**:

1. the driver stops admitting new arrivals and drains the queue and all
   in-flight uploads;
2. the perpetual infrastructure loops (datanode heartbeats, the liveness
   monitor, the replication scanner) are interrupted in canonical sorted
   order;
3. the schedule runs dry (:class:`~repro.sim.SnapshotError` if it
   doesn't — nothing may survive a barrier);
4. all remaining state is plain data and is snapshotted, then the same
   loops restart through the same code path.

Because a barrier leaves *zero* pending events, a resumed run rebuilds
the deployment from the spec (with services stopped), restores the plain
state, resets the clock/event-id counter, and restarts the loops through
the identical path — so every subsequent ``(time, priority, eid)``
triple, and therefore every journal line, metric and SLO table, is
byte-identical to the straight run.  The straight run performs the same
quiesce/restart dance at every boundary whether or not a snapshot file
is written, which is what makes the equivalence provable.

Two deliberate modelling notes:

* Heartbeats pause during the barrier drain itself; datanode
  ``last_heartbeat`` stamps are *not* rewritten at restart, so the
  namenode's dead-node timing matches real HDFS.  Configure
  ``heartbeat_interval * dead_node_heartbeats`` comfortably above the
  expected drain length (the defaults are) or healthy nodes could be
  declared dead across a long barrier.
* Arrivals that fall inside a barrier drain are admitted (late) when the
  next segment starts — open-loop arrivals never disappear, they queue
  at the service edge like requests during a rolling restart.
"""

from __future__ import annotations

import json
import hashlib
from contextlib import nullcontext
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from ..cluster.builder import build_homogeneous
from ..config import SimulationConfig
from ..faults.campaign import FaultSpec
from ..faults.injector import FaultInjector
from ..hdfs.deployment import HdfsDeployment
from ..obs import MetricsRegistry, metrics_summary, window_bucket
from ..rng import substream
from ..sim import Environment, ProcessGenerator, ShardedEnvironment, SnapshotError
from ..smarth.deployment import SmarthDeployment
from ..units import KB, MB
from .admission import ADMIT, QUEUE, AdmissionController
from .arrivals import Arrival, MergedArrivals, TenantClassSpec
from .slo import (
    class_latency,
    class_violations,
    slo_table,
    tenant_latency,
)
from .snapshot import load_snapshot, save_snapshot

__all__ = [
    "ServiceSpec",
    "IngestService",
    "ServiceReport",
    "generate_service_faults",
]

_PROTOCOLS = ("hdfs", "smarth")


@dataclass(frozen=True)
class ServiceSpec:
    """Everything needed to (re)build one service run deterministically."""

    classes: tuple[TenantClassSpec, ...]
    #: Total simulated horizon, seconds.
    horizon: float
    #: Segment length: quiesce (and optionally checkpoint) this often.
    checkpoint_every: float
    seed: int = 20140901
    protocol: str = "smarth"
    shards: int = 1
    n_datanodes: int = 6
    n_client_hosts: int = 3
    max_inflight: int = 8
    queue_limit: int = 16
    block_size: int = MB
    packet_size: int = 64 * KB
    heartbeat_interval: float = 3.0
    dead_node_heartbeats: int = 10
    #: Window width for the time-bucketed latency histograms.
    slo_window: float = 3600.0
    faults: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("need at least one tenant class")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        if self.protocol not in _PROTOCOLS:
            raise ValueError(f"protocol must be one of {_PROTOCOLS}")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.n_client_hosts < 1:
            raise ValueError("n_client_hosts must be >= 1")

    @property
    def total_tenants(self) -> int:
        return sum(c.tenants for c in self.classes)

    @classmethod
    def default(
        cls,
        tenants: int = 500,
        horizon: float = 48 * 3600.0,
        checkpoint_every: float = 6 * 3600.0,
        **overrides: object,
    ) -> "ServiceSpec":
        """The standard three-class mix scaled to ``tenants`` tenants.

        Interactive tenants upload small objects hourly with a strong
        diurnal swing; batch tenants upload every four hours; bulk
        tenants push one larger object per simulated day.
        """
        n_interactive = max(1, tenants // 5)
        n_batch = max(1, (3 * tenants) // 10)
        n_bulk = max(1, tenants - n_interactive - n_batch)
        classes = (
            TenantClassSpec(
                name="interactive",
                tenants=n_interactive,
                mean_interarrival=3600.0,
                size=256 * KB,
                slo=60.0,
                diurnal_amplitude=0.8,
            ),
            TenantClassSpec(
                name="batch",
                tenants=n_batch,
                mean_interarrival=4 * 3600.0,
                size=512 * KB,
                slo=300.0,
            ),
            TenantClassSpec(
                name="bulk",
                tenants=n_bulk,
                mean_interarrival=24 * 3600.0,
                size=MB,
                slo=900.0,
            ),
        )
        return cls(
            classes=classes,
            horizon=horizon,
            checkpoint_every=checkpoint_every,
            **overrides,  # type: ignore[arg-type]
        )


@dataclass
class ServiceReport:
    """Deterministic rendering of one finished (or resumed) run."""

    counts: dict
    classes: dict
    journal_text: str
    metrics_text: str
    slo_text: str

    def digests(self) -> dict:
        """sha256 of each rendered artifact — the equivalence currency."""
        return {
            "journal": hashlib.sha256(self.journal_text.encode()).hexdigest(),
            "metrics": hashlib.sha256(self.metrics_text.encode()).hexdigest(),
            "slo": hashlib.sha256(self.slo_text.encode()).hexdigest(),
        }

    def to_json(self) -> str:
        return json.dumps(
            {
                "counts": self.counts,
                "classes": self.classes,
                "digests": self.digests(),
            },
            sort_keys=True,
            indent=2,
        ) + "\n"


def generate_service_faults(
    seed: int, n_datanodes: int, horizon: float, events_per_day: float = 4.0
) -> tuple[FaultSpec, ...]:
    """A reproducible chaos plan for a service run.

    Alternates throttle windows and kill/revive pairs over the middle 90%
    of the horizon; everything derives from a dedicated substream so the
    plan is stable under unrelated seed consumers.
    """
    rng = substream(seed, "service-faults")
    n_events = max(1, int(events_per_day * horizon / 86400.0))
    faults: list[FaultSpec] = []
    for _ in range(n_events):
        at = rng.uniform(0.05, 0.90) * horizon
        name = f"dn{rng.randrange(n_datanodes)}"
        duration = rng.uniform(0.02, 0.05) * horizon
        if rng.random() < 0.6:
            rate = rng.choice([1.0, 5.0, 25.0])
            faults.append(
                FaultSpec(kind="throttle", at=at, datanode=name, rate_mbps=rate)
            )
            faults.append(
                FaultSpec(kind="unthrottle", at=at + duration, datanode=name)
            )
        else:
            faults.append(FaultSpec(kind="kill", at=at, datanode=name))
            faults.append(
                FaultSpec(kind="revive", at=at + duration, datanode=name)
            )
    return tuple(sorted(faults, key=lambda f: (f.at, f.kind, f.datanode or "")))


class IngestService:
    """One long-running multi-tenant ingest run over a single deployment."""

    def __init__(self, spec: ServiceSpec, _restore: Optional[dict] = None):
        self.spec = spec
        self.env = (
            ShardedEnvironment(shards=spec.shards)
            if spec.shards > 1
            else Environment()
        )
        config = SimulationConfig(seed=spec.seed).with_hdfs(
            block_size=spec.block_size,
            packet_size=spec.packet_size,
            heartbeat_interval=spec.heartbeat_interval,
            dead_node_heartbeats=spec.dead_node_heartbeats,
        )
        # All infrastructure starts *stopped*: both the fresh and the
        # resumed path go through _start_infra, so they create events in
        # the same order from the same clock state.
        with self._pin(0):
            self.cluster = build_homogeneous(
                self.env,
                "small",
                n_datanodes=spec.n_datanodes,
                config=config,
                n_extra_clients=spec.n_client_hosts - 1,
            )
            deployment_cls = (
                SmarthDeployment if spec.protocol == "smarth" else HdfsDeployment
            )
            self.deployment = deployment_cls(self.cluster, start_services=False)
        self.injector = FaultInjector(self.deployment)
        self._faults = tuple(
            sorted(spec.faults, key=lambda f: (f.at, f.kind, f.datanode or ""))
        )
        self._fault_index = 0
        self.metrics = MetricsRegistry(enabled=True)
        self.arrivals = MergedArrivals(spec.classes, spec.seed)
        self.admission = AdmissionController(spec.max_inflight, spec.queue_limit)
        self._hosts = [self.cluster.client_host] + self.cluster.extra_client_hosts
        self._inflight: dict[int, object] = {}
        self._next_upload = 0
        self._segment_index = 0
        self.checkpoints_written = 0
        if _restore is not None:
            self._restore_state(_restore)

    # -- construction helpers ----------------------------------------------
    @property
    def journal(self):
        return self.deployment.journal

    def _pin(self, shard: int):
        """Pin event creation to a shard (no-op on a plain Environment)."""
        pinned = getattr(self.env, "pinned", None)
        if pinned is None:
            return nullcontext()
        return pinned(shard % self.spec.shards)

    @classmethod
    def resume(cls, snapshot_path) -> "IngestService":
        """Rebuild a service mid-run from a snapshot file."""
        state = load_snapshot(snapshot_path)
        return cls(state["spec"], _restore=state)

    # -- main loop ----------------------------------------------------------
    def _boundaries(self) -> list[float]:
        spec = self.spec
        bounds = []
        k = 1
        while k * spec.checkpoint_every < spec.horizon - 1e-9:
            bounds.append(k * spec.checkpoint_every)
            k += 1
        bounds.append(spec.horizon)
        return bounds

    def run(self, checkpoint_dir=None, progress=None) -> "ServiceReport":
        """Run (or continue) to the horizon; returns the final report.

        ``checkpoint_dir`` writes ``ckpt_NNN.pkl`` after each interior
        barrier; ``progress`` (a callable taking one string) receives a
        line per segment.
        """
        boundaries = self._boundaries()
        while self._segment_index < len(boundaries):
            t_end = boundaries[self._segment_index]
            self._run_segment(t_end)
            self._segment_index += 1
            self.journal.emit(
                self.env.now,
                "service_barrier",
                "service",
                segment=self._segment_index,
                t_end=t_end,
                arrivals=self.admission.arrivals,
                rejected=self.admission.rejected,
            )
            if progress is not None:
                progress(
                    f"segment {self._segment_index}/{len(boundaries)} "
                    f"t={self.env.now:.1f}s arrivals={self.admission.arrivals} "
                    f"rejected={self.admission.rejected}"
                )
            if checkpoint_dir is not None and self._segment_index < len(boundaries):
                path = Path(checkpoint_dir) / f"ckpt_{self._segment_index:03d}.pkl"
                save_snapshot(path, self._export_state())
                self.checkpoints_written += 1
        return self.report()

    def _run_segment(self, t_end: float) -> None:
        with self._pin(0):
            self._start_infra()
            self._apply_faults(t_end)
            driver = self.env.process(
                self._drive(t_end), name=f"service:seg{self._segment_index}"
            )
        self.env.run(until=driver)
        self._quiesce()

    def _start_infra(self) -> None:
        """(Re)start the perpetual loops in canonical order."""
        for name in sorted(self.deployment.datanodes):
            datanode = self.deployment.datanodes[name]
            if datanode.node.alive:
                datanode.register_heartbeats_again()
        self.deployment.namenode.start_monitor()
        self.deployment.replication_monitor.start()

    def _apply_faults(self, t_end: float) -> None:
        """Arm every not-yet-applied fault due before ``t_end``."""
        while (
            self._fault_index < len(self._faults)
            and self._faults[self._fault_index].at < t_end
        ):
            self._faults[self._fault_index].apply(self.injector)
            self._fault_index += 1

    def _drive(self, t_end: float) -> ProcessGenerator:
        """Admit arrivals until ``t_end``, then drain to quiescence."""
        env = self.env
        while self.arrivals.peek() < t_end:
            arrival = self.arrivals.pop()
            if arrival.at > env.now:
                yield env.timeout_at(arrival.at)
            decision = self.admission.on_arrival(arrival)
            if decision == ADMIT:
                self._launch(arrival)
            elif decision == QUEUE:
                self.journal.emit(
                    env.now,
                    "service_enqueue",
                    arrival.tenant,
                    cls=arrival.cls,
                    seq=arrival.seq,
                    depth=len(self.admission.queue),
                )
            else:
                self.journal.emit(
                    env.now,
                    "service_reject",
                    arrival.tenant,
                    cls=arrival.cls,
                    seq=arrival.seq,
                )
                self.metrics.count(
                    self._labelled_rejected(arrival.cls)
                )
        # Barrier drain: completions keep dequeuing the backlog, so
        # waiting out the in-flight set empties the queue too.
        while self._inflight:
            yield self._inflight[min(self._inflight)]

    @staticmethod
    def _labelled_rejected(cls_name: str) -> str:
        from ..obs import labelled

        return labelled("service.rejected", cls=cls_name)

    def _launch(self, arrival: Arrival, dequeued: bool = False) -> None:
        env = self.env
        self.journal.emit(
            env.now,
            "service_dequeue" if dequeued else "service_admit",
            arrival.tenant,
            cls=arrival.cls,
            seq=arrival.seq,
        )
        uid = self._next_upload
        self._next_upload += 1
        with self._pin(arrival.tenant_index):
            proc = env.process(
                self._upload(uid, arrival),
                name=f"svc:{arrival.tenant}:{arrival.seq}",
            )
        self._inflight[uid] = proc

    def _upload(self, uid: int, arrival: Arrival) -> ProcessGenerator:
        env = self.env
        host = self._hosts[arrival.tenant_index % len(self._hosts)]
        client = self.deployment.client(host=host, name=arrival.tenant)
        path = f"/svc/{arrival.cls}/{arrival.tenant}/{arrival.seq}"
        ok = False
        try:
            yield env.process(
                client.put(path, arrival.size),
                name=f"put:{arrival.tenant}:{arrival.seq}",
            )
            latency = env.now - arrival.at
            self._record_latency(arrival, latency)
            self.journal.emit(
                env.now,
                "service_complete",
                arrival.tenant,
                cls=arrival.cls,
                seq=arrival.seq,
                latency=latency,
            )
            ok = True
        except Exception as err:
            self.journal.emit(
                env.now,
                "service_fail",
                arrival.tenant,
                cls=arrival.cls,
                seq=arrival.seq,
                error=type(err).__name__,
            )
        finally:
            # A failed put() leaves the SMARTH speed reporter running;
            # stop it or the barrier can never drain.
            stop_reporter = getattr(client, "stop_reporter", None)
            if stop_reporter is not None:
                stop_reporter()
            del self._inflight[uid]
            backlogged = self.admission.on_done(ok)
            if backlogged is not None:
                self._launch(backlogged, dequeued=True)

    def _record_latency(self, arrival: Arrival, latency: float) -> None:
        spec = self.spec.classes[arrival.cls_index]
        self.metrics.observe(class_latency(arrival.cls), latency)
        self.metrics.observe(
            tenant_latency(arrival.cls, arrival.tenant), latency
        )
        self.metrics.observe(
            window_bucket(
                class_latency(arrival.cls), self.env.now, self.spec.slo_window
            ),
            latency,
        )
        if latency > spec.slo:
            self.metrics.count(class_violations(arrival.cls))

    def _quiesce(self) -> None:
        """Stop the loops, run the schedule dry, verify quiescence."""
        with self._pin(0):
            for name in sorted(self.deployment.datanodes):
                self.deployment.datanodes[name].stop_heartbeats()
            self.deployment.namenode.stop_monitor()
            self.deployment.replication_monitor.stop()
        self.env.run(until=None)
        pending = len(self.env)
        if pending:
            raise SnapshotError(
                f"schedule not quiescent at barrier: {pending} events pending"
            )
        self.admission.check_drained()
        monitor = self.deployment.replication_monitor
        if monitor._in_flight:
            raise SnapshotError(
                "replication tasks still in flight at barrier"
            )

    # -- snapshot protocol ---------------------------------------------------
    def _export_state(self) -> dict:
        deployment = self.deployment
        namenode = deployment.namenode
        monitor = deployment.replication_monitor
        return {
            "spec": self.spec,
            "segment_index": self._segment_index,
            "fault_index": self._fault_index,
            "next_upload": self._next_upload,
            "clock": self.env.clock_state(),
            "journal": list(self.journal.events()),
            "scheduled_disturbances": list(deployment.scheduled_disturbances),
            "namespace": namenode.namespace.export_state(),
            "blocks": namenode.blocks.export_state(),
            "datanodes": namenode.datanodes.export_state(),
            "speeds": namenode.speeds.export_state(),
            "namenode_rng": namenode.rng.getstate(),
            "placement_rng": namenode.placement.rng.getstate(),
            "replication": {
                "rng": monitor.rng.getstate(),
                "completed": list(monitor.completed),
                "streams": dict(monitor._streams),
            },
            "nodes": {
                node.name: {
                    "alive": node.alive,
                    "bytes_sent": node.nic.bytes_sent,
                    "bytes_received": node.nic.bytes_received,
                }
                for node in self.cluster.all_hosts
            },
            "throttles": tuple(deployment.network.throttles.rules),
            "injector_events": list(self.injector.events),
            "metrics": self.metrics.export_state(),
            "admission": self.admission.export_state(),
            "arrivals": self.arrivals.export_state(),
        }

    def _restore_state(self, state: dict) -> None:
        spec = state["spec"]
        if spec != self.spec:
            raise SnapshotError("snapshot spec does not match this service")
        deployment = self.deployment
        namenode = deployment.namenode
        monitor = deployment.replication_monitor
        self._segment_index = int(state["segment_index"])
        self._fault_index = int(state["fault_index"])
        self._next_upload = int(state["next_upload"])
        self.journal.restore_events(state["journal"])
        deployment.scheduled_disturbances[:] = state["scheduled_disturbances"]
        namenode.namespace.restore_state(state["namespace"])
        namenode.blocks.restore_state(state["blocks"])
        namenode.datanodes.restore_state(state["datanodes"])
        namenode.speeds.restore_state(state["speeds"])
        namenode.rng.setstate(state["namenode_rng"])
        namenode.placement.rng.setstate(state["placement_rng"])
        monitor.rng.setstate(state["replication"]["rng"])
        monitor.completed = list(state["replication"]["completed"])
        monitor._streams = dict(state["replication"]["streams"])
        for name in sorted(state["nodes"]):
            sub = state["nodes"][name]
            node = self.cluster.host(name)
            node.alive = bool(sub["alive"])
            node.nic.bytes_sent = int(sub["bytes_sent"])
            node.nic.bytes_received = int(sub["bytes_received"])
        deployment.network.throttles.replace_rules(state["throttles"])
        self.injector.events = list(state["injector_events"])
        self.metrics.restore_state(state["metrics"])
        self.admission.restore_state(state["admission"])
        self.arrivals.restore_state(state["arrivals"])
        self.env.restore_clock(state["clock"])

    # -- reporting -----------------------------------------------------------
    def report(self) -> ServiceReport:
        admission = self.admission
        spec = self.spec
        journal_lines = [
            json.dumps(
                {
                    "time": event.time,
                    "kind": event.kind,
                    "subject": event.subject,
                    "details": event.details,
                },
                sort_keys=True,
            )
            for event in self.journal.events()
        ]
        journal_text = "\n".join(journal_lines) + "\n"
        metrics_text = metrics_summary(self.metrics)
        slo_text = slo_table(self.metrics, spec.classes)

        classes = {}
        for cls_spec in spec.classes:
            hist = self.metrics.histogram(class_latency(cls_spec.name))
            classes[cls_spec.name] = {
                "tenants": cls_spec.tenants,
                "completed": hist.count,
                "rejected": int(
                    self.metrics.counter_value(
                        self._labelled_rejected(cls_spec.name)
                    )
                ),
                "violations": int(
                    self.metrics.counter_value(class_violations(cls_spec.name))
                ),
                "p50": hist.percentile(50),
                "p95": hist.percentile(95),
                "p99": hist.percentile(99),
                "slo": cls_spec.slo,
            }

        counts = {
            "arrivals": admission.arrivals,
            "admitted": admission.admitted,
            "enqueued": admission.enqueued,
            "dequeued": admission.dequeued,
            "rejected": admission.rejected,
            "completed": admission.completed,
            "failed": admission.failed,
            "max_queue_depth": admission.max_queue_depth,
            "max_inflight": admission.max_inflight_seen,
            "queue_limit": spec.queue_limit,
            "inflight_limit": spec.max_inflight,
            "segments": self._segment_index,
            "faults_applied": self._fault_index,
            "final_time": self.env.now,
            "journal_events": len(self.journal),
            "tenants": spec.total_tenants,
            "conservation_ok": admission.arrivals == admission.settled,
            "queue_bounded": admission.max_queue_depth <= spec.queue_limit,
            "inflight_bounded": admission.max_inflight_seen <= spec.max_inflight,
        }
        return ServiceReport(
            counts=counts,
            classes=classes,
            journal_text=journal_text,
            metrics_text=metrics_text,
            slo_text=slo_text,
        )
