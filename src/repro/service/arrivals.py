"""Open-loop arrival processes for the ingest service.

Each tenant *class* (interactive / batch / bulk, say) aggregates its
tenants into one Poisson arrival stream: with ``tenants`` tenants each
uploading every ``mean_interarrival`` seconds on average, the class-level
rate is ``tenants / mean_interarrival``.  A class may additionally be
*diurnal* — its rate follows ``base * (1 + amplitude * sin(2πt/period))``
and arrivals are drawn by Lewis–Shedler thinning against the peak rate,
which keeps the stream exact (not binned) and still deterministic per
seed.

Streams are resumable: their whole state is the RNG state plus the
precomputed next arrival, so a checkpoint taken between arrivals restores
the identical future sequence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..rng import substream

__all__ = ["TenantClassSpec", "Arrival", "ArrivalStream", "MergedArrivals"]


@dataclass(frozen=True)
class TenantClassSpec:
    """One tenant class: population, traffic shape and SLO target."""

    name: str
    #: Number of tenants in the class.
    tenants: int
    #: Mean seconds between uploads *per tenant*.
    mean_interarrival: float
    #: Upload size in bytes.
    size: int
    #: Latency SLO (seconds, arrival → completion); exceeding it counts
    #: one violation.
    slo: float
    #: Diurnal modulation amplitude in [0, 1): 0 is a flat Poisson
    #: stream, 0.8 swings the rate between 0.2× and 1.8× the base.
    diurnal_amplitude: float = 0.0
    #: Diurnal period in seconds (one simulated day by default).
    diurnal_period: float = 86400.0

    def __post_init__(self) -> None:
        if self.tenants < 1:
            raise ValueError("tenants must be >= 1")
        if self.mean_interarrival <= 0:
            raise ValueError("mean_interarrival must be positive")
        if self.size <= 0:
            raise ValueError("size must be positive")
        if self.slo <= 0:
            raise ValueError("slo must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.diurnal_period <= 0:
            raise ValueError("diurnal_period must be positive")

    @property
    def base_rate(self) -> float:
        """Class-aggregate arrival rate (uploads/second)."""
        return self.tenants / self.mean_interarrival

    @property
    def peak_rate(self) -> float:
        return self.base_rate * (1.0 + self.diurnal_amplitude)

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at simulated time ``t``."""
        if self.diurnal_amplitude == 0.0:
            return self.base_rate
        phase = 2.0 * math.pi * t / self.diurnal_period
        return self.base_rate * (1.0 + self.diurnal_amplitude * math.sin(phase))


@dataclass(frozen=True)
class Arrival:
    """One upload request entering the service."""

    at: float
    cls: str
    cls_index: int
    #: Global tenant index (stable across classes; routes host + shard).
    tenant_index: int
    #: Tenant id, e.g. ``interactive-0007``.
    tenant: str
    size: int
    #: Per-tenant upload sequence number (unique path per upload).
    seq: int


class ArrivalStream:
    """Resumable thinned-Poisson arrival stream for one tenant class."""

    def __init__(self, spec: TenantClassSpec, cls_index: int, seed: int,
                 tenant_base: int):
        self.spec = spec
        self.cls_index = cls_index
        #: First global tenant index of this class.
        self.tenant_base = tenant_base
        self.rng = substream(seed, "arrivals", spec.name)
        self.count = 0
        #: Precomputed time of the next arrival (eager, so stream state
        #: is always "RNG + next_at" and never mid-draw at a snapshot).
        self.next_at = self._draw(0.0)

    # ------------------------------------------------------------------
    def _draw(self, after: float) -> float:
        """Next arrival strictly after ``after`` (Lewis–Shedler thinning)."""
        spec = self.spec
        peak = spec.peak_rate
        t = after
        while True:
            t += self.rng.expovariate(peak)
            if spec.diurnal_amplitude == 0.0:
                return t
            if self.rng.random() * peak <= spec.rate_at(t):
                return t

    def pop(self, seq_of) -> Arrival:
        """Consume the next arrival; ``seq_of(tenant)`` assigns its seq."""
        at = self.next_at
        tenant_offset = self.rng.randrange(self.spec.tenants)
        tenant = f"{self.spec.name}-{tenant_offset:04d}"
        arrival = Arrival(
            at=at,
            cls=self.spec.name,
            cls_index=self.cls_index,
            tenant_index=self.tenant_base + tenant_offset,
            tenant=tenant,
            size=self.spec.size,
            seq=seq_of(tenant),
        )
        self.count += 1
        self.next_at = self._draw(at)
        return arrival

    # -- snapshot protocol -------------------------------------------------
    def export_state(self) -> dict:
        return {
            "rng": self.rng.getstate(),
            "next_at": self.next_at,
            "count": self.count,
        }

    def restore_state(self, state: dict) -> None:
        self.rng.setstate(state["rng"])
        self.next_at = float(state["next_at"])
        self.count = int(state["count"])


class MergedArrivals:
    """Deterministic merge of the per-class streams by (time, class)."""

    def __init__(self, classes, seed: int):
        self.streams: list[ArrivalStream] = []
        base = 0
        for i, spec in enumerate(classes):
            self.streams.append(ArrivalStream(spec, i, seed, base))
            base += spec.tenants
        #: Per-tenant upload sequence counters (unique upload paths).
        self._seq: dict[str, int] = {}

    def _seq_of(self, tenant: str) -> int:
        seq = self._seq.get(tenant, 0)
        self._seq[tenant] = seq + 1
        return seq

    def peek(self) -> float:
        """Time of the earliest pending arrival."""
        return min(s.next_at for s in self.streams)

    def pop(self) -> Arrival:
        """Consume the earliest pending arrival (class index breaks ties)."""
        best = min(self.streams, key=lambda s: (s.next_at, s.cls_index))
        return best.pop(self._seq_of)

    @property
    def total(self) -> int:
        return sum(s.count for s in self.streams)

    # -- snapshot protocol -------------------------------------------------
    def export_state(self) -> dict:
        return {
            "streams": [s.export_state() for s in self.streams],
            "seq": dict(self._seq),
        }

    def restore_state(self, state: dict) -> None:
        if len(state["streams"]) != len(self.streams):
            raise ValueError(
                "snapshot has a different number of tenant classes"
            )
        for stream, sub in zip(self.streams, state["streams"]):
            stream.restore_state(sub)
        self._seq = dict(state["seq"])
