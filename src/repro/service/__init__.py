"""repro.service — continuous-ingestion multi-tenant service.

A long-running, open-loop ingest workload on top of the SMARTH/HDFS
simulator: tenant classes generate Poisson (optionally diurnal) upload
arrivals, an admission controller bounds concurrency and queue depth
(overflow is *rejected* and journaled), per-tenant latency lands in
:mod:`repro.obs` histograms, and the whole simulation can be
checkpointed at quiescent barriers and resumed byte-identically
(``python -m repro serve``).
"""

from .admission import AdmissionController
from .arrivals import Arrival, ArrivalStream, MergedArrivals, TenantClassSpec
from .service import (
    IngestService,
    ServiceReport,
    ServiceSpec,
    generate_service_faults,
)
from .slo import slo_table
from .snapshot import SNAPSHOT_FORMAT, SNAPSHOT_VERSION, load_snapshot, save_snapshot

__all__ = [
    "TenantClassSpec",
    "Arrival",
    "ArrivalStream",
    "MergedArrivals",
    "AdmissionController",
    "ServiceSpec",
    "IngestService",
    "ServiceReport",
    "generate_service_faults",
    "slo_table",
    "save_snapshot",
    "load_snapshot",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
]
