"""Scheduled fault injection for upload experiments.

Supports killing a named datanode at a fixed simulated time, killing
"whichever datanode is busy" (useful because placement is randomized), and
reviving nodes later.  All injections are plain simulation processes, so
they compose with any workload.  ``at`` is an *absolute* simulated time:
an injector created mid-run (e.g. by the ingest service at a segment
boundary) fires the fault at ``at`` on the shared clock, and a fault whose
time has already passed fires immediately.

Interplay with the analytic channel model: NIC/disk occupancy is a
``busy_until`` quote committed when a transfer starts
(:class:`repro.sim.Channel`), so a throttle injected mid-run changes the
rate seen by transfers that *start* after it — in-flight quotes are
immutable by default, matching the historical semantics.  Deployments
that opt into ``NetworkConfig.requote_in_flight`` hold preemptible
reservations instead; the throttle-table change then triggers
:meth:`Channel.preempt`, which re-quotes the in-flight reservations
(bytes already clocked out stay at the old rate, the remainder moves to
the new one).  Datanode kills are unaffected either way: a kill
interrupts the receiver processes, and any quote already committed just
leaves the channel busy for the doomed transfer's duration — exactly the
wire time the bytes actually occupied before the socket reset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..hdfs.deployment import HdfsDeployment
from ..sim import Environment, ProcessGenerator

__all__ = ["FaultEvent", "FaultInjector"]


@dataclass(frozen=True)
class FaultEvent:
    """Record of one executed injection."""

    at: float
    kind: str
    datanode: Optional[str]


@dataclass
class FaultInjector:
    """Schedules datanode faults against a deployment."""

    deployment: HdfsDeployment
    events: list[FaultEvent] = field(default_factory=list)

    @property
    def env(self) -> Environment:
        return self.deployment.env

    def _register_disturbance(self, at: float) -> None:
        """Record a scheduled disturbance time on the deployment.

        The packet-train fast path declines to coalesce any window that
        contains a scheduled kill/throttle, so registering up front keeps
        the coalesced and per-packet timelines bit-identical.
        """
        self.deployment.scheduled_disturbances.append(at)

    # -- injection schedules -------------------------------------------------
    def kill_at(self, name: str, at: float) -> None:
        """Crash datanode ``name`` at simulated time ``at``."""
        self.deployment.datanode(name)  # validate early
        self._register_disturbance(at)

        def proc(env: Environment) -> ProcessGenerator:
            yield env.timeout(max(0.0, at - env.now))
            datanode = self.deployment.datanode(name)
            if datanode.node.alive:
                datanode.kill()
                self.events.append(FaultEvent(env.now, "kill", name))

        self.env.process(proc(self.env), name=f"fault:kill:{name}")

    def kill_busy_at(
        self,
        at: float,
        pick: int = 0,
        predicate: Optional[Callable[[str], bool]] = None,
    ) -> None:
        """Crash the ``pick``-th datanode with active receivers at ``at``.

        Placement is randomized, so experiments usually want "a node that
        is actually mid-pipeline" rather than a fixed name.  ``predicate``
        further filters candidates by name.
        """
        self._register_disturbance(at)

        def proc(env: Environment) -> ProcessGenerator:
            yield env.timeout(max(0.0, at - env.now))
            busy = [
                d
                for d in self.deployment.datanodes.values()
                if d.active_receivers > 0
                and d.node.alive
                and (predicate is None or predicate(d.name))
            ]
            if busy:
                victim = busy[min(pick, len(busy) - 1)]
                victim.kill()
                self.events.append(FaultEvent(env.now, "kill_busy", victim.name))
            else:
                self.events.append(FaultEvent(env.now, "kill_busy_noop", None))

        self.env.process(proc(self.env), name="fault:kill_busy")

    def throttle_at(self, name: str, rate_mbps: float, at: float) -> None:
        """Degrade one datanode's bandwidth at time ``at`` (§III-C's
        'network status varies all the time').

        Effective rates are evaluated per transfer, so by default
        in-flight packets finish at the old rate and everything after
        sees the new one — like a tenant suddenly saturating the NIC.
        With ``NetworkConfig.requote_in_flight`` the rule change also
        re-quotes in-flight channel reservations (tc re-clocks queued
        frames of the shaped class).
        """
        from ..net.throttle import NodeThrottle
        from ..units import mbps

        self.deployment.datanode(name)  # validate early
        self._register_disturbance(at)

        def proc(env: Environment) -> ProcessGenerator:
            yield env.timeout(max(0.0, at - env.now))
            self.deployment.network.throttles.add(
                NodeThrottle(name, mbps(rate_mbps))
            )
            self.events.append(FaultEvent(env.now, "throttle", name))

        self.env.process(proc(self.env), name=f"fault:throttle:{name}")

    def unthrottle_at(self, name: str, at: float) -> None:
        """Remove every dynamic throttle on ``name`` at time ``at``."""
        from ..net.throttle import NodeThrottle

        self.deployment.datanode(name)  # validate early
        self._register_disturbance(at)

        def proc(env: Environment) -> ProcessGenerator:
            yield env.timeout(max(0.0, at - env.now))
            removed = self.deployment.network.throttles.remove_matching(
                lambda r: isinstance(r, NodeThrottle) and r.node_name == name
            )
            if removed:
                self.events.append(FaultEvent(env.now, "unthrottle", name))

        self.env.process(proc(self.env), name=f"fault:unthrottle:{name}")

    def revive_at(self, name: str, at: float) -> None:
        """Bring a crashed datanode's machine back at ``at``.

        The datanode rejoins on its next heartbeat (namenode-side liveness
        is heartbeat-driven); in-flight pipelines it belonged to are not
        resurrected — matching a real restart.
        """
        self.deployment.datanode(name)  # validate early

        def proc(env: Environment) -> ProcessGenerator:
            yield env.timeout(max(0.0, at - env.now))
            datanode = self.deployment.datanode(name)
            if not datanode.node.alive:
                datanode.node.recover()
                datanode.register_heartbeats_again()
                self.events.append(FaultEvent(env.now, "revive", name))

        self.env.process(proc(self.env), name=f"fault:revive:{name}")

    # -- queries ------------------------------------------------------------
    def killed(self) -> tuple[str, ...]:
        """Names of datanodes actually crashed, in order."""
        return tuple(
            e.datanode
            for e in self.events
            if e.kind.startswith("kill") and e.datanode
        )
