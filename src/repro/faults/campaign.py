"""Deterministic chaos campaigns for the multi-pipeline write path.

A *campaign* is a seed-driven batch of randomized fault schedules —
datanode kills, kill-the-busy-node, bandwidth throttles, revives and
compound sequences of those — each executed against both the baseline
HDFS client and the SMARTH client while an
:class:`~repro.faults.invariants.InvariantMonitor` checks durability
invariants live and after the run settles.

Everything derives from ``random.Random(seed)`` and simulated time, so
the JSON report (rendered with sorted keys) is byte-identical across
repeated runs of the same seed — the property the CLI's ``chaos``
subcommand and the fixed-seed pytest campaign assert.  Every run also
carries a self-contained repro command: run ``--seed <subseed> --runs 1``
to regenerate exactly that schedule, because run *i* of a campaign uses
sub-seed ``seed + i``.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass
from typing import Optional

from ..config import SimulationConfig
from ..hdfs.client.recovery import RecoveryFailed
from ..hdfs.deployment import HdfsDeployment
from ..sim import Event
from ..smarth.deployment import SmarthDeployment
from ..units import KB, MB
from ..workloads.scenarios import Scenario, two_rack
from .injector import FaultInjector
from .invariants import (
    INVARIANT_NAMES,
    READ_INVARIANT_NAMES,
    InvariantMonitor,
)

__all__ = [
    "FaultSpec",
    "ChaosSchedule",
    "generate_schedule",
    "generate_read_schedule",
    "run_schedule",
    "run_read_schedule",
    "run_campaign",
    "run_read_campaign",
    "report_json",
]

#: Chaos runs use small blocks so every upload spans multiple blocks
#: (and SMARTH multiple pipelines) while staying fast to simulate.
CHAOS_BLOCK_SIZE = 2 * MB
CHAOS_PACKET_SIZE = 64 * KB
#: Simulated-time budget per run; a workload still unfinished by then is
#: classified as a hang (real uploads finish in a few simulated seconds).
RUN_DEADLINE = 600.0
#: Extra settle margin beyond the namenode's dead-node declaration delay,
#: covering replication-monitor scan ticks plus the re-copy itself.
SETTLE_MARGIN = 10.0

_PROTOCOLS = ("hdfs", "smarth")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault, serializable and self-applying."""

    kind: str  # kill | kill_busy | throttle | unthrottle | revive
    at: float
    datanode: Optional[str] = None
    rate_mbps: Optional[float] = None
    pick: int = 0

    def apply(self, injector: FaultInjector) -> None:
        if self.kind == "kill":
            injector.kill_at(self.datanode, at=self.at)
        elif self.kind == "kill_busy":
            injector.kill_busy_at(at=self.at, pick=self.pick)
        elif self.kind == "throttle":
            injector.throttle_at(self.datanode, self.rate_mbps, at=self.at)
        elif self.kind == "unthrottle":
            injector.unthrottle_at(self.datanode, at=self.at)
        elif self.kind == "revive":
            injector.revive_at(self.datanode, at=self.at)
        else:
            raise ValueError(f"unknown fault kind {self.kind!r}")

    def to_dict(self) -> dict:
        spec: dict = {"kind": self.kind, "at": self.at}
        if self.datanode is not None:
            spec["datanode"] = self.datanode
        if self.rate_mbps is not None:
            spec["rate_mbps"] = self.rate_mbps
        if self.kind == "kill_busy":
            spec["pick"] = self.pick
        return spec


@dataclass(frozen=True)
class ChaosSchedule:
    """One run's randomized-but-reproducible fault plan."""

    seed: int
    n_datanodes: int
    boundary_throttle_mbps: Optional[float]
    size: int
    faults: tuple[FaultSpec, ...]

    def scenario(self) -> Scenario:
        return two_rack(
            "small",
            n_datanodes=self.n_datanodes,
            throttle_mbps=self.boundary_throttle_mbps,
        )

    def config(self) -> SimulationConfig:
        return SimulationConfig(seed=self.seed).with_hdfs(
            block_size=CHAOS_BLOCK_SIZE, packet_size=CHAOS_PACKET_SIZE
        )

    def apply(self, injector: FaultInjector) -> None:
        for fault in self.faults:
            fault.apply(injector)

    @property
    def last_fault_at(self) -> float:
        return max((f.at for f in self.faults), default=0.0)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "n_datanodes": self.n_datanodes,
            "boundary_throttle_mbps": self.boundary_throttle_mbps,
            "size": self.size,
            "faults": [f.to_dict() for f in self.faults],
        }


def generate_schedule(seed: int, scale: float = 1.0) -> ChaosSchedule:
    """Derive one fault schedule entirely from ``random.Random(seed)``.

    Kills are budgeted to ``replication - 1`` per schedule so that every
    block keeps a recovery path (the paper's fault model: fewer
    simultaneous failures than replicas); once the budget is spent,
    further draws degrade to throttles.  Kill faults may spawn a
    compound revive; throttles may spawn a compound unthrottle.
    """
    rng = random.Random(seed)
    replication = SimulationConfig().hdfs.replication

    n_datanodes = rng.randint(5, 9)
    names = [f"dn{i}" for i in range(n_datanodes)]
    boundary = rng.choice((None, None, 50.0, 100.0))
    size_mb = rng.choice((6, 8, 10, 12, 16))
    size = max(int(size_mb * MB * scale), 2 * CHAOS_BLOCK_SIZE)

    faults: list[FaultSpec] = []
    kill_budget = replication - 1
    for _ in range(rng.randint(1, 3)):
        at = round(rng.uniform(0.05, 2.5), 3)
        kind = rng.choice(("kill", "kill_busy", "throttle", "throttle"))
        if kind in ("kill", "kill_busy") and kill_budget <= 0:
            kind = "throttle"
        if kind == "kill":
            kill_budget -= 1
            name = names[rng.randrange(n_datanodes)]
            faults.append(FaultSpec("kill", at, datanode=name))
            if rng.random() < 0.5:  # compound: crash, then restart
                faults.append(
                    FaultSpec(
                        "revive",
                        round(at + rng.uniform(3.0, 8.0), 3),
                        datanode=name,
                    )
                )
        elif kind == "kill_busy":
            kill_budget -= 1
            faults.append(FaultSpec("kill_busy", at, pick=rng.randrange(3)))
        else:
            name = names[rng.randrange(n_datanodes)]
            rate = rng.choice((25.0, 50.0, 100.0))
            faults.append(
                FaultSpec("throttle", at, datanode=name, rate_mbps=rate)
            )
            if rng.random() < 0.6:  # compound: transient slowdown
                faults.append(
                    FaultSpec(
                        "unthrottle",
                        round(at + rng.uniform(0.3, 1.5), 3),
                        datanode=name,
                    )
                )

    faults.sort(key=lambda f: (f.at, f.kind, f.datanode or ""))
    return ChaosSchedule(
        seed=seed,
        n_datanodes=n_datanodes,
        boundary_throttle_mbps=boundary,
        size=size,
        faults=tuple(faults),
    )


def _defuse_failure(event: Event) -> None:
    """Keep a failed upload process from aborting ``env.run`` — the
    campaign classifies the failure instead."""
    if not event.ok:
        event.defuse()


def run_schedule(
    schedule: ChaosSchedule,
    protocol: str,
    trace_path: Optional[str] = None,
    policy: Optional[str] = None,
) -> dict:
    """Execute one schedule under one protocol; returns the run verdict.

    ``trace_path`` opts the run into span tracing (repro.obs) and writes
    the Chrome ``trace_event`` JSON there after the run settles.  The
    tracer is a passive observer: the verdict is byte-identical with or
    without it.  ``policy`` selects a registered deployment policy by
    name (``None`` keeps the ambient default).
    """
    if protocol not in _PROTOCOLS:
        raise ValueError(f"unknown protocol {protocol!r}; expected hdfs|smarth")

    config = schedule.config()
    env, cluster = schedule.scenario().make(config)
    observe = trace_path is not None
    deployment = (
        SmarthDeployment(cluster, observe=observe, policy=policy)
        if protocol == "smarth"
        else HdfsDeployment(cluster, observe=observe, policy=policy)
    )
    monitor = InvariantMonitor(deployment)
    injector = FaultInjector(deployment)
    schedule.apply(injector)

    client = deployment.client()
    path = "/chaos/upload.bin"
    proc = env.process(
        client.put(path, schedule.size), name=f"chaos:{protocol}"
    )
    proc.callbacks.append(_defuse_failure)

    result = None
    error: Optional[str] = None
    try:
        env.run(until=RUN_DEADLINE)
    except Exception as exc:  # a non-client process crashed
        outcome, error = "crash", repr(exc)
    else:
        if not proc.triggered:
            outcome, error = "hang", f"upload still running at t={env.now:g}"
        elif proc.ok:
            outcome, result = "completed", proc.value
        elif isinstance(proc.value, RecoveryFailed):
            outcome, error = "recovery_failed", str(proc.value)
        else:
            outcome, error = "crash", repr(proc.value)

    if outcome == "completed":
        # Let the replication monitor declare dead nodes and heal
        # under-replication before the convergence check.
        hdfs_cfg = config.hdfs
        dead_after = hdfs_cfg.heartbeat_interval * hdfs_cfg.dead_node_heartbeats
        settle_until = (
            max(env.now, schedule.last_fault_at) + dead_after + SETTLE_MARGIN
        )
        try:
            env.run(until=settle_until)
        except Exception as exc:
            outcome, error = "crash", repr(exc)

    monitor.stop()
    monitor.finalize(outcome, result)

    if trace_path is not None:
        from ..obs import chrome_trace_json

        with open(trace_path, "w", encoding="utf-8") as handle:
            handle.write(
                chrome_trace_json(
                    deployment.tracer,
                    label=f"chaos seed={schedule.seed} {protocol}",
                )
            )

    verdict = {
        "protocol": protocol,
        "outcome": outcome,
        "ok": monitor.all_ok,
        "invariants": monitor.to_dict(),
        "violations": monitor.violations(),
        "injected": [
            {"at": e.at, "kind": e.kind, "datanode": e.datanode}
            for e in injector.events
        ],
        "recoveries": result.recoveries if result is not None else None,
        "duration": result.duration if result is not None else None,
    }
    if error is not None:
        verdict["error"] = error
    return verdict


def run_campaign(
    seed: int,
    runs: int,
    protocols: tuple[str, ...] = _PROTOCOLS,
    scale: float = 1.0,
    trace_dir: Optional[str] = None,
    policy: Optional[str] = None,
) -> dict:
    """Run ``runs`` schedules (sub-seeds ``seed+i``) under each protocol.

    Returns the machine-readable campaign report: per-run schedules and
    verdicts, per-invariant check/violation totals, and a ready-to-paste
    repro command for every non-green run.  ``trace_dir`` additionally
    writes one Chrome trace per (run, protocol) as
    ``run<index>-<protocol>.json``.  ``policy`` runs every schedule
    under a registered deployment policy; the report then carries a
    ``policy`` key (omitted when ``None``, keeping historical reports
    byte-identical).
    """
    for protocol in protocols:
        if protocol not in _PROTOCOLS:
            raise ValueError(f"unknown protocol {protocol!r}")
    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)

    totals = {name: {"checks": 0, "violations": 0} for name in INVARIANT_NAMES}
    fault_kinds: dict[str, int] = {}
    outcomes: dict[str, int] = {}
    report_runs = []
    all_green = True

    for index in range(runs):
        subseed = seed + index
        schedule = generate_schedule(subseed, scale=scale)
        for fault in schedule.faults:
            fault_kinds[fault.kind] = fault_kinds.get(fault.kind, 0) + 1

        verdicts = []
        for protocol in protocols:
            trace_path = (
                f"{trace_dir}/run{index:03d}-{protocol}.json"
                if trace_dir is not None
                else None
            )
            verdict = run_schedule(
                schedule, protocol, trace_path=trace_path, policy=policy
            )
            verdicts.append(verdict)
            outcomes[verdict["outcome"]] = (
                outcomes.get(verdict["outcome"], 0) + 1
            )
            for name, tally in verdict["invariants"].items():
                totals[name]["checks"] += tally["checks"]
                totals[name]["violations"] += len(tally["violations"])
            if not verdict["ok"]:
                all_green = False
                policy_arg = f" --policy {policy}" if policy else ""
                verdict["repro"] = (
                    f"python -m repro chaos --seed {subseed} --runs 1 "
                    f"--protocol {protocol} --scale {scale:g}{policy_arg}"
                )

        report_runs.append(
            {
                "index": index,
                "subseed": subseed,
                "schedule": schedule.to_dict(),
                "verdicts": verdicts,
            }
        )

    report = {
        "seed": seed,
        "runs": runs,
        "protocols": list(protocols),
        "scale": scale,
        "all_green": all_green,
        "outcomes": outcomes,
        "fault_kinds": fault_kinds,
        "invariant_totals": totals,
        "runs_detail": report_runs,
    }
    if policy is not None:
        report["policy"] = policy
    return report


def report_json(report: dict) -> str:
    """Canonical JSON rendering (sorted keys → byte-identical per seed)."""
    return json.dumps(report, indent=2, sort_keys=True)


# ---------------------------------------------------------------------------
# Degraded-read campaigns
# ---------------------------------------------------------------------------

#: Concurrent readers per run; with ``READ_SERVE_STREAMS`` slots per
#: datanode they genuinely queue on hot replicas.
READ_FANOUT = 3
#: Serve-queue capacity for read runs — deliberately below the default so
#: the shared serve queue is exercised, not just modeled.
READ_SERVE_STREAMS = 2


def generate_read_schedule(seed: int, scale: float = 1.0) -> ChaosSchedule:
    """One degraded-read fault plan, derived from ``random.Random(seed)``.

    The schedule's fault times are *offsets from the start of the read
    phase* (the file is ingested undisturbed first); kills are budgeted
    to ``replication - 1`` so every block always keeps a live replica —
    a degraded read must therefore complete, and in full.
    """
    rng = random.Random(seed)
    replication = SimulationConfig().hdfs.replication

    n_datanodes = rng.randint(5, 9)
    names = [f"dn{i}" for i in range(n_datanodes)]
    boundary = rng.choice((None, None, 50.0, 100.0))
    size_mb = rng.choice((6, 8, 10, 12))
    size = max(int(size_mb * MB * scale), 2 * CHAOS_BLOCK_SIZE)

    faults: list[FaultSpec] = []
    kill_budget = replication - 1
    for _ in range(rng.randint(1, 3)):
        # Reads finish in well under a second; land faults mid-stream.
        at = round(rng.uniform(0.01, 0.4), 3)
        kind = rng.choice(("kill", "kill", "throttle"))
        if kind == "kill" and kill_budget <= 0:
            kind = "throttle"
        if kind == "kill":
            kill_budget -= 1
            name = names[rng.randrange(n_datanodes)]
            faults.append(FaultSpec("kill", at, datanode=name))
            if rng.random() < 0.5:  # compound: crash, then restart
                faults.append(
                    FaultSpec(
                        "revive",
                        round(at + rng.uniform(1.0, 4.0), 3),
                        datanode=name,
                    )
                )
        else:
            name = names[rng.randrange(n_datanodes)]
            rate = rng.choice((25.0, 50.0, 100.0))
            faults.append(
                FaultSpec("throttle", at, datanode=name, rate_mbps=rate)
            )
            if rng.random() < 0.6:  # compound: transient slowdown
                faults.append(
                    FaultSpec(
                        "unthrottle",
                        round(at + rng.uniform(0.1, 0.5), 3),
                        datanode=name,
                    )
                )

    faults.sort(key=lambda f: (f.at, f.kind, f.datanode or ""))
    return ChaosSchedule(
        seed=seed,
        n_datanodes=n_datanodes,
        boundary_throttle_mbps=boundary,
        size=size,
        faults=tuple(faults),
    )


def run_read_schedule(
    schedule: ChaosSchedule,
    protocol: str,
    policy: Optional[str] = None,
) -> dict:
    """Ingest undisturbed, then chaos the read phase; returns the verdict.

    ``READ_FANOUT`` concurrent readers fetch the whole file while the
    schedule's kills and throttles (shifted to the read phase) hit
    replica holders underneath them.  The monitor checks the write
    invariants during ingest and ``read_durability`` on every completed
    block read: a degraded read must resume on a surviving replica and
    deliver the block in full, never short data.
    """
    if protocol not in _PROTOCOLS:
        raise ValueError(f"unknown protocol {protocol!r}; expected hdfs|smarth")
    from ..hdfs.client.input_stream import BlockUnavailable, HdfsReader

    config = schedule.config()
    config = config.with_hdfs(serve_streams=READ_SERVE_STREAMS)
    env, cluster = schedule.scenario().make(config)
    deployment = (
        SmarthDeployment(cluster, policy=policy)
        if protocol == "smarth"
        else HdfsDeployment(cluster, policy=policy)
    )
    monitor = InvariantMonitor(
        deployment,
        invariant_names=INVARIANT_NAMES + READ_INVARIANT_NAMES,
    )

    client = deployment.client()
    path = "/chaos/read.bin"
    ingest = env.process(
        client.put(path, schedule.size), name=f"chaos-read:{protocol}:ingest"
    )
    env.run(until=ingest)
    read_phase_start = env.now

    injector = FaultInjector(deployment)
    for fault in schedule.faults:
        FaultSpec(
            fault.kind,
            round(read_phase_start + fault.at, 6),
            datanode=fault.datanode,
            rate_mbps=fault.rate_mbps,
            pick=fault.pick,
        ).apply(injector)

    procs = []
    for i in range(READ_FANOUT):
        reader = HdfsReader(deployment, name=f"chaos-reader{i}")
        proc = env.process(
            _delayed_read(env, reader, path, delay=i * 0.01),
            name=f"chaos-read:{protocol}:r{i}",
        )
        proc.callbacks.append(_defuse_failure)
        procs.append(proc)

    outcome = "completed"
    error: Optional[str] = None
    results = []
    try:
        env.run(until=RUN_DEADLINE)
    except Exception as exc:  # a non-reader process crashed
        outcome, error = "crash", repr(exc)
    else:
        for proc in procs:
            if not proc.triggered:
                outcome = "hang"
                error = f"read still running at t={env.now:g}"
                break
            if not proc.ok:
                outcome = (
                    "read_failed"
                    if isinstance(proc.value, BlockUnavailable)
                    else "crash"
                )
                error = repr(proc.value)
                break
            results.append(proc.value)

    if outcome == "completed":
        # Let the replication monitor declare dead nodes and heal
        # under-replication before the convergence check.
        hdfs_cfg = config.hdfs
        dead_after = hdfs_cfg.heartbeat_interval * hdfs_cfg.dead_node_heartbeats
        last_fault = read_phase_start + schedule.last_fault_at
        settle_until = max(env.now, last_fault) + dead_after + SETTLE_MARGIN
        try:
            env.run(until=settle_until)
        except Exception as exc:
            outcome, error = "crash", repr(exc)

    monitor.stop()
    monitor.finalize(outcome)

    verdict = {
        "protocol": protocol,
        "outcome": outcome,
        "ok": monitor.all_ok,
        "invariants": monitor.to_dict(),
        "violations": monitor.violations(),
        "injected": [
            {"at": e.at, "kind": e.kind, "datanode": e.datanode}
            for e in injector.events
        ],
        "reads": [
            {
                "duration": result.duration,
                "sources": [list(s) for s in result.sources],
            }
            for result in results
        ],
    }
    if error is not None:
        verdict["error"] = error
    return verdict


def _delayed_read(env, reader, path: str, delay: float):
    if delay:
        yield env.timeout(delay)
    result = yield env.process(reader.get(path))
    return result


def run_read_campaign(
    seed: int,
    runs: int,
    protocols: tuple[str, ...] = _PROTOCOLS,
    scale: float = 1.0,
    policy: Optional[str] = None,
) -> dict:
    """Run ``runs`` degraded-read schedules under each protocol.

    Same report shape as :func:`run_campaign`, with invariant totals
    covering the read set too (``read_durability``).
    """
    for protocol in protocols:
        if protocol not in _PROTOCOLS:
            raise ValueError(f"unknown protocol {protocol!r}")

    names = INVARIANT_NAMES + READ_INVARIANT_NAMES
    totals = {name: {"checks": 0, "violations": 0} for name in names}
    fault_kinds: dict[str, int] = {}
    outcomes: dict[str, int] = {}
    report_runs = []
    all_green = True

    for index in range(runs):
        subseed = seed + index
        schedule = generate_read_schedule(subseed, scale=scale)
        for fault in schedule.faults:
            fault_kinds[fault.kind] = fault_kinds.get(fault.kind, 0) + 1

        verdicts = []
        for protocol in protocols:
            verdict = run_read_schedule(schedule, protocol, policy=policy)
            verdicts.append(verdict)
            outcomes[verdict["outcome"]] = (
                outcomes.get(verdict["outcome"], 0) + 1
            )
            for name, tally in verdict["invariants"].items():
                totals[name]["checks"] += tally["checks"]
                totals[name]["violations"] += len(tally["violations"])
            if not verdict["ok"]:
                all_green = False

        report_runs.append(
            {
                "index": index,
                "subseed": subseed,
                "schedule": schedule.to_dict(),
                "verdicts": verdicts,
            }
        )

    report = {
        "seed": seed,
        "runs": runs,
        "protocols": list(protocols),
        "scale": scale,
        "kind": "read",
        "all_green": all_green,
        "outcomes": outcomes,
        "fault_kinds": fault_kinds,
        "invariant_totals": totals,
        "runs_detail": report_runs,
    }
    if policy is not None:
        report["policy"] = policy
    return report
