"""Always-on durability invariants for chaos runs.

The chaos campaign (:mod:`repro.faults.campaign`) does not compare
uploads against golden outputs — under randomized fault schedules there
is no single right answer.  Instead it checks *invariants*: properties
the write path must preserve under any legal schedule of datanode kills,
throttles and revives.  :class:`InvariantMonitor` hooks into a
deployment's :class:`~repro.analysis.trace.Journal` (checking stream
properties live, as events are emitted) and runs a periodic sampler
process (checking state properties such as datanode buffer bounds), then
performs block-level durability checks in :meth:`InvariantMonitor.finalize`
once the run has settled.

The invariant suite (names are stable identifiers used in reports):

``acked_durability``
    Every finalized replica of a completed block holds the full block —
    bytes the client saw acknowledged are never silently truncated.
``committed_replica_liveness``
    Every completed block has at least one finalized replica on a live
    datanode (no acknowledged data lives only on corpses).
``replication_convergence``
    When the run completed and enough datanodes survive, every completed
    block reaches the target replication factor (the replication monitor
    must heal fault-induced under-replication).
``generation_monotone``
    A block's generation stamp never decreases across pipeline opens and
    recoveries (stale-replica invalidation depends on this ordering).
``buffer_bound``
    No datanode buffers more than one block (§IV-C: the first datanode
    buffers at most one full block per client), sampled periodically.
``pipeline_cap``
    A client never has more than ``num_datanodes / replication`` live
    pipelines (Algorithm 1's cap), tracked via pipeline_open /
    pipeline_done journal events.
``recovery_outcome``
    A faulted run either completes or raises ``RecoveryFailed`` — it
    never hangs and never fails some other way.

Read campaigns (:func:`repro.faults.campaign.run_read_campaign`) extend
the monitor with :data:`READ_INVARIANT_NAMES`:

``read_durability``
    Every ``read_complete`` journal event delivered exactly the block's
    size — a degraded read (source killed mid-stream, resumed on another
    replica) never returns short data.

Write-only campaigns keep the historical name set, so their reports stay
byte-identical; pass ``invariant_names=INVARIANT_NAMES +
READ_INVARIANT_NAMES`` to monitor a workload that reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..analysis.trace import TraceEvent
from ..hdfs.deployment import HdfsDeployment
from ..hdfs.protocol import BlockState, WriteResult
from ..sim import Interrupt, ProcessGenerator

__all__ = [
    "InvariantRecord",
    "InvariantMonitor",
    "INVARIANT_NAMES",
    "READ_INVARIANT_NAMES",
]

#: Stable identifiers of every invariant the monitor checks by default
#: (the historical write-path set).
INVARIANT_NAMES: tuple[str, ...] = (
    "acked_durability",
    "committed_replica_liveness",
    "replication_convergence",
    "generation_monotone",
    "buffer_bound",
    "pipeline_cap",
    "recovery_outcome",
)

#: Additional invariants for workloads that read (degraded-read chaos).
READ_INVARIANT_NAMES: tuple[str, ...] = ("read_durability",)


@dataclass
class InvariantRecord:
    """Check/violation tally for one invariant."""

    name: str
    checks: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def check(self, ok: bool, message: str) -> None:
        """Record one evaluation; keep ``message`` when it failed."""
        self.checks += 1
        if not ok:
            self.violations.append(message)

    def to_dict(self) -> dict:
        return {
            "checks": self.checks,
            "violations": list(self.violations),
        }


class InvariantMonitor:
    """Watches one deployment during a chaos run.

    Construction subscribes to the deployment's journal and starts the
    buffer sampler; call :meth:`stop` when the workload is over and
    :meth:`finalize` after the post-run settle period to run the
    block-level durability checks.
    """

    def __init__(
        self,
        deployment: HdfsDeployment,
        sample_interval: float = 0.05,
        buffer_bound_bytes: Optional[int] = None,
        invariant_names: tuple[str, ...] = INVARIANT_NAMES,
    ):
        self.deployment = deployment
        self.env = deployment.env
        hdfs_cfg = deployment.config.hdfs
        self._packet_size = hdfs_cfg.packet_size
        self._replication = hdfs_cfg.replication
        # §IV-C: one full block per client; the baseline client may also
        # be configured with a socket buffer larger than a chaos block.
        self.buffer_bound_bytes = buffer_bound_bytes or max(
            hdfs_cfg.block_size,
            hdfs_cfg.socket_buffer,
            4 * hdfs_cfg.packet_size,
        )
        self.pipeline_cap = max(
            1, len(deployment.datanodes) // self._replication
        )

        self.records: dict[str, InvariantRecord] = {
            name: InvariantRecord(name) for name in invariant_names
        }
        self._generation_high: dict[str, int] = {}
        self._live_pipelines: dict[str, set[str]] = {}
        self._finalized = False

        deployment.journal.subscribe(self._on_event)
        self._sampler = self.env.process(
            self._sample_buffers(sample_interval), name="invariant:sampler"
        )

    # -- live checks (journal stream + sampler) -------------------------
    def _on_event(self, event: TraceEvent) -> None:
        generation = event.details.get("generation")
        if generation is not None:
            high = self._generation_high.get(event.subject)
            self.records["generation_monotone"].check(
                high is None or generation >= high,
                f"{event.subject}: generation {generation} after {high} "
                f"(t={event.time:.3f})",
            )
            if high is None or generation > high:
                self._generation_high[event.subject] = generation

        if (
            event.kind == "read_complete"
            and "read_durability" in self.records
        ):
            delivered = event.details["bytes"]
            size = event.details["size"]
            self.records["read_durability"].check(
                delivered == size and size > 0,
                f"{event.subject}: read by {event.details.get('client')} "
                f"returned {delivered}/{size} bytes (t={event.time:.3f})",
            )

        client = event.details.get("client")
        if client is not None and event.kind == "pipeline_open":
            live = self._live_pipelines.setdefault(client, set())
            live.add(event.subject)
            self.records["pipeline_cap"].check(
                len(live) <= self.pipeline_cap,
                f"client {client}: {len(live)} live pipelines "
                f"> cap {self.pipeline_cap} (t={event.time:.3f})",
            )
        elif client is not None and event.kind == "pipeline_done":
            self._live_pipelines.setdefault(client, set()).discard(
                event.subject
            )

    def _sample_buffers(self, interval: float) -> ProcessGenerator:
        record = self.records["buffer_bound"]
        try:
            while True:
                yield self.env.timeout(interval)
                for datanode in self.deployment.datanodes.values():
                    for receiver in datanode.receivers:
                        buffered = receiver.buffered_packets * self._packet_size
                        record.check(
                            buffered <= self.buffer_bound_bytes,
                            f"{datanode.name}: {buffered} buffered bytes "
                            f"> bound {self.buffer_bound_bytes} "
                            f"(t={self.env.now:.3f})",
                        )
        except Interrupt:
            return

    # -- lifecycle ------------------------------------------------------
    def stop(self) -> None:
        """Detach from the journal and stop the sampler."""
        self.deployment.journal.unsubscribe(self._on_event)
        if self._sampler.is_alive:
            self._sampler.interrupt("monitor stopped")

    def finalize(
        self, outcome: str, result: Optional[WriteResult] = None
    ) -> None:
        """Run the block-level durability checks (idempotent).

        ``outcome`` is the campaign's run classification: ``completed``,
        ``recovery_failed``, ``crash`` or ``hang``.
        """
        if self._finalized:
            return
        self._finalized = True

        self.records["recovery_outcome"].check(
            outcome in ("completed", "recovery_failed"),
            f"run ended with outcome {outcome!r} "
            "(expected completed or recovery_failed)",
        )
        if result is not None:
            self.records["pipeline_cap"].check(
                result.max_concurrent_pipelines <= self.pipeline_cap,
                f"peak {result.max_concurrent_pipelines} concurrent "
                f"pipelines > cap {self.pipeline_cap}",
            )

        blocks = self.deployment.namenode.blocks
        live = {
            name
            for name, dn in self.deployment.datanodes.items()
            if dn.node.alive
        }
        enough_nodes = len(live) >= self._replication
        for info in blocks.all_blocks():
            if info.state is not BlockState.COMPLETE:
                continue
            bid = info.block.block_id
            for replica in info.replicas.values():
                if not replica.finalized:
                    continue
                self.records["acked_durability"].check(
                    replica.bytes_confirmed == info.block.size,
                    f"block {bid}: replica on {replica.datanode} holds "
                    f"{replica.bytes_confirmed}/{info.block.size} bytes",
                )
            live_finalized = sum(
                1
                for replica in info.replicas.values()
                if replica.finalized and replica.datanode in live
            )
            self.records["committed_replica_liveness"].check(
                live_finalized >= 1,
                f"block {bid}: no finalized replica on a live datanode",
            )
            if outcome == "completed" and enough_nodes:
                self.records["replication_convergence"].check(
                    blocks.replication_of(bid) >= self._replication,
                    f"block {bid}: {blocks.replication_of(bid)} finalized "
                    f"replicas < target {self._replication} with "
                    f"{len(live)} live datanodes",
                )

    # -- reporting ------------------------------------------------------
    @property
    def all_ok(self) -> bool:
        return all(r.ok for r in self.records.values())

    def violations(self) -> dict[str, list[str]]:
        """Non-empty violation lists keyed by invariant name."""
        return {
            name: list(r.violations)
            for name, r in self.records.items()
            if r.violations
        }

    def to_dict(self) -> dict:
        return {name: r.to_dict() for name, r in self.records.items()}
