"""Fault injection for upload experiments."""

from .injector import FaultEvent, FaultInjector

__all__ = ["FaultInjector", "FaultEvent"]
