"""Fault injection, chaos campaigns and durability invariants."""

from .campaign import (
    ChaosSchedule,
    FaultSpec,
    generate_read_schedule,
    generate_schedule,
    report_json,
    run_campaign,
    run_read_campaign,
    run_read_schedule,
    run_schedule,
)
from .injector import FaultEvent, FaultInjector
from .invariants import (
    INVARIANT_NAMES,
    READ_INVARIANT_NAMES,
    InvariantMonitor,
    InvariantRecord,
)

__all__ = [
    "FaultInjector",
    "FaultEvent",
    "FaultSpec",
    "ChaosSchedule",
    "generate_schedule",
    "generate_read_schedule",
    "run_schedule",
    "run_read_schedule",
    "run_campaign",
    "run_read_campaign",
    "report_json",
    "InvariantMonitor",
    "InvariantRecord",
    "INVARIANT_NAMES",
    "READ_INVARIANT_NAMES",
]
