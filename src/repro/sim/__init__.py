"""A compact discrete-event simulation kernel (simpy-style).

Built from scratch for this reproduction so the whole system is
self-contained: generator-coroutine processes scheduled over a binary-heap
event queue, with counted resources and FIFO stores as the concurrency
primitives.  See :class:`Environment` for the entry point.
"""

from . import batch
from .environment import Environment, total_events_processed
from .errors import EmptySchedule, Interrupt, SimulationError, SnapshotError
from .events import AllOf, AnyOf, Condition, Event, Timeout, race
from .process import Process, ProcessGenerator
from .shard import CausalityError, ShardedEnvironment, lookahead_from_config
from .resources import (
    Channel,
    Release,
    Request,
    Reservation,
    Resource,
    Store,
    StoreGet,
    StorePut,
)

__all__ = [
    "Environment",
    "ShardedEnvironment",
    "CausalityError",
    "lookahead_from_config",
    "total_events_processed",
    "Event",
    "Timeout",
    "Condition",
    "AllOf",
    "AnyOf",
    "race",
    "Process",
    "ProcessGenerator",
    "Interrupt",
    "SimulationError",
    "EmptySchedule",
    "SnapshotError",
    "Channel",
    "Reservation",
    "Resource",
    "Request",
    "Release",
    "Store",
    "StorePut",
    "StoreGet",
    "batch",
]
