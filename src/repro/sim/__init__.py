"""A compact discrete-event simulation kernel (simpy-style).

Built from scratch for this reproduction so the whole system is
self-contained: generator-coroutine processes scheduled over a binary-heap
event queue, with counted resources and FIFO stores as the concurrency
primitives.  See :class:`Environment` for the entry point.
"""

from .environment import Environment
from .errors import EmptySchedule, Interrupt, SimulationError
from .events import AllOf, AnyOf, Condition, Event, Timeout
from .process import Process, ProcessGenerator
from .resources import Release, Request, Resource, Store, StoreGet, StorePut

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Condition",
    "AllOf",
    "AnyOf",
    "Process",
    "ProcessGenerator",
    "Interrupt",
    "SimulationError",
    "EmptySchedule",
    "Resource",
    "Request",
    "Release",
    "Store",
    "StorePut",
    "StoreGet",
]
