"""Exception types for the discrete-event simulation kernel."""

from __future__ import annotations

__all__ = [
    "SimulationError",
    "Interrupt",
    "StopSimulation",
    "EmptySchedule",
    "SnapshotError",
]


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel itself."""


class Interrupt(Exception):
    """Raised *inside* a process when another process interrupts it.

    The interrupting party passes an arbitrary ``cause`` describing why the
    interrupt happened (e.g. a datanode failure notification).  The
    interrupted process may catch the exception and react — this is how
    pipeline fault handling is triggered in both the HDFS baseline and
    SMARTH.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)

    @property
    def cause(self) -> object:
        """Whatever object the interrupter supplied as the reason."""
        return self.args[0]


class StopSimulation(Exception):
    """Internal signal used by :meth:`Environment.run` to stop at ``until``."""

    def __init__(self, value: object = None):
        super().__init__(value)

    @property
    def value(self) -> object:
        return self.args[0]


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when no events remain."""


class SnapshotError(SimulationError):
    """A checkpoint could not be taken or restored safely.

    Raised when a snapshot is attempted on a non-quiescent environment
    (events still pending — their generator frames cannot serialize), when
    a snapshot file has an unknown format/version, or when restored state
    fails a consistency check.
    """
