"""Generator-coroutine processes.

A :class:`Process` drives a Python generator: every value the generator
``yield``\\ s must be an :class:`~repro.sim.events.Event`; the process
suspends until that event fires and is resumed with the event's value (or
the event's exception is thrown into it).  The process itself *is* an
event — it fires with the generator's return value when the generator
finishes — so processes can wait for each other.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from .errors import Interrupt
from .events import PENDING, Event, Timeout

if TYPE_CHECKING:  # pragma: no cover
    from .environment import Environment

__all__ = ["Process", "ProcessGenerator"]

#: The type every simulation process function must return.
ProcessGenerator = Generator[Event, Any, Any]


class _InterruptEvent(Event):
    """Internal urgent event used to deliver an interrupt to a process."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: object):
        super().__init__(process.env)
        self.process = process
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        process.env.schedule(self, priority=0)  # urgent: before normal events

        # When the interrupt fires we resume the process directly, bypassing
        # whatever event it was waiting on.
        self.callbacks.append(process._resume)


class Process(Event):
    """A running simulation process wrapping a generator coroutine."""

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self, env: "Environment", generator: ProcessGenerator, name: str | None = None
    ):
        if not hasattr(generator, "throw"):
            raise TypeError(
                f"{generator!r} is not a generator — did you forget to call "
                "the process function?"
            )
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None if it is
        #: scheduled to run or has terminated).
        self._target: Event | None = None

        # Kick the process off via an immediately-succeeding initialization
        # event so that it starts *inside* env.run(), not synchronously here.
        # Scheduled URGENT so that an interrupt issued at the same instant
        # (also URGENT, but created later) can never reach the generator
        # before it has started.
        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        env.schedule(init, priority=0)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    @property
    def target(self) -> Event | None:
        """The event this process is currently suspended on, if any."""
        return self._target

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`~repro.sim.errors.Interrupt` into the process.

        The process is resumed immediately (at the current simulation time,
        ahead of ordinary events).  Interrupting a finished process is an
        error; interrupting a process that is itself the caller is too.
        """
        if self.triggered:
            raise RuntimeError(f"{self} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise RuntimeError("a process cannot interrupt itself")
        _InterruptEvent(self, cause)

    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with *event*'s outcome."""
        env = self.env
        if self.triggered:
            # An interrupt raced with normal termination; nothing to do.
            if not event._ok:
                event.defuse()
            return

        # If we are being resumed by an interrupt while waiting on another
        # event, unsubscribe from that event so we are not resumed twice.
        if self._target is not None and self._target is not event:
            target = self._target
            if target.callbacks is not None:
                try:
                    target.callbacks.remove(self._resume)
                except ValueError:  # pragma: no cover - defensive
                    pass
                # A plain timer we were the sole subscriber of is now pure
                # heap churn — tombstone it.  Restricted to Timeout and the
                # bare Events produced by ``timeout_at``: subclasses may
                # carry side effects (e.g. Request slots) or be re-yielded
                # by other processes, so they stay scheduled.
                if (
                    not target.callbacks
                    and type(target) in (Event, Timeout)
                    and target._ok
                    and target._value is not PENDING
                ):
                    target.cancel()
        self._target = None

        env._active_process = self
        try:
            while True:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event.defuse()
                    next_event = self._generator.throw(event._value)

                if not isinstance(next_event, Event):
                    raise RuntimeError(
                        f"process {self.name!r} yielded a non-event: "
                        f"{next_event!r}"
                    )
                if next_event.callbacks is None:
                    # Already processed: resume with its value right away
                    # (synchronously, preserving zero-delay semantics).
                    event = next_event
                    continue
                next_event.callbacks.append(self._resume)
                self._target = next_event
                return
        except StopIteration as stop:
            self._ok = True
            self._value = stop.value
            env.schedule(self)
        except BaseException as error:
            self._ok = False
            self._value = error
            self._defused = False
            env.schedule(self)
        finally:
            env._active_process = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.triggered else "alive"
        return f"<Process {self.name!r} {state}>"
