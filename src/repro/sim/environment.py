"""The simulation environment: clock, scheduler, and run loop."""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Iterable, Optional

from .errors import EmptySchedule, StopSimulation
from .events import AllOf, AnyOf, Event, Timeout
from .process import Process, ProcessGenerator

__all__ = ["Environment", "NORMAL", "URGENT", "total_events_processed"]

#: Process-wide count of events processed across every Environment — the
#: kernel-throughput counter the benchmark harness turns into events/sec.
_TOTAL_EVENTS = 0


def total_events_processed() -> int:
    """Events processed by all environments in this process so far."""
    return _TOTAL_EVENTS

#: Priority for interrupt-style events that must run before normal ones
#: scheduled at the same instant.
URGENT = 0
#: Default scheduling priority.
NORMAL = 1


class Environment:
    """Owns the simulated clock and the pending-event heap.

    All model components (NICs, disks, namenode, clients, …) share one
    environment.  Time is a float in **seconds** and only advances inside
    :meth:`run` / :meth:`step`; nothing in the simulator reads wall-clock
    time, so runs are fully deterministic given the model's RNG seeds.
    """

    #: Tombstone count below which :meth:`_compact` never runs — keeps tiny
    #: schedules from paying rebuild costs for a handful of cancellations.
    COMPACT_MIN_TOMBSTONES = 64

    #: Default for :attr:`lazy_cancellation` on new environments; the
    #: equivalence suite flips this class-wide to run whole experiments on
    #: the pre-tombstone scheduler.
    LAZY_CANCELLATION = True

    #: Shard index of the execution context.  The single-heap environment
    #: is shard 0 forever; :class:`~repro.sim.shard.ShardedEnvironment`
    #: updates it per dispatched event.  Events record it at creation so
    #: the sharded scheduler can route them to their owner's heap.
    _current_shard = 0

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_process: Process | None = None
        #: Heap entries whose event has been cancelled but not yet popped.
        self._tombstones = 0
        #: Events processed by this environment (kernel-throughput metric).
        self.events_processed = 0
        #: Cancelled entries discarded off the heap without dispatching.
        self.tombstones_skipped = 0
        #: Times :meth:`_compact` rebuilt the heap.
        self.compactions_run = 0
        #: Largest number of entries (live + tombstoned) ever in the heap.
        self.heap_high_water = 0
        #: When False, :meth:`Event.cancel` is a no-op and abandoned timers
        #: stay in the heap until they fire as stale events — the
        #: pre-tombstone scheduler, kept switchable so equivalence tests
        #: and the scale benchmark can prove both modes produce identical
        #: simulated timelines.
        self.lazy_cancellation: bool = self.LAZY_CANCELLATION

    # -- introspection -----------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently executing, if any."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next *live* scheduled event, or ``inf`` if none remain."""
        queue = self._queue
        while queue and queue[0][3]._cancelled:
            heapq.heappop(queue)
            self._tombstones -= 1
            self.tombstones_skipped += 1
        return queue[0][0] if queue else float("inf")

    def health(self) -> dict:
        """Event-loop health counters, for `repro.obs` gauges and benchmarks."""
        return {
            "events_dispatched": self.events_processed,
            "tombstones_skipped": self.tombstones_skipped,
            "compactions_run": self.compactions_run,
            "heap_high_water": self.heap_high_water,
            "pending": len(self),
        }

    # -- snapshot protocol ---------------------------------------------------
    def clock_state(self) -> dict:
        """Plain-data clock/counter state for checkpointing.

        Only meaningful at a *quiescent* point (empty schedule): pending
        heap entries hold live generator frames and cannot be serialized.
        The event-id counter is captured without consuming a value so the
        snapshot itself never perturbs scheduling order.
        """
        # itertools.count reduces to (count, (next_value,)).
        next_eid = self._eid.__reduce__()[1][0]
        return {
            "now": self._now,
            "next_eid": next_eid,
            "events_processed": self.events_processed,
            "tombstones_skipped": self.tombstones_skipped,
            "compactions_run": self.compactions_run,
            "heap_high_water": self.heap_high_water,
        }

    def restore_clock(self, state: dict) -> None:
        """Restore :meth:`clock_state` onto a fresh, empty environment.

        Refuses to run with events pending: any entry scheduled before the
        restore would carry a pre-restore event id and break the global
        ``(time, priority, eid)`` dispatch order the checkpoint proof
        relies on.
        """
        from .errors import SnapshotError

        if len(self) != 0:
            raise SnapshotError(
                f"restore_clock requires an empty schedule, {len(self)} "
                "events pending"
            )
        self._now = float(state["now"])
        self._eid = count(state["next_eid"])
        self.events_processed = state["events_processed"]
        self.tombstones_skipped = state["tombstones_skipped"]
        self.compactions_run = state["compactions_run"]
        self.heap_high_water = state["heap_high_water"]

    def __len__(self) -> int:
        """Number of live (non-cancelled) scheduled events."""
        return len(self._queue) - self._tombstones

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def timeout_at(self, when: float, value: Any = None) -> Event:
        """Create an event that fires at the *absolute* time ``when``.

        Unlike ``timeout(when - now)``, the event's heap timestamp is
        exactly ``when`` — no ``now + (when - now)`` float round-trip.
        The analytic :class:`~repro.sim.resources.Channel` path relies on
        this to complete transfers at bit-identical times to the FIFO
        :class:`~repro.sim.resources.Resource` model it replaced.
        """
        if when < self._now:
            raise ValueError(
                f"timeout_at({when}) lies in the past (now={self._now})"
            )
        event = Event(self)
        event._ok = True
        event._value = value
        self.schedule_at(event, when)
        return event

    def process(
        self, generator: ProcessGenerator, name: str | None = None
    ) -> Process:
        """Start a new process from a generator and return its event."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when every event in ``events`` has fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any event in ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = NORMAL
    ) -> None:
        """Queue ``event`` for processing at ``now + delay``.

        Called by :meth:`Event.succeed`/:meth:`Event.fail`; model code
        normally never calls this directly.
        """
        queue = self._queue
        heapq.heappush(
            queue, (self._now + delay, priority, next(self._eid), event)
        )
        if len(queue) > self.heap_high_water:
            self.heap_high_water = len(queue)

    def schedule_at(
        self, event: Event, when: float, priority: int = NORMAL
    ) -> None:
        """Queue ``event`` for processing at the absolute time ``when``.

        ``when`` must not lie in the past: a heap entry behind the clock
        would dispatch immediately but report a non-monotonic timestamp,
        silently corrupting any timeline built from it.
        """
        if when < self._now:
            raise ValueError(
                f"schedule_at({when}) lies in the past (now={self._now})"
            )
        queue = self._queue
        heapq.heappush(queue, (when, priority, next(self._eid), event))
        if len(queue) > self.heap_high_water:
            self.heap_high_water = len(queue)

    def _note_cancelled(self) -> None:
        """Record a new tombstone; compact the heap when they dominate it."""
        self._tombstones += 1
        if (
            self._tombstones >= self.COMPACT_MIN_TOMBSTONES
            and self._tombstones * 2 >= len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop tombstoned entries and re-heapify.

        Heap *order* is irrelevant to pop order here: entries are totally
        ordered tuples with unique ids, so rebuilding the heap cannot
        change the sequence of live events — determinism is preserved.
        """
        self._queue = [entry for entry in self._queue if not entry[3]._cancelled]
        heapq.heapify(self._queue)
        self._tombstones = 0
        self.compactions_run += 1

    def step(self) -> None:
        """Process exactly one event, advancing the clock to its time.

        Tombstoned (cancelled) entries are discarded without advancing the
        clock and without counting toward ``events_processed`` — a
        cancelled timer must leave no trace in either the metrics or the
        simulated timeline.
        """
        queue = self._queue
        while True:
            try:
                when, _, _, event = heapq.heappop(queue)
            except IndexError:
                raise EmptySchedule("no scheduled events remain") from None
            if event._cancelled:
                self._tombstones -= 1
                self.tombstones_skipped += 1
                continue
            break
        self._now = when
        self._dispatch(event)

    def _dispatch(self, event: Event) -> None:
        """Run one popped event's callbacks (shared with the sharded core)."""
        self.events_processed += 1
        global _TOTAL_EVENTS
        _TOTAL_EVENTS += 1

        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None, "event processed twice"
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # A failure nobody handled: surface it instead of silently
            # corrupting the run.
            exc = event._value
            raise exc if isinstance(exc, BaseException) else RuntimeError(exc)

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until ``until`` (a time or an event) or until no events remain.

        * ``until is None`` — run the schedule dry and return ``None``.
        * ``until`` is a number — advance the clock to exactly that time.
        * ``until`` is an :class:`Event` — run until it fires; return its
          value (re-raising its exception if it failed).
        """
        stop: Event | None = None
        if until is not None:
            if isinstance(until, Event):
                stop = until
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(
                        f"until ({at}) must not lie in the past (now={self._now})"
                    )
                stop = Timeout(self, at - self._now)

            if stop.callbacks is None:  # already processed
                if isinstance(until, Event):
                    if not stop._ok:
                        raise stop._value
                    return stop._value
                return None
            stop.callbacks.append(self._stop_callback)

        try:
            while True:
                self.step()
        except StopSimulation as signal:
            if isinstance(until, Event):
                assert stop is not None
                if not stop._ok:
                    stop.defuse()
                    raise stop._value
                return signal.value
            # Pin the clock to the requested stop time even if the last
            # event processed was earlier.
            if not isinstance(until, Event) and until is not None:
                self._now = float(until)
            return None
        except EmptySchedule:
            if stop is not None and not stop.triggered:
                raise RuntimeError(
                    "schedule ran dry before the 'until' event fired"
                ) from None
            return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        raise StopSimulation(event._value)
