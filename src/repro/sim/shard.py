"""Sharded simulation core: per-shard event heaps with conservative
time-window synchronization.

:class:`ShardedEnvironment` partitions the pending-event schedule into
*shards* — one heap per rack / client group — while implementing the
exact :class:`~repro.sim.environment.Environment` surface, so clients,
datanodes and the namenode run unmodified on it.  Two execution modes:

* **Deterministic merge** (the default, used by :meth:`step`/``run``):
  every heap entry carries a globally unique ``(time, priority, eid)``
  key drawn from one shared counter, and each step pops the globally
  smallest head across shards.  Because that is a total order — the same
  total order the single heap pops in — the dispatch sequence is
  **bit-identical to the single-heap run for any shard count**.  Shard
  assignment affects only which heap an entry waits in (and therefore
  per-shard statistics and heap sizes), never the timeline.  The
  shard-invariance equivalence suite proves this end-to-end over fig5,
  faultrec and a fixed-seed chaos campaign.

* **Conservative windows** (:meth:`run_windows`): the classic
  null-message-free PDES loop.  Each barrier computes the global lower
  bound on unprocessed event time (LBTS) and opens the window
  ``[LBTS, LBTS + lookahead)``; every shard may then drain its local
  events inside the window independently (here: in fixed shard order,
  which keeps the run deterministic), because an event in one shard
  needs at least ``lookahead`` of simulated time — the minimum
  cross-shard channel latency — to influence another shard.  A
  cross-shard message targeting the *current* window is a lookahead
  violation and raises :class:`CausalityError` instead of silently
  corrupting the run.

Shard affinity is contextual: every :class:`~repro.sim.events.Event`
records the shard whose context created it, bootstrap code pins itself
with :meth:`ShardedEnvironment.pinned`, and scheduling an event owned by
another shard counts as an inter-shard message.  The process-backed
executor for fully partitioned workloads (independent pods, lookahead
``inf``) lives in :mod:`repro.workloads.sharded`.
"""

from __future__ import annotations

import heapq
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from itertools import count
from typing import Any, Iterator, Optional

from .environment import NORMAL, Environment
from .errors import EmptySchedule
from .events import Event

__all__ = ["ShardedEnvironment", "CausalityError", "lookahead_from_config"]

_INF = float("inf")


@dataclass
class _WindowResult:
    """One shard's bookkeeping from draining one window on a worker."""

    shard: int
    dispatched: int = 0
    skipped: int = 0
    pushed: int = 0
    cancelled: int = 0
    inter_shard: int = 0
    high_water: int = 0
    final_now: float = 0.0
    #: Cross-shard events deferred to the barrier: (when, priority, event).
    outbox: list = field(default_factory=list)


class CausalityError(RuntimeError):
    """A cross-shard event landed inside the window being executed.

    Raised only in windowed mode: it means the configured lookahead is
    larger than the real minimum cross-shard latency, so one shard tried
    to affect another at a time the target may already have passed.
    """


def lookahead_from_config(config: Any) -> float:
    """Conservative lookahead for a cluster partitioned along racks.

    Any cross-shard interaction in the model — a pipeline hop, an ACK
    relay, a namenode RPC leg, a heartbeat — rides a channel or control
    message and therefore takes at least one propagation latency of
    simulated time to arrive.  The safe window width is the minimum of
    those latencies.
    """
    network = config.network
    return min(network.link_latency, network.control_latency)


class ShardedEnvironment(Environment):
    """An :class:`Environment` whose schedule is split across shard heaps.

    ``shards`` is the heap count; ``lookahead`` (simulated seconds) is
    required only for :meth:`run_windows`.  With ``shards=1`` this is
    operationally identical to the single-heap environment.
    """

    #: Class-level default so the clock/shard/active-process property
    #: setters route to the sequential backing fields while the base
    #: ``__init__`` runs (before ``_tls`` exists).
    _threaded = False

    def __init__(
        self,
        shards: int = 2,
        initial_time: float = 0.0,
        lookahead: float = 0.0,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if lookahead < 0:
            raise ValueError(f"lookahead must be >= 0, got {lookahead}")
        super().__init__(initial_time)
        self._shards = shards
        #: Thread-local (now, shard, active process, eid counter, outbox)
        #: for workers draining windows concurrently; see
        #: :meth:`run_windows`.
        self._tls = threading.local()
        self._heaps: list[list[tuple[float, int, int, Event]]] = [
            [] for _ in range(shards)
        ]
        #: Total entries across all heaps (live + tombstoned).
        self._entries = 0
        self._current_shard = 0
        self.lookahead = lookahead
        #: Exclusive upper bound of the window being executed, or ``None``
        #: outside :meth:`run_windows` — doubles as the windowed-mode flag
        #: for the causality check.
        self._window_end: Optional[float] = None
        #: Events scheduled onto a shard other than the scheduling context's.
        self.inter_shard_messages = 0
        #: Window barriers crossed by :meth:`run_windows`.
        self.window_barriers = 0
        #: Events dispatched inside windows (all of :meth:`run_windows`).
        self.window_events = 0
        #: Largest single-window event cohort seen so far.
        self.window_batch_max = 0
        #: Highest worker count any :meth:`run_windows` call ran with.
        self.window_workers = 0
        self._shard_events = [0] * shards
        self._shard_scheduled = [0] * shards
        self._shard_high_water = [0] * shards

    # -- thread-routed execution context -----------------------------------
    # The clock, the executing shard and the active process are *execution
    # context*, not global state: inside a threaded window each worker
    # drains its shards on a private local clock (exactly the shard-local
    # ``now`` the sequential windowed loop models one shard at a time).
    # Data properties shadow the base class's instance attributes, so every
    # inherited read/write (``schedule``, ``timeout_at``, ``Process.step``,
    # ``Event.__init__``) routes here without touching the base class.
    @property
    def _now(self) -> float:
        if self._threaded:
            return self._tls.now
        return self._clock

    @_now.setter
    def _now(self, value: float) -> None:
        if self._threaded:
            self._tls.now = value
        else:
            self._clock = value

    @property
    def _current_shard(self) -> int:
        if self._threaded:
            return self._tls.shard
        return self._shard_ctx

    @_current_shard.setter
    def _current_shard(self, value: int) -> None:
        if self._threaded:
            self._tls.shard = value
        else:
            self._shard_ctx = value

    @property
    def _active_process(self):
        if self._threaded:
            return self._tls.active
        return self._active

    @_active_process.setter
    def _active_process(self, value) -> None:
        if self._threaded:
            self._tls.active = value
        else:
            self._active = value

    # -- introspection -----------------------------------------------------
    @property
    def shard_count(self) -> int:
        return self._shards

    @property
    def current_shard(self) -> int:
        """Shard of the event being dispatched (bootstrap context: 0)."""
        return self._current_shard

    def __len__(self) -> int:
        return self._entries - self._tombstones

    def peek(self) -> float:
        """Time of the next live event across all shards (``inf`` if none)."""
        best = _INF
        for heap in self._heaps:
            while heap and heap[0][3]._cancelled:
                heapq.heappop(heap)
                self._entries -= 1
                self._tombstones -= 1
                self.tombstones_skipped += 1
            if heap and heap[0][0] < best:
                best = heap[0][0]
        return best

    def shard_stats(self) -> list[dict]:
        """Per-shard load counters (events run, scheduled, heap sizes)."""
        return [
            {
                "shard": index,
                "events_dispatched": self._shard_events[index],
                "events_scheduled": self._shard_scheduled[index],
                "heap_high_water": self._shard_high_water[index],
                "pending": len(self._heaps[index]),
            }
            for index in range(self._shards)
        ]

    def health(self) -> dict:
        """Base health counters plus shard balance and sync statistics."""
        health = super().health()
        events = self._shard_events
        busiest = max(events) if events else 0
        mean = sum(events) / len(events) if events else 0.0
        barriers = self.window_barriers
        health.update(
            {
                "shards": self._shards,
                "inter_shard_messages": self.inter_shard_messages,
                "window_barriers": barriers,
                "window_events": self.window_events,
                "window_batch_max": self.window_batch_max,
                # Mean events per window — the batch-size knob the
                # campaign benchmark records alongside worker count.
                "window_batch_mean": (
                    self.window_events / barriers if barriers else 0.0
                ),
                "window_workers": self.window_workers,
                "shard_events": list(events),
                # >1.0 means uneven shards; 1.0 is a perfect split.
                "shard_imbalance": (busiest / mean) if mean else 0.0,
            }
        )
        return health

    # -- snapshot protocol -------------------------------------------------
    def clock_state(self) -> dict:
        """Base clock state plus shard counters (see :class:`Environment`)."""
        state = super().clock_state()
        state.update(
            {
                "shards": self._shards,
                "inter_shard_messages": self.inter_shard_messages,
                "window_barriers": self.window_barriers,
                "window_events": self.window_events,
                "window_batch_max": self.window_batch_max,
                "window_workers": self.window_workers,
                "shard_events": list(self._shard_events),
                "shard_scheduled": list(self._shard_scheduled),
                "shard_high_water": list(self._shard_high_water),
            }
        )
        return state

    def restore_clock(self, state: dict) -> None:
        from .errors import SnapshotError

        if state.get("shards", self._shards) != self._shards:
            raise SnapshotError(
                f"snapshot was taken with {state.get('shards')} shards, "
                f"this environment has {self._shards}"
            )
        super().restore_clock(state)
        self.inter_shard_messages = state["inter_shard_messages"]
        self.window_barriers = state["window_barriers"]
        # Window batch counters postdate the snapshot format; default 0.
        self.window_events = state.get("window_events", 0)
        self.window_batch_max = state.get("window_batch_max", 0)
        self.window_workers = state.get("window_workers", 0)
        self._shard_events = list(state["shard_events"])
        self._shard_scheduled = list(state["shard_scheduled"])
        self._shard_high_water = list(state["shard_high_water"])

    # -- shard affinity ----------------------------------------------------
    @contextmanager
    def pinned(self, shard: int) -> Iterator[None]:
        """Run bootstrap code under ``shard``'s context.

        Events (and therefore processes, timers, channels) created inside
        the block are owned by ``shard``; everything they subsequently
        schedule from their own execution inherits that shard.
        """
        if not 0 <= shard < self._shards:
            raise ValueError(
                f"shard must be in [0, {self._shards}), got {shard}"
            )
        previous = self._current_shard
        self._current_shard = shard
        try:
            yield
        finally:
            self._current_shard = previous

    # -- scheduling --------------------------------------------------------
    def _push(self, event: Event, when: float, priority: int) -> None:
        if self._threaded:
            self._push_threaded(event, when, priority)
            return
        shard = event._shard
        if shard != self._current_shard:
            self.inter_shard_messages += 1
            window_end = self._window_end
            if window_end is not None and when < window_end:
                raise CausalityError(
                    f"cross-shard event at t={when} targets shard {shard} "
                    f"inside the executing window ending at {window_end}; "
                    "lookahead exceeds the real cross-shard latency"
                )
        heap = self._heaps[shard]
        heapq.heappush(heap, (when, priority, next(self._eid), event))
        self._entries += 1
        self._shard_scheduled[shard] += 1
        if len(heap) > self._shard_high_water[shard]:
            self._shard_high_water[shard] = len(heap)
        if self._entries > self.heap_high_water:
            self.heap_high_water = self._entries

    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = NORMAL
    ) -> None:
        self._push(event, self._now + delay, priority)

    def schedule_at(
        self, event: Event, when: float, priority: int = NORMAL
    ) -> None:
        if when < self._now:
            raise ValueError(
                f"schedule_at({when}) lies in the past (now={self._now})"
            )
        self._push(event, when, priority)

    def _push_threaded(self, event: Event, when: float, priority: int) -> None:
        """Worker-side scheduling during a threaded window.

        Same-shard events go straight onto the worker's own heap with an
        eid from the shard's private stride-``shards`` counter (disjoint
        across shards, so entries stay totally ordered; within one shard
        the relative order matches the sequential drain exactly).
        Cross-shard events are deferred to the window barrier via the
        shard's outbox — another worker may be mid-pop on the target heap
        — after the same causality check the sequential path applies.
        """
        tls = self._tls
        shard = event._shard
        if shard != tls.shard:
            tls.result.inter_shard += 1
            window_end = self._window_end
            if window_end is not None and when < window_end:
                raise CausalityError(
                    f"cross-shard event at t={when} targets shard {shard} "
                    f"inside the executing window ending at {window_end}; "
                    "lookahead exceeds the real cross-shard latency"
                )
            tls.result.outbox.append((when, priority, event))
            return
        heap = self._heaps[shard]
        heapq.heappush(heap, (when, priority, next(tls.eid), event))
        tls.result.pushed += 1
        if len(heap) > tls.result.high_water:
            tls.result.high_water = len(heap)

    def _note_cancelled(self) -> None:
        if self._threaded:
            # Deferred: tombstone accounting merges at the barrier and
            # compaction (which walks every shard heap) runs only on the
            # coordinating thread between windows.
            self._tls.result.cancelled += 1
            return
        self._tombstones += 1
        if (
            self._tombstones >= self.COMPACT_MIN_TOMBSTONES
            and self._tombstones * 2 >= self._entries
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop tombstones from every shard heap and re-heapify.

        Entries are totally ordered tuples with globally unique ids, so
        per-heap rebuilds cannot change the merged pop order.
        """
        for index, heap in enumerate(self._heaps):
            live = [entry for entry in heap if not entry[3]._cancelled]
            if len(live) != len(heap):
                heapq.heapify(live)
                self._heaps[index] = live
        self._entries = sum(len(heap) for heap in self._heaps)
        self._tombstones = 0
        self.compactions_run += 1

    # -- deterministic merged execution ------------------------------------
    def step(self) -> None:
        """Dispatch the globally earliest live event across all shards.

        The selection key ``(time, priority, eid)`` is the same total
        order the single heap uses, so the dispatch sequence — and every
        simulated timestamp derived from it — matches the single-heap
        run exactly, for any shard count.
        """
        best_shard = -1
        best_key: tuple[float, int, int] | None = None
        for index, heap in enumerate(self._heaps):
            while heap and heap[0][3]._cancelled:
                heapq.heappop(heap)
                self._entries -= 1
                self._tombstones -= 1
                self.tombstones_skipped += 1
            if heap:
                head = heap[0]
                key = (head[0], head[1], head[2])
                if best_key is None or key < best_key:
                    best_key, best_shard = key, index
        if best_shard < 0:
            raise EmptySchedule("no scheduled events remain")

        when, _, _, event = heapq.heappop(self._heaps[best_shard])
        self._entries -= 1
        self._now = when
        self._current_shard = best_shard
        self._shard_events[best_shard] += 1
        self._dispatch(event)

    # -- conservative time-window execution --------------------------------
    def run_windows(
        self, until: Optional[float] = None, workers: Optional[int] = None
    ) -> None:
        """Advance the simulation in conservative lookahead windows.

        Each barrier opens the window ``[LBTS, LBTS + lookahead)`` and
        drains every shard's local events inside it, shard by shard in
        index order (a fixed merge order, so runs stay deterministic).
        Within a window each shard runs on its own local clock; ``now``
        is therefore shard-local here, exactly as it would be across
        worker processes.  Requires a positive ``lookahead``; a
        cross-shard message into the open window raises
        :class:`CausalityError`.

        ``workers=N`` (N > 1) drains the window's shards on a thread
        pool — the barrier is the only synchronization point.  Each
        worker runs its shards on a thread-local clock, schedules onto
        its own heaps with per-shard eid strides, and defers cross-shard
        events to the barrier; counters merge there in shard order, so
        a threaded run is deterministic and repeat-stable for any worker
        count.  ``workers=None`` or ``1`` keeps the sequential path
        bit-for-bit.  (CPython with the GIL serializes the drains, so
        threads only pay off on free-threaded builds; the structure —
        and its determinism — is what the equivalence suite pins.)
        """
        if self.lookahead <= 0:
            raise ValueError(
                "run_windows requires a positive lookahead "
                "(see lookahead_from_config)"
            )
        limit = None if until is None else float(until)
        if limit is not None and limit < self._now:
            raise ValueError(
                f"until ({limit}) must not lie in the past (now={self._now})"
            )
        n_workers = 1 if workers is None else int(workers)
        if n_workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        n_workers = min(n_workers, self._shards)
        if n_workers > self.window_workers:
            self.window_workers = n_workers
        if n_workers > 1:
            self._run_windows_threaded(limit, n_workers)
            return

        latest = self._now
        while True:
            lbts = self.peek()
            if lbts == _INF:
                break
            if limit is not None and lbts > limit:
                break
            window_end = lbts + self.lookahead
            self.window_barriers += 1
            self._window_end = window_end
            cohort = 0
            try:
                for index in range(self._shards):
                    heap = self._heaps[index]
                    self._current_shard = index
                    self._now = lbts
                    while True:
                        while heap and heap[0][3]._cancelled:
                            heapq.heappop(heap)
                            self._entries -= 1
                            self._tombstones -= 1
                            self.tombstones_skipped += 1
                        if not heap or heap[0][0] >= window_end:
                            break
                        if limit is not None and heap[0][0] > limit:
                            break
                        when, _, _, event = heapq.heappop(heap)
                        self._entries -= 1
                        self._now = when
                        self._shard_events[index] += 1
                        cohort += 1
                        self._dispatch(event)
                    if self._now > latest:
                        latest = self._now
            finally:
                self._window_end = None
            self.window_events += cohort
            if cohort > self.window_batch_max:
                self.window_batch_max = cohort

        self._now = limit if limit is not None else latest

    def _run_windows_threaded(self, limit: Optional[float], workers: int) -> None:
        """Windowed loop with per-window thread-pool shard drains."""
        latest = self._clock
        executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="shard-window"
        )
        try:
            while True:
                lbts = self.peek()
                if lbts == _INF:
                    break
                if limit is not None and lbts > limit:
                    break
                window_end = lbts + self.lookahead
                self.window_barriers += 1
                self._window_end = window_end
                # Next value of the shared eid counter, captured without
                # consuming one; shard k draws eid_base + k, +shards, ...
                eid_base = self._eid.__reduce__()[1][0]
                groups = [
                    list(range(start, self._shards, workers))
                    for start in range(workers)
                ]
                self._threaded = True
                results: list[_WindowResult] = []
                errors: list[BaseException] = []
                try:
                    futures = [
                        executor.submit(
                            self._drain_group,
                            group, lbts, window_end, limit, eid_base,
                        )
                        for group in groups
                        if group
                    ]
                    # result() waits even on failure, so after this loop
                    # every worker has stopped — only then is it safe to
                    # leave threaded mode (workers route scheduling
                    # through the TLS path while the flag is up).
                    for future in futures:
                        try:
                            results.extend(future.result())
                        except BaseException as exc:
                            errors.append(exc)
                finally:
                    self._threaded = False
                    self._window_end = None
                if errors:
                    raise errors[0]
                latest = self._merge_window(results, eid_base, latest)
        finally:
            executor.shutdown(wait=True)
        self._clock = limit if limit is not None else latest

    def _drain_group(
        self,
        group: list[int],
        lbts: float,
        window_end: float,
        limit: Optional[float],
        eid_base: int,
    ) -> list[_WindowResult]:
        """Worker entry point: drain each assigned shard inside the window.

        Runs entirely on thread-local execution context; all shared
        counters accumulate in the returned :class:`_WindowResult` per
        shard and merge at the barrier.
        """
        tls = self._tls
        shards = self._shards
        results = []
        for index in group:
            result = _WindowResult(
                shard=index, high_water=self._shard_high_water[index]
            )
            tls.result = result
            tls.shard = index
            tls.now = lbts
            tls.active = None
            tls.eid = count(eid_base + index, shards)
            heap = self._heaps[index]
            while True:
                while heap and heap[0][3]._cancelled:
                    heapq.heappop(heap)
                    result.skipped += 1
                if not heap or heap[0][0] >= window_end:
                    break
                if limit is not None and heap[0][0] > limit:
                    break
                when, _, _, event = heapq.heappop(heap)
                tls.now = when
                result.dispatched += 1
                self._dispatch_threaded(event)
            result.final_now = tls.now
            results.append(result)
        return results

    def _dispatch_threaded(self, event: Event) -> None:
        """One event's callbacks on a worker — no shared-counter writes.

        The base :meth:`Environment._dispatch` body minus the process-wide
        and per-environment event counters, which merge at the barrier.
        """
        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None, "event processed twice"
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            exc = event._value
            raise exc if isinstance(exc, BaseException) else RuntimeError(exc)

    def _merge_window(
        self, results: list[_WindowResult], eid_base: int, latest: float
    ) -> float:
        """Barrier bookkeeping: fold worker results back into shared state.

        Results merge in shard index order and the deferred cross-shard
        events land in (source shard, local append order) — both fixed —
        so the merged state is identical for any worker count.
        """
        from . import environment as _env_mod

        results.sort(key=lambda result: result.shard)
        total = 0
        max_pushed = 0
        for r in results:
            total += r.dispatched
            self._shard_events[r.shard] += r.dispatched
            self._shard_scheduled[r.shard] += r.pushed
            if r.high_water > self._shard_high_water[r.shard]:
                self._shard_high_water[r.shard] = r.high_water
            self._entries += r.pushed - (r.dispatched + r.skipped)
            self.tombstones_skipped += r.skipped
            self._tombstones += r.cancelled - r.skipped
            self.inter_shard_messages += r.inter_shard
            if r.pushed > max_pushed:
                max_pushed = r.pushed
            if r.final_now > latest:
                latest = r.final_now
        self.events_processed += total
        _env_mod._TOTAL_EVENTS += total
        self.window_events += total
        if total > self.window_batch_max:
            self.window_batch_max = total
        # Advance the shared counter past every eid the stride counters
        # drew, then land the deferred cross-shard events.
        self._eid = count(eid_base + self._shards * (max_pushed + 1))
        for r in results:
            for when, priority, event in r.outbox:
                target = event._shard
                heap = self._heaps[target]
                heapq.heappush(heap, (when, priority, next(self._eid), event))
                self._entries += 1
                self._shard_scheduled[target] += 1
                if len(heap) > self._shard_high_water[target]:
                    self._shard_high_water[target] = len(heap)
        if self._entries > self.heap_high_water:
            self.heap_high_water = self._entries
        # Deferred compaction: tombstones accumulated by the workers are
        # collected here, on the coordinating thread, between windows.
        if (
            self._tombstones >= self.COMPACT_MIN_TOMBSTONES
            and self._tombstones * 2 >= self._entries
        ):
            self._compact()
        return latest
