"""Sharded simulation core: per-shard event heaps with conservative
time-window synchronization.

:class:`ShardedEnvironment` partitions the pending-event schedule into
*shards* — one heap per rack / client group — while implementing the
exact :class:`~repro.sim.environment.Environment` surface, so clients,
datanodes and the namenode run unmodified on it.  Two execution modes:

* **Deterministic merge** (the default, used by :meth:`step`/``run``):
  every heap entry carries a globally unique ``(time, priority, eid)``
  key drawn from one shared counter, and each step pops the globally
  smallest head across shards.  Because that is a total order — the same
  total order the single heap pops in — the dispatch sequence is
  **bit-identical to the single-heap run for any shard count**.  Shard
  assignment affects only which heap an entry waits in (and therefore
  per-shard statistics and heap sizes), never the timeline.  The
  shard-invariance equivalence suite proves this end-to-end over fig5,
  faultrec and a fixed-seed chaos campaign.

* **Conservative windows** (:meth:`run_windows`): the classic
  null-message-free PDES loop.  Each barrier computes the global lower
  bound on unprocessed event time (LBTS) and opens the window
  ``[LBTS, LBTS + lookahead)``; every shard may then drain its local
  events inside the window independently (here: in fixed shard order,
  which keeps the run deterministic), because an event in one shard
  needs at least ``lookahead`` of simulated time — the minimum
  cross-shard channel latency — to influence another shard.  A
  cross-shard message targeting the *current* window is a lookahead
  violation and raises :class:`CausalityError` instead of silently
  corrupting the run.

Shard affinity is contextual: every :class:`~repro.sim.events.Event`
records the shard whose context created it, bootstrap code pins itself
with :meth:`ShardedEnvironment.pinned`, and scheduling an event owned by
another shard counts as an inter-shard message.  The process-backed
executor for fully partitioned workloads (independent pods, lookahead
``inf``) lives in :mod:`repro.workloads.sharded`.
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from .environment import NORMAL, Environment
from .errors import EmptySchedule
from .events import Event

__all__ = ["ShardedEnvironment", "CausalityError", "lookahead_from_config"]

_INF = float("inf")


class CausalityError(RuntimeError):
    """A cross-shard event landed inside the window being executed.

    Raised only in windowed mode: it means the configured lookahead is
    larger than the real minimum cross-shard latency, so one shard tried
    to affect another at a time the target may already have passed.
    """


def lookahead_from_config(config: Any) -> float:
    """Conservative lookahead for a cluster partitioned along racks.

    Any cross-shard interaction in the model — a pipeline hop, an ACK
    relay, a namenode RPC leg, a heartbeat — rides a channel or control
    message and therefore takes at least one propagation latency of
    simulated time to arrive.  The safe window width is the minimum of
    those latencies.
    """
    network = config.network
    return min(network.link_latency, network.control_latency)


class ShardedEnvironment(Environment):
    """An :class:`Environment` whose schedule is split across shard heaps.

    ``shards`` is the heap count; ``lookahead`` (simulated seconds) is
    required only for :meth:`run_windows`.  With ``shards=1`` this is
    operationally identical to the single-heap environment.
    """

    def __init__(
        self,
        shards: int = 2,
        initial_time: float = 0.0,
        lookahead: float = 0.0,
    ):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if lookahead < 0:
            raise ValueError(f"lookahead must be >= 0, got {lookahead}")
        super().__init__(initial_time)
        self._shards = shards
        self._heaps: list[list[tuple[float, int, int, Event]]] = [
            [] for _ in range(shards)
        ]
        #: Total entries across all heaps (live + tombstoned).
        self._entries = 0
        self._current_shard = 0
        self.lookahead = lookahead
        #: Exclusive upper bound of the window being executed, or ``None``
        #: outside :meth:`run_windows` — doubles as the windowed-mode flag
        #: for the causality check.
        self._window_end: Optional[float] = None
        #: Events scheduled onto a shard other than the scheduling context's.
        self.inter_shard_messages = 0
        #: Window barriers crossed by :meth:`run_windows`.
        self.window_barriers = 0
        self._shard_events = [0] * shards
        self._shard_scheduled = [0] * shards
        self._shard_high_water = [0] * shards

    # -- introspection -----------------------------------------------------
    @property
    def shard_count(self) -> int:
        return self._shards

    @property
    def current_shard(self) -> int:
        """Shard of the event being dispatched (bootstrap context: 0)."""
        return self._current_shard

    def __len__(self) -> int:
        return self._entries - self._tombstones

    def peek(self) -> float:
        """Time of the next live event across all shards (``inf`` if none)."""
        best = _INF
        for heap in self._heaps:
            while heap and heap[0][3]._cancelled:
                heapq.heappop(heap)
                self._entries -= 1
                self._tombstones -= 1
                self.tombstones_skipped += 1
            if heap and heap[0][0] < best:
                best = heap[0][0]
        return best

    def shard_stats(self) -> list[dict]:
        """Per-shard load counters (events run, scheduled, heap sizes)."""
        return [
            {
                "shard": index,
                "events_dispatched": self._shard_events[index],
                "events_scheduled": self._shard_scheduled[index],
                "heap_high_water": self._shard_high_water[index],
                "pending": len(self._heaps[index]),
            }
            for index in range(self._shards)
        ]

    def health(self) -> dict:
        """Base health counters plus shard balance and sync statistics."""
        health = super().health()
        events = self._shard_events
        busiest = max(events) if events else 0
        mean = sum(events) / len(events) if events else 0.0
        health.update(
            {
                "shards": self._shards,
                "inter_shard_messages": self.inter_shard_messages,
                "window_barriers": self.window_barriers,
                "shard_events": list(events),
                # >1.0 means uneven shards; 1.0 is a perfect split.
                "shard_imbalance": (busiest / mean) if mean else 0.0,
            }
        )
        return health

    # -- snapshot protocol -------------------------------------------------
    def clock_state(self) -> dict:
        """Base clock state plus shard counters (see :class:`Environment`)."""
        state = super().clock_state()
        state.update(
            {
                "shards": self._shards,
                "inter_shard_messages": self.inter_shard_messages,
                "window_barriers": self.window_barriers,
                "shard_events": list(self._shard_events),
                "shard_scheduled": list(self._shard_scheduled),
                "shard_high_water": list(self._shard_high_water),
            }
        )
        return state

    def restore_clock(self, state: dict) -> None:
        from .errors import SnapshotError

        if state.get("shards", self._shards) != self._shards:
            raise SnapshotError(
                f"snapshot was taken with {state.get('shards')} shards, "
                f"this environment has {self._shards}"
            )
        super().restore_clock(state)
        self.inter_shard_messages = state["inter_shard_messages"]
        self.window_barriers = state["window_barriers"]
        self._shard_events = list(state["shard_events"])
        self._shard_scheduled = list(state["shard_scheduled"])
        self._shard_high_water = list(state["shard_high_water"])

    # -- shard affinity ----------------------------------------------------
    @contextmanager
    def pinned(self, shard: int) -> Iterator[None]:
        """Run bootstrap code under ``shard``'s context.

        Events (and therefore processes, timers, channels) created inside
        the block are owned by ``shard``; everything they subsequently
        schedule from their own execution inherits that shard.
        """
        if not 0 <= shard < self._shards:
            raise ValueError(
                f"shard must be in [0, {self._shards}), got {shard}"
            )
        previous = self._current_shard
        self._current_shard = shard
        try:
            yield
        finally:
            self._current_shard = previous

    # -- scheduling --------------------------------------------------------
    def _push(self, event: Event, when: float, priority: int) -> None:
        shard = event._shard
        if shard != self._current_shard:
            self.inter_shard_messages += 1
            window_end = self._window_end
            if window_end is not None and when < window_end:
                raise CausalityError(
                    f"cross-shard event at t={when} targets shard {shard} "
                    f"inside the executing window ending at {window_end}; "
                    "lookahead exceeds the real cross-shard latency"
                )
        heap = self._heaps[shard]
        heapq.heappush(heap, (when, priority, next(self._eid), event))
        self._entries += 1
        self._shard_scheduled[shard] += 1
        if len(heap) > self._shard_high_water[shard]:
            self._shard_high_water[shard] = len(heap)
        if self._entries > self.heap_high_water:
            self.heap_high_water = self._entries

    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = NORMAL
    ) -> None:
        self._push(event, self._now + delay, priority)

    def schedule_at(
        self, event: Event, when: float, priority: int = NORMAL
    ) -> None:
        if when < self._now:
            raise ValueError(
                f"schedule_at({when}) lies in the past (now={self._now})"
            )
        self._push(event, when, priority)

    def _note_cancelled(self) -> None:
        self._tombstones += 1
        if (
            self._tombstones >= self.COMPACT_MIN_TOMBSTONES
            and self._tombstones * 2 >= self._entries
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop tombstones from every shard heap and re-heapify.

        Entries are totally ordered tuples with globally unique ids, so
        per-heap rebuilds cannot change the merged pop order.
        """
        for index, heap in enumerate(self._heaps):
            live = [entry for entry in heap if not entry[3]._cancelled]
            if len(live) != len(heap):
                heapq.heapify(live)
                self._heaps[index] = live
        self._entries = sum(len(heap) for heap in self._heaps)
        self._tombstones = 0
        self.compactions_run += 1

    # -- deterministic merged execution ------------------------------------
    def step(self) -> None:
        """Dispatch the globally earliest live event across all shards.

        The selection key ``(time, priority, eid)`` is the same total
        order the single heap uses, so the dispatch sequence — and every
        simulated timestamp derived from it — matches the single-heap
        run exactly, for any shard count.
        """
        best_shard = -1
        best_key: tuple[float, int, int] | None = None
        for index, heap in enumerate(self._heaps):
            while heap and heap[0][3]._cancelled:
                heapq.heappop(heap)
                self._entries -= 1
                self._tombstones -= 1
                self.tombstones_skipped += 1
            if heap:
                head = heap[0]
                key = (head[0], head[1], head[2])
                if best_key is None or key < best_key:
                    best_key, best_shard = key, index
        if best_shard < 0:
            raise EmptySchedule("no scheduled events remain")

        when, _, _, event = heapq.heappop(self._heaps[best_shard])
        self._entries -= 1
        self._now = when
        self._current_shard = best_shard
        self._shard_events[best_shard] += 1
        self._dispatch(event)

    # -- conservative time-window execution --------------------------------
    def run_windows(self, until: Optional[float] = None) -> None:
        """Advance the simulation in conservative lookahead windows.

        Each barrier opens the window ``[LBTS, LBTS + lookahead)`` and
        drains every shard's local events inside it, shard by shard in
        index order (a fixed merge order, so runs stay deterministic).
        Within a window each shard runs on its own local clock; ``now``
        is therefore shard-local here, exactly as it would be across
        worker processes.  Requires a positive ``lookahead``; a
        cross-shard message into the open window raises
        :class:`CausalityError`.
        """
        if self.lookahead <= 0:
            raise ValueError(
                "run_windows requires a positive lookahead "
                "(see lookahead_from_config)"
            )
        limit = None if until is None else float(until)
        if limit is not None and limit < self._now:
            raise ValueError(
                f"until ({limit}) must not lie in the past (now={self._now})"
            )

        latest = self._now
        while True:
            lbts = self.peek()
            if lbts == _INF:
                break
            if limit is not None and lbts > limit:
                break
            window_end = lbts + self.lookahead
            self.window_barriers += 1
            self._window_end = window_end
            try:
                for index in range(self._shards):
                    heap = self._heaps[index]
                    self._current_shard = index
                    self._now = lbts
                    while True:
                        while heap and heap[0][3]._cancelled:
                            heapq.heappop(heap)
                            self._entries -= 1
                            self._tombstones -= 1
                            self.tombstones_skipped += 1
                        if not heap or heap[0][0] >= window_end:
                            break
                        if limit is not None and heap[0][0] > limit:
                            break
                        when, _, _, event = heapq.heappop(heap)
                        self._entries -= 1
                        self._now = when
                        self._shard_events[index] += 1
                        self._dispatch(event)
                    if self._now > latest:
                        latest = self._now
            finally:
                self._window_end = None

        self._now = limit if limit is not None else latest
