"""Vectorized batch completion kernel: bit-exact numpy channel math.

When a cohort of same-window completions retires — a packet train
settling, a replay rebuilding its frozen prefix, a throttle change
re-quoting every in-flight flow — the per-unit bookkeeping is a loop of
*independent* comparisons, prefix lookups and elementwise ``min``/``max``
over floats.  This module lifts exactly those loops into flat numpy
passes, and nothing else: every helper here is restricted to operations
that are **bit-identical** to their scalar counterparts by IEEE-754
construction —

* pure comparisons and ``searchsorted`` (no arithmetic at all),
* elementwise ``minimum``/``maximum`` over the *same* float64 values the
  scalar loop would compare,
* verbatim slicing/copying of already-computed values.

Chained FIFO recurrences (``end[k] = max(issue[k], end[k-1]) + size/rate``)
are deliberately **not** vectorized: prefix-scan rewrites reassociate the
float additions and drift in the last ulp.  Those stay scalar; the batch
kernel's wins come from everything around them.

Falls back to scalar loops when numpy is unavailable, so the knob
(``HdfsConfig.batch_completions``) degrades gracefully rather than
importing a hard dependency into the simulation core.  The hypothesis
property suite (``tests/sim/test_batch.py``) drives every helper against
its scalar reference over random inputs and asserts equality with ``==``,
not ``approx``.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING, Sequence

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np
except ImportError:  # pragma: no cover - container always ships numpy
    _np = None

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster.node import Node

__all__ = [
    "HAVE_NUMPY",
    "count_before",
    "count_at_or_before",
    "buffered_high_water",
    "effective_rates",
]

HAVE_NUMPY = _np is not None

#: Below this many elements the numpy round-trip costs more than the
#: Python loop it replaces; helpers take the scalar branch.
_MIN_VECTOR = 8


def count_before(values: Sequence[float], t: float) -> int:
    """How many of the (sorted, nondecreasing) ``values`` are ``< t``.

    Equivalent to ``sum(1 for v in values if v < t)`` for sorted input —
    the strictly-before prefix counts the train's error settle takes over
    its monotone per-hop timeline arrays.
    """
    if _np is not None and len(values) >= _MIN_VECTOR:
        return int(
            _np.searchsorted(
                _np.asarray(values, dtype=_np.float64), t, side="left"
            )
        )
    return bisect_left(values, t)


def count_at_or_before(values: Sequence[float], t: float) -> int:
    """How many of the (sorted, nondecreasing) ``values`` are ``<= t``."""
    if _np is not None and len(values) >= _MIN_VECTOR:
        return int(
            _np.searchsorted(
                _np.asarray(values, dtype=_np.float64), t, side="right"
            )
        )
    return bisect_right(values, t)


def buffered_high_water(
    grants: Sequence[float],
    releases: Sequence[float],
    cap: int,
    rows: int,
    high: int,
) -> int:
    """Analytic §IV-C buffer high-water mark over a token timeline.

    For each of the first ``rows`` grants, the occupancy at grant ``k`` is
    ``k + 1`` minus the number of releases strictly before it (both lists
    nondecreasing), clamped to ``cap``; returns the running maximum seeded
    with ``high``.  One vectorized ``searchsorted`` replaces the per-grant
    ``bisect_left`` loop the scalar settle runs.
    """
    if rows <= 0:
        return high
    if _np is not None and rows >= _MIN_VECTOR:
        grant_arr = _np.asarray(grants[:rows], dtype=_np.float64)
        release_arr = _np.asarray(releases, dtype=_np.float64)
        freed = _np.searchsorted(release_arr, grant_arr, side="left")
        occupancy = _np.arange(1, rows + 1) - freed
        peak = int(_np.minimum(occupancy, cap).max())
        return peak if peak > high else high
    for k in range(rows):
        occ = k + 1 - bisect_left(releases, grants[k])
        if occ > cap:
            occ = cap
        if occ > high:
            high = occ
    return high


def _scalar_rates(table, pairs) -> list[float]:
    return [table.effective_rate(src, dst) for src, dst in pairs]


def effective_rates(table, pairs: "Sequence[tuple[Node, Node]]") -> list[float]:
    """Effective throttled rate for every (src, dst) pair, in one pass.

    Vectorizes :meth:`~repro.net.throttle.ThrottleTable.effective_rate`
    across a flow set: the base is the elementwise min of the endpoint
    NIC rates, and each rule contributes a boolean ``applies`` mask and a
    ``minimum`` against its cap.  The reductions compare exactly the same
    float64 values in the same min-tree shape as the scalar loop (min is
    associative-exact over identical operands), so the results are
    bit-identical.  Rule types outside the built-in three fall back to
    their scalar ``applies`` predicate, pairwise.
    """
    from ..net.throttle import NodeThrottle, PairThrottle, RackBoundaryThrottle

    if _np is None or len(pairs) < _MIN_VECTOR:
        return _scalar_rates(table, pairs)

    src_names = _np.array([src.name for src, _dst in pairs])
    dst_names = _np.array([dst.name for _src, dst in pairs])
    rates = _np.minimum(
        _np.array([src.nic.rate for src, _dst in pairs], dtype=_np.float64),
        _np.array([dst.nic.rate for _src, dst in pairs], dtype=_np.float64),
    )
    src_racks = dst_racks = None
    for rule in table.rules:
        if isinstance(rule, NodeThrottle):
            mask = (src_names == rule.node_name) | (dst_names == rule.node_name)
        elif isinstance(rule, PairThrottle):
            mask = (src_names == rule.src_name) & (dst_names == rule.dst_name)
        elif isinstance(rule, RackBoundaryThrottle):
            if src_racks is None:
                src_racks = _np.array([src.rack for src, _dst in pairs])
                dst_racks = _np.array([dst.rack for _src, dst in pairs])
            mask = src_racks != dst_racks
        else:
            mask = _np.fromiter(
                (rule.applies(src, dst) for src, dst in pairs),
                dtype=bool,
                count=len(pairs),
            )
        if mask.any():
            rates[mask] = _np.minimum(rates[mask], rule.rate)
    return [float(rate) for rate in rates]
