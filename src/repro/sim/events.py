"""Core event types for the discrete-event kernel.

The kernel follows the simpy model: an :class:`Event` is a one-shot
container for a value (or an exception) with a list of callbacks that run
when the event is *processed* by the environment.  Processes (generator
coroutines, see :mod:`repro.sim.process`) ``yield`` events to suspend until
they fire.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .environment import Environment

__all__ = ["PENDING", "Event", "Timeout", "Condition", "AllOf", "AnyOf", "race"]


class _Pending:
    """Sentinel marking an event whose value has not been set yet."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<PENDING>"


PENDING = _Pending()


class Event:
    """A one-shot occurrence in simulated time.

    Lifecycle: *pending* → *triggered* (value/exception set, scheduled) →
    *processed* (callbacks executed).  ``succeed``/``fail`` may be called at
    most once.
    """

    __slots__ = (
        "env",
        "callbacks",
        "_value",
        "_ok",
        "_defused",
        "_cancelled",
        "_shard",
    )

    def __init__(self, env: "Environment"):
        self.env = env
        #: Callbacks run (in order) when the event is processed.  Set to
        #: ``None`` once processed; appending afterwards is an error.
        self.callbacks: list[Callable[["Event"], None]] | None = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False
        self._cancelled: bool = False
        #: Shard that owns this event: the shard whose context created it.
        #: Always 0 on the single-heap environment; the sharded scheduler
        #: routes the event to this shard's heap, and a shard succeeding
        #: an event owned by another shard is an inter-shard message.
        self._shard: int = env._current_shard

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once a value or exception has been set."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        if not self.triggered:
            raise AttributeError("event is not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value, or the exception instance if it failed."""
        if self._value is PENDING:
            raise AttributeError("event is not yet triggered")
        return self._value

    @property
    def defused(self) -> bool:
        """True if a failure has been claimed by a handler.

        A failed event that is never defused crashes the simulation when
        processed — silent failures are bugs in a simulator.
        """
        return self._defused

    def defuse(self) -> None:
        """Mark a failure as handled so it will not crash the simulation."""
        self._defused = True

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has withdrawn the event."""
        return self._cancelled

    def cancel(self) -> None:
        """Withdraw a triggered-but-unprocessed event from the schedule.

        The scheduler leaves the heap entry in place as a *tombstone* and
        discards it when popped — without advancing the clock, without
        counting it as processed, and without running callbacks.  The
        environment compacts the heap once tombstones dominate it, so
        abandoned timers (heartbeats after their owner finished, losers of
        a :func:`race`, stale recovery timeouts) stop churning the heap.

        Cancelling is the *caller's* assertion that no remaining subscriber
        matters.  Only successful, already-triggered events may be
        cancelled: an untriggered event may still be succeeded later (its
        schedule entry would silently vanish) and a failed event must crash
        the run if unhandled.  Cancelling a processed or already-cancelled
        event is a no-op, so ``race`` winners can cancel losers blindly.

        With :attr:`Environment.lazy_cancellation` switched off this is a
        complete no-op: abandoned timers stay scheduled and fire as stale
        events, reproducing the pre-tombstone scheduler for the
        equivalence suite and the scale benchmark's legacy mode.
        """
        if not self.env.lazy_cancellation:
            return
        if self.callbacks is None or self._cancelled:
            return
        if self._value is PENDING:
            raise RuntimeError(f"cannot cancel untriggered {self!r}")
        if not self._ok:
            raise RuntimeError(f"cannot cancel failed {self!r}")
        self._cancelled = True
        self.callbacks = None
        self.env._note_cancelled()

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Set the event's value and schedule its callbacks for *now*."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Set an exception outcome and schedule callbacks for *now*."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def _succeed_sync(self, value: Any = None) -> "Event":
        """Succeed *and process* the event without entering the queue.

        Only valid while nothing has subscribed (``callbacks`` empty):
        there is no waiter to resume, so the heap round-trip would only
        delay the creating process's continuation to later in the same
        timestamp.  Used by resources for immediately-satisfiable
        requests — a ``yield`` on the returned event resumes synchronously
        (see ``Process._resume``).
        """
        assert not self.callbacks, "cannot sync-succeed a subscribed event"
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.callbacks = None
        return self

    def trigger(self, event: "Event") -> None:
        """Copy another event's outcome onto this one (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- composition ------------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed"
            if self.processed
            else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Timeout delay={self.delay} at {id(self):#x}>"


class Condition(Event):
    """Waits for a combination of events (used via :class:`AllOf`/:class:`AnyOf`).

    The condition's value is a dict mapping each *triggered* constituent
    event to its value, in trigger order.  If any constituent fails, the
    condition fails with that exception (and defuses the others).
    """

    __slots__ = ("_evaluate", "_events", "_count", "_fired")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list["Event"], int], bool],
        events: Iterable["Event"],
    ):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0
        self._fired: list["Event"] = []

        for event in self._events:
            if event.env is not env:
                raise ValueError("cannot mix events from different environments")

        # Immediately check already-processed events, then subscribe.
        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                assert event.callbacks is not None
                event.callbacks.append(self._check)

        if not self._events and not self.triggered:
            self.succeed({})

    def _check(self, event: "Event") -> None:
        if self.triggered:
            if not event._ok:
                event.defuse()  # condition already resolved; claim failure
            return
        self._count += 1
        if not event._ok:
            event.defuse()
            self.fail(event._value)
        else:
            self._fired.append(event)
            if self._evaluate(self._events, self._count):
                self.succeed(self._collect_values())

    def _collect_values(self) -> dict["Event", Any]:
        return {e: e._value for e in self._fired}

    @staticmethod
    def all_events(events: list["Event"], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events: list["Event"], count: int) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Fires when *all* the given events have fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable["Event"]):
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Fires when *any one* of the given events has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable["Event"]):
        super().__init__(env, Condition.any_events, events)


class _Race(Event):
    """Minimal first-of-N event: no constituent list, no value dict."""

    __slots__ = ()

    def _on(self, event: "Event") -> None:
        if self.triggered:
            if not event._ok:
                event.defuse()
            return
        if event._ok:
            self.succeed(event)
        else:
            event.defuse()
            self.fail(event._value)


def race(env: "Environment", *events: "Event") -> "Event":
    """First-of-N wait without a :class:`Condition` allocation.

    The write clients yield one ``send | handle.error`` per packet; at a
    million packets per experiment the Condition's event list, fired list
    and value dict dominate allocation churn for a value nobody reads.
    ``race`` fires with the first-fired *event* as its value, propagates a
    constituent failure the same way Condition does, and — when some event
    has already been processed — returns that event directly, allocating
    nothing and subscribing to nothing.
    """
    for event in events:
        if event.processed:
            return event
    waiter = _Race(env)
    for event in events:
        assert event.callbacks is not None
        event.callbacks.append(waiter._on)
    return waiter
