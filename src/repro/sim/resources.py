"""Shared resources for processes: counted resources and FIFO stores.

Two primitives cover everything the HDFS/SMARTH models need:

* :class:`Resource` — ``capacity`` concurrent holders, FIFO queuing.  Used
  for NIC transmit channels, disk write channels and namenode RPC handler
  slots; queueing at these resources is what produces bandwidth sharing.
* :class:`Store` — an optionally-bounded FIFO buffer of items.  Used for
  the client data queue, per-pipeline ACK queues and datanode forwarding
  buffers (where the bound models the 64 MB first-datanode buffer).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Generic, TypeVar

from .environment import Environment
from .events import Event

__all__ = ["Request", "Release", "Resource", "Store", "StorePut", "StoreGet"]

T = TypeVar("T")


class Request(Event):
    """Event granted when the resource admits this request.

    Usable as a context manager so that ``with resource.request() as req:``
    always releases, even on interrupt.
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._admit(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release the slot (or withdraw from the wait queue)."""
        self.resource.release(self)


class Release(Event):
    """Immediately-succeeding event returned by :meth:`Resource.release`."""

    __slots__ = ()


class Resource:
    """A counted resource with FIFO admission.

    ``capacity`` requests may hold the resource simultaneously; further
    requests wait in arrival order.
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self._capacity = capacity
        self._users: list[Request] = []
        self._waiting: Deque[Request] = deque()

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of requests currently holding the resource."""
        return len(self._users)

    @property
    def queue_len(self) -> int:
        """Number of requests waiting for admission."""
        return len(self._waiting)

    def request(self) -> Request:
        """Ask for a slot; the returned event fires when granted."""
        return Request(self)

    def release(self, request: Request) -> Release:
        """Give back a slot (or withdraw a waiting request)."""
        if request in self._users:
            self._users.remove(request)
            self._grant_next()
        else:
            try:
                self._waiting.remove(request)
            except ValueError:
                pass  # releasing twice is a no-op, mirroring simpy
        done = Release(self.env)
        done.succeed()
        return done

    # ------------------------------------------------------------------
    def _admit(self, request: Request) -> None:
        if len(self._users) < self._capacity:
            self._users.append(request)
            request.succeed()
        else:
            self._waiting.append(request)

    def _grant_next(self) -> None:
        while self._waiting and len(self._users) < self._capacity:
            nxt = self._waiting.popleft()
            self._users.append(nxt)
            nxt.succeed()


class StorePut(Event, Generic[T]):
    """Event fired when an item has been accepted into the store."""

    __slots__ = ("item",)

    def __init__(self, store: "Store[T]", item: T):
        super().__init__(store.env)
        self.item = item
        store._handle_put(self)


class StoreGet(Event, Generic[T]):
    """Event fired (with the item as value) when an item is available."""

    __slots__ = ("filter",)

    def __init__(self, store: "Store[T]", filter: Callable[[T], bool] | None = None):
        super().__init__(store.env)
        self.filter = filter
        store._handle_get(self)


class Store(Generic[T]):
    """FIFO buffer of items with optional capacity bound.

    ``put`` blocks (i.e. its event stays pending) while the store is full;
    ``get`` blocks while it is empty.  ``get`` accepts an optional filter
    predicate (first matching item wins) used e.g. to await a specific ACK
    sequence number.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self._capacity = capacity
        self._items: Deque[T] = deque()
        self._putters: Deque[StorePut[T]] = deque()
        self._getters: Deque[StoreGet[T]] = deque()

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def items(self) -> tuple[T, ...]:
        """Snapshot of buffered items (read-only view for assertions)."""
        return tuple(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: T) -> StorePut[T]:
        """Offer ``item``; the event fires once the store has room."""
        return StorePut(self, item)

    def get(self, filter: Callable[[T], bool] | None = None) -> StoreGet[T]:
        """Take the oldest item (matching ``filter`` if given)."""
        return StoreGet(self, filter)

    def drain(self) -> list[T]:
        """Remove and return all buffered items synchronously.

        Used by fault recovery to move un-ACKed packets back to the data
        queue (Algorithm 3 step 3 / Algorithm 4 step 2).
        """
        items = list(self._items)
        self._items.clear()
        self._wake_putters()
        return items

    # ------------------------------------------------------------------
    def _handle_put(self, event: StorePut[T]) -> None:
        if len(self._items) < self._capacity:
            self._items.append(event.item)
            event.succeed()
            self._wake_getters()
        else:
            self._putters.append(event)

    def _handle_get(self, event: StoreGet[T]) -> None:
        self._match(event)
        if event.triggered:
            self._wake_putters()
        else:
            self._getters.append(event)

    def _match(self, event: StoreGet[T]) -> None:
        """Find, remove and deliver the first item matching the getter."""
        if event.filter is None:
            if self._items:
                event.succeed(self._items.popleft())
            return
        for idx, item in enumerate(self._items):
            if event.filter(item):
                del self._items[idx]
                event.succeed(item)
                return

    def _wake_getters(self) -> None:
        if not self._getters:
            return
        pending: Deque[StoreGet[T]] = deque()
        while self._getters:
            getter = self._getters.popleft()
            self._match(getter)
            if not getter.triggered:
                pending.append(getter)
        self._getters = pending

    def _wake_putters(self) -> None:
        while self._putters and len(self._items) < self._capacity:
            putter = self._putters.popleft()
            self._items.append(putter.item)
            putter.succeed()
            self._wake_getters()
