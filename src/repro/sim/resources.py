"""Shared resources for processes: channels, counted resources, FIFO stores.

Three primitives cover everything the HDFS/SMARTH models need:

* :class:`Channel` — a serializing FIFO link modelled *analytically*: a
  ``busy_until`` timestamp instead of a grant/hold/release event chain.
  Each transfer's completion time is computed in O(1), so occupying a NIC
  or disk channel costs one heap event instead of a spawned process with a
  request/release pair.  Used for NIC egress/ingress and disk channels.
* :class:`Resource` — ``capacity`` concurrent holders, FIFO queuing.  Used
  for namenode RPC handler slots and SMARTH pipeline slots.
* :class:`Store` — an optionally-bounded FIFO buffer of items.  Used for
  the client data queue, per-pipeline ACK queues and datanode forwarding
  buffers (where the bound models the 64 MB first-datanode buffer).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Generic, Optional, TypeVar

from .environment import Environment
from .events import Event

__all__ = [
    "Channel",
    "Reservation",
    "Request",
    "Release",
    "Resource",
    "Store",
    "StorePut",
    "StoreGet",
]

T = TypeVar("T")


class Reservation(Event):
    """One committed occupancy of a :class:`Channel`.

    Fires (with itself as value) when the last byte leaves the channel.
    ``start``/``end`` are the occupancy interval quoted at creation time;
    :meth:`Channel.preempt` may move them for preemptible reservations.
    """

    __slots__ = ("channel", "size", "rate", "start", "end", "tag", "_epoch")

    def __init__(
        self,
        channel: "Channel",
        size: float,
        rate: float,
        start: float,
        end: float,
        tag: Any = None,
    ):
        super().__init__(channel.env)
        self.channel = channel
        self.size = size
        self.rate = rate
        self.start = start
        self.end = end
        self.tag = tag
        self._epoch = 0


class Channel:
    """A serializing FIFO link with analytic occupancy accounting.

    Equivalent to a capacity-1 FIFO :class:`Resource` held for
    ``size / rate`` per transfer, but closed-form: a transfer arriving at
    ``now`` starts at ``max(now, busy_until)`` and completes ``size/rate``
    later — exactly the grant time the FIFO queue would have produced,
    computed without enacting the queue event-by-event.

    Two entry points:

    * :meth:`quote` — commit an occupancy and return its completion time
      as a float.  Nothing is scheduled; the caller owns the wait.  This
      is the transport fast path (one timeout per transfer).
    * :meth:`reserve` — commit an occupancy and return a
      :class:`Reservation` event firing at completion.  Pass
      ``preemptible=True`` to allow :meth:`preempt` to re-quote it while
      in flight (``tc``-style mid-transfer rate changes).
    """

    __slots__ = ("env", "name", "_busy_until", "_in_flight", "_guard")

    def __init__(self, env: Environment, name: str = "channel"):
        self.env = env
        self.name = name
        self._busy_until = 0.0
        #: Live reservations, FIFO by start time; pruned lazily.
        self._in_flight: Deque[Reservation] = deque()
        #: Optional pre-quote hook.  A packet train holds occupancy of a
        #: channel analytically (no committed ``busy_until``); the guard
        #: lets it materialise that occupancy the instant a *foreign*
        #: caller quotes the same channel, so FIFO ordering stays exact.
        self._guard: Optional[Callable[[], None]] = None

    @property
    def busy_until(self) -> float:
        """Time at which the channel next falls idle (may be the past)."""
        return self._busy_until

    @property
    def busy(self) -> bool:
        return self._busy_until > self.env.now

    @property
    def queue_len(self) -> int:
        """Reservations quoted but not yet transmitting.

        Only event-based reservations (:meth:`reserve`) are tracked;
        :meth:`quote` occupancies are fire-and-forget.
        """
        self._prune()
        now = self.env.now
        return sum(1 for r in self._in_flight if r.start > now)

    @property
    def has_in_flight(self) -> bool:
        """Whether any event-based reservation is still in flight.

        Public accessor for preemption hooks (``quote`` occupancies are
        fire-and-forget and never show up here).
        """
        self._prune()
        return bool(self._in_flight)

    def quote(self, size: float, rate: float) -> float:
        """Commit ``size`` bytes at ``rate`` B/s; return the completion time.

        O(1): ``completion = max(now, busy_until) + size / rate``.  The
        occupancy is immutable — callers that need re-quoting on rate
        changes must use :meth:`reserve` with ``preemptible=True``.
        """
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if self._guard is not None:
            self._guard()
        now = self.env.now
        start = self._busy_until if self._busy_until > now else now
        end = start + size / rate
        self._busy_until = end
        return end

    def reserve(
        self,
        size: float,
        rate: float,
        preemptible: bool = False,
        tag: Any = None,
    ) -> Reservation:
        """Commit an occupancy and return an event firing at completion."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if self._guard is not None:
            self._guard()
        now = self.env.now
        start = self._busy_until if self._busy_until > now else now
        end = start + size / rate
        self._busy_until = end
        res = Reservation(self, size, rate, start, end, tag=tag)
        self._prune()
        self._in_flight.append(res)
        if preemptible:
            self._arm(res)
        else:
            # Timeout-style: pre-succeeded, one heap entry, immutable.
            res._ok = True
            res._value = res
            self.env.schedule_at(res, end)
        return res

    def preempt(
        self, new_rate: Callable[[Reservation], Optional[float]] | float
    ) -> int:
        """Re-quote in-flight preemptible reservations at new rates.

        ``new_rate`` is either a rate in B/s applied to every reservation
        or a callable mapping a reservation to its new rate (``None`` =
        keep the current quote).  A reservation mid-transmission keeps the
        bytes already clocked out at the old rate and sends the remainder
        at the new one; queued reservations are re-chained FIFO behind it.
        Returns the number of reservations whose quotes moved.  Immutable
        reservations (:meth:`quote` / non-preemptible) are untouched, so
        the default transport path keeps the documented semantics:
        in-flight packets finish at the rate they started with.
        """
        rate_for = (
            new_rate if callable(new_rate) else (lambda _res: new_rate)
        )
        now = self.env.now
        self._prune()
        moved = 0
        prev_end = 0.0
        for res in self._in_flight:
            if res.triggered:
                # Immutable (pre-succeeded) reservation: its quote stands.
                prev_end = res.end
                continue
            rate = rate_for(res)
            if rate is None:
                rate = res.rate
            elif rate <= 0:
                raise ValueError(f"rate must be positive, got {rate}")
            if res.start <= now < res.end:
                # Mid-transmission: finish the remaining bytes at the new
                # rate (tc re-clocks the shaped class's in-flight frames).
                done = (now - res.start) * res.rate
                end = now + max(res.size - done, 0.0) / rate
            else:
                # Queued: restart the FIFO chain behind its predecessor.
                start = prev_end if prev_end > now else now
                res.start = start
                end = start + res.size / rate
            if end != res.end or rate != res.rate:
                res.rate = rate
                res.end = end
                self._arm(res)
                moved += 1
            prev_end = res.end
        if self._in_flight:
            self._busy_until = self._in_flight[-1].end
        return moved

    # ------------------------------------------------------------------
    def _arm(self, res: Reservation) -> None:
        """(Re)schedule a preemptible reservation's completion."""
        res._epoch += 1
        epoch = res._epoch
        fire = Event(self.env)
        fire._ok = True
        fire._value = None
        fire.callbacks.append(
            lambda _e, res=res, epoch=epoch: self._fire(res, epoch)
        )
        self.env.schedule_at(fire, res.end)

    def _fire(self, res: Reservation, epoch: int) -> None:
        if epoch == res._epoch and not res.triggered:
            res.succeed(res)

    def _prune(self) -> None:
        now = self.env.now
        while self._in_flight and self._in_flight[0].end <= now:
            self._in_flight.popleft()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Channel {self.name} busy_until={self._busy_until:.6f} "
            f"in_flight={len(self._in_flight)}>"
        )


class Request(Event):
    """Event granted when the resource admits this request.

    Usable as a context manager so that ``with resource.request() as req:``
    always releases, even on interrupt.
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.env)
        self.resource = resource
        resource._admit(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release the slot (or withdraw from the wait queue)."""
        self.resource.release(self)


class Release(Event):
    """Immediately-succeeding event returned by :meth:`Resource.release`."""

    __slots__ = ()


class Resource:
    """A counted resource with FIFO admission.

    ``capacity`` requests may hold the resource simultaneously; further
    requests wait in arrival order.
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self._capacity = capacity
        self._users: list[Request] = []
        self._waiting: Deque[Request] = deque()

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of requests currently holding the resource."""
        return len(self._users)

    @property
    def queue_len(self) -> int:
        """Number of requests waiting for admission."""
        return len(self._waiting)

    def request(self) -> Request:
        """Ask for a slot; the returned event fires when granted."""
        return Request(self)

    def release(self, request: Request) -> Release:
        """Give back a slot (or withdraw a waiting request)."""
        if request in self._users:
            self._users.remove(request)
            self._grant_next()
        else:
            try:
                self._waiting.remove(request)
            except ValueError:
                pass  # releasing twice is a no-op, mirroring simpy
        return Release(self.env)._succeed_sync()

    # ------------------------------------------------------------------
    def _admit(self, request: Request) -> None:
        if len(self._users) < self._capacity:
            self._users.append(request)
            # Immediate grant: nobody has subscribed yet, so complete the
            # event synchronously instead of round-tripping the heap.
            request._succeed_sync()
        else:
            self._waiting.append(request)

    def _grant_next(self) -> None:
        while self._waiting and len(self._users) < self._capacity:
            nxt = self._waiting.popleft()
            self._users.append(nxt)
            nxt.succeed()


class StorePut(Event, Generic[T]):
    """Event fired when an item has been accepted into the store."""

    __slots__ = ("item",)

    def __init__(self, store: "Store[T]", item: T):
        super().__init__(store.env)
        self.item = item
        store._handle_put(self)


class StoreGet(Event, Generic[T]):
    """Event fired (with the item as value) when an item is available."""

    __slots__ = ("filter",)

    def __init__(self, store: "Store[T]", filter: Callable[[T], bool] | None = None):
        super().__init__(store.env)
        self.filter = filter
        store._handle_get(self)


class Store(Generic[T]):
    """FIFO buffer of items with optional capacity bound.

    ``put`` blocks (i.e. its event stays pending) while the store is full;
    ``get`` blocks while it is empty.  ``get`` accepts an optional filter
    predicate (first matching item wins) used e.g. to await a specific ACK
    sequence number.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self._capacity = capacity
        self._items: Deque[T] = deque()
        self._putters: Deque[StorePut[T]] = deque()
        self._getters: Deque[StoreGet[T]] = deque()

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def items(self) -> tuple[T, ...]:
        """Snapshot of buffered items (read-only view for assertions)."""
        return tuple(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: T) -> StorePut[T]:
        """Offer ``item``; the event fires once the store has room."""
        return StorePut(self, item)

    def get(self, filter: Callable[[T], bool] | None = None) -> StoreGet[T]:
        """Take the oldest item (matching ``filter`` if given)."""
        return StoreGet(self, filter)

    def drain(self) -> list[T]:
        """Remove and return all buffered items synchronously.

        Used by fault recovery to move un-ACKed packets back to the data
        queue (Algorithm 3 step 3 / Algorithm 4 step 2).
        """
        items = list(self._items)
        self._items.clear()
        self._wake_putters()
        return items

    # ------------------------------------------------------------------
    def _handle_put(self, event: StorePut[T]) -> None:
        # Immediate completions (the overwhelmingly common case in the
        # packet hot loop) are processed synchronously: the event has no
        # subscribers yet, so scheduling it would only push the caller's
        # continuation through the heap for nothing.
        if len(self._items) < self._capacity:
            self._items.append(event.item)
            event._succeed_sync()
            self._wake_getters()
        else:
            self._putters.append(event)

    def _handle_get(self, event: StoreGet[T]) -> None:
        self._match(event, sync=True)
        if event.triggered:
            self._wake_putters()
        else:
            self._getters.append(event)

    def _match(self, event: StoreGet[T], sync: bool = False) -> None:
        """Find, remove and deliver the first item matching the getter.

        ``sync`` is True only for a brand-new getter (no subscribers);
        woken getters have waiters and must go through the queue.
        """
        if event.filter is None:
            if self._items:
                item = self._items.popleft()
                event._succeed_sync(item) if sync else event.succeed(item)
            return
        for idx, item in enumerate(self._items):
            if event.filter(item):
                del self._items[idx]
                event._succeed_sync(item) if sync else event.succeed(item)
                return

    def _wake_getters(self) -> None:
        if not self._getters:
            return
        pending: Deque[StoreGet[T]] = deque()
        while self._getters:
            getter = self._getters.popleft()
            self._match(getter)
            if not getter.triggered:
                pending.append(getter)
        self._getters = pending

    def _wake_putters(self) -> None:
        while self._putters and len(self._items) < self._capacity:
            putter = self._putters.popleft()
            self._items.append(putter.item)
            putter.succeed()
            self._wake_getters()
