"""Machine substrate: EC2 instance types, disks, nodes, cluster builders."""

from .builder import Cluster, build_custom, build_heterogeneous, build_homogeneous
from .disk import Disk
from .instance import (
    INSTANCE_CATALOG,
    LARGE,
    MEDIUM,
    SMALL,
    STORAGE_PRESETS,
    InstanceType,
    instance_by_name,
    with_storage,
)
from .node import Node

__all__ = [
    "Cluster",
    "build_homogeneous",
    "build_heterogeneous",
    "build_custom",
    "Node",
    "Disk",
    "InstanceType",
    "SMALL",
    "MEDIUM",
    "LARGE",
    "INSTANCE_CATALOG",
    "instance_by_name",
    "STORAGE_PRESETS",
    "with_storage",
]
