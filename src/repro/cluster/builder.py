"""Cluster construction: the four evaluation clusters from §V-A.

The paper uses:

* three homogeneous clusters — one namenode + nine datanodes, of small,
  medium or large instances;
* one heterogeneous cluster — 3 small + 4 medium + 3 large, with a medium
  instance as namenode (leaving 3 small + 3 medium + 3 large datanodes).

The uploading *client* is a separate machine of the cluster's instance
type (medium for the heterogeneous cluster, matching the namenode's
type).  Nodes are split across two racks for the two-rack experiments:
the client, namenode and the first ⌈n/2⌉ datanodes sit in ``rack0``, the
rest in ``rack1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import SimulationConfig
from ..net.throttle import NodeThrottle, RackBoundaryThrottle
from ..net.topology import Topology
from ..net.transport import Network
from ..sim import Environment
from ..units import mbps
from .instance import LARGE, MEDIUM, SMALL, InstanceType, instance_by_name
from .node import Node

__all__ = ["Cluster", "build_homogeneous", "build_heterogeneous", "build_custom"]


@dataclass
class Cluster:
    """The physical substrate an HDFS deployment runs on."""

    env: Environment
    network: Network
    namenode_host: Node
    datanode_hosts: list[Node]
    client_host: Node
    config: SimulationConfig
    extra_client_hosts: list[Node] = field(default_factory=list)

    @property
    def topology(self) -> Topology:
        return self.network.topology

    @property
    def all_hosts(self) -> list[Node]:
        return (
            [self.namenode_host, self.client_host]
            + self.extra_client_hosts
            + self.datanode_hosts
        )

    def host(self, name: str) -> Node:
        """Look up any host by name."""
        for node in self.all_hosts:
            if node.name == name:
                return node
        raise KeyError(f"unknown host {name!r}")

    def datanode_host(self, name: str) -> Node:
        for node in self.datanode_hosts:
            if node.name == name:
                return node
        raise KeyError(f"unknown datanode host {name!r}")

    # -- tc-style throttling helpers ---------------------------------------
    def throttle_rack_boundary(self, rate_mbps: float) -> None:
        """Cap cross-rack traffic (two-rack scenario, §V-B.1)."""
        self.network.throttles.add(RackBoundaryThrottle(mbps(rate_mbps)))

    def throttle_node(self, name: str, rate_mbps: float) -> None:
        """Cap one node's traffic in both directions (§V-B.2)."""
        self.host(name)  # validate
        self.network.throttles.add(NodeThrottle(name, mbps(rate_mbps)))

    def throttle_datanodes(self, count: int, rate_mbps: float) -> list[str]:
        """Cap the *last* ``count`` datanodes; returns their names.

        Throttling the tail of the datanode list keeps the throttled set
        deterministic and spread across both racks (the list alternates
        by construction order, not rack).
        """
        if not 0 <= count <= len(self.datanode_hosts):
            raise ValueError(
                f"count must be in [0, {len(self.datanode_hosts)}], got {count}"
            )
        chosen = [n.name for n in self.datanode_hosts[-count:]] if count else []
        for name in chosen:
            self.throttle_node(name, rate_mbps)
        return chosen


def _resolve(instance: InstanceType | str) -> InstanceType:
    return instance_by_name(instance) if isinstance(instance, str) else instance


def build_homogeneous(
    env: Environment,
    instance: InstanceType | str = SMALL,
    n_datanodes: int = 9,
    config: SimulationConfig | None = None,
    racks: int = 2,
    n_local: int | None = None,
    n_extra_clients: int = 0,
) -> Cluster:
    """One namenode + ``n_datanodes`` datanodes + one client, all of one type.

    The namenode and client live in ``rack0`` together with ``n_local``
    datanodes; the rest go to ``rack1`` (and further racks round-robin).
    ``n_local`` defaults to a balanced split (⌈n/2⌉ — the paper does not
    state its split, and EC2 'racks' were emulated with tc, so balanced is
    the natural reading; 9 datanodes → 5 local + 4 remote).  Pass a
    different ``n_local`` to study asymmetric layouts.
    """
    itype = _resolve(instance)
    if n_datanodes < 1:
        raise ValueError("need at least one datanode")
    if racks < 1:
        raise ValueError("need at least one rack")
    config = config or SimulationConfig()
    if n_local is None:
        n_local = n_datanodes - n_datanodes // 2
    if not 0 <= n_local <= n_datanodes:
        raise ValueError(f"n_local must be in [0, {n_datanodes}]")

    topo = Topology()
    namenode = Node(env, "namenode", itype, rack="rack0")
    client = Node(env, "client", itype, rack="rack0")
    topo.add_host("namenode", "rack0")
    topo.add_host("client", "rack0")

    extra_clients = []
    for i in range(n_extra_clients):
        name = f"client{i + 1}"
        extra = Node(env, name, itype, rack="rack0")
        topo.add_host(name, "rack0")
        extra_clients.append(extra)

    datanodes = []
    for i in range(n_datanodes):
        if racks == 1 or i < n_local:
            rack = "rack0"
        else:
            rack = f"rack{1 + (i - n_local) % (racks - 1)}"
        node = Node(env, f"dn{i}", itype, rack=rack)
        topo.add_host(node.name, rack)
        datanodes.append(node)

    network = Network(env, topo, config=config.network)
    return Cluster(
        env=env,
        network=network,
        namenode_host=namenode,
        datanode_hosts=datanodes,
        client_host=client,
        config=config,
        extra_client_hosts=extra_clients,
    )


def build_heterogeneous(
    env: Environment,
    config: SimulationConfig | None = None,
    racks: int = 2,
) -> Cluster:
    """The paper's mixed cluster: 3 small + 3 medium + 3 large datanodes.

    One medium instance is the namenode (§V-A); the client is medium too.
    Instance types interleave across the balanced two-rack split so
    neither rack is uniformly fast.
    """
    config = config or SimulationConfig()
    topo = Topology()
    namenode = Node(env, "namenode", MEDIUM, rack="rack0")
    client = Node(env, "client", MEDIUM, rack="rack0")
    topo.add_host("namenode", "rack0")
    topo.add_host("client", "rack0")

    mix = [SMALL, MEDIUM, LARGE] * 3
    n_local = len(mix) - len(mix) // 2
    datanodes = []
    for i, itype in enumerate(mix):
        if racks == 1 or i < n_local:
            rack = "rack0"
        else:
            rack = f"rack{1 + (i - n_local) % (racks - 1)}"
        node = Node(env, f"dn{i}", itype, rack=rack)
        topo.add_host(node.name, rack)
        datanodes.append(node)

    network = Network(env, topo, config=config.network)
    return Cluster(
        env=env,
        network=network,
        namenode_host=namenode,
        datanode_hosts=datanodes,
        client_host=client,
        config=config,
    )


def build_custom(
    env: Environment,
    datanode_specs: list[tuple[str, InstanceType | str, str]],
    client_instance: InstanceType | str = MEDIUM,
    namenode_instance: InstanceType | str = MEDIUM,
    config: SimulationConfig | None = None,
    client_rack: str = "rack0",
) -> Cluster:
    """Fully explicit layout: ``datanode_specs`` is [(name, type, rack), …]."""
    if not datanode_specs:
        raise ValueError("need at least one datanode spec")
    config = config or SimulationConfig()
    topo = Topology()

    namenode = Node(env, "namenode", _resolve(namenode_instance), rack=client_rack)
    client = Node(env, "client", _resolve(client_instance), rack=client_rack)
    topo.add_host("namenode", client_rack)
    topo.add_host("client", client_rack)

    datanodes = []
    for name, itype, rack in datanode_specs:
        node = Node(env, name, _resolve(itype), rack=rack)
        topo.add_host(name, rack)
        datanodes.append(node)

    network = Network(env, topo, config=config.network)
    return Cluster(
        env=env,
        network=network,
        namenode_host=namenode,
        datanode_hosts=datanodes,
        client_host=client,
        config=config,
    )
