"""Local-disk model.

A datanode writes each received packet to its ephemeral store (``T_w`` in
the paper's cost model, §III-D).  The disk is a serializing channel at a
fixed sequential-write rate; concurrent writers queue, so a node receiving
blocks from several pipelines (not allowed for one client in SMARTH, but
possible across clients) shares disk bandwidth realistically.
"""

from __future__ import annotations

from ..sim import Channel, Environment, ProcessGenerator

__all__ = ["Disk"]


class Disk:
    """A serializing write channel with a fixed rate.

    Occupancy is quoted analytically through :class:`~repro.sim.Channel`
    (the same FIFO fast path as NIC channels): a write admitted behind
    ``busy_until`` starts there and holds ``size / rate``, all computed in
    O(1) with a single completion timeout.
    """

    def __init__(self, env: Environment, rate: float, name: str = "disk"):
        if rate <= 0:
            raise ValueError(f"disk rate must be positive, got {rate}")
        self.env = env
        self.rate = float(rate)
        self.name = name
        self._channel = Channel(env, name=name)
        self.bytes_written = 0
        self.bytes_read = 0

    def write(self, size: int) -> ProcessGenerator:
        """Write ``size`` bytes; takes ``size / rate`` once admitted."""
        if size < 0:
            raise ValueError(f"write size must be non-negative, got {size}")
        end = self._channel.quote(size, self.rate)
        self.bytes_written += size
        yield self.env.timeout_at(end)

    def write_event(self, size: int):
        """Commit a write and return the event firing at its completion.

        The datanode receive loop issues one of these per packet; an event
        costs one heap entry where a spawned ``write`` process costs three
        (init, timeout, termination) plus the generator.
        """
        if size < 0:
            raise ValueError(f"write size must be non-negative, got {size}")
        res = self._channel.reserve(size, self.rate)
        self.bytes_written += size
        return res

    def read(self, size: int) -> ProcessGenerator:
        """Read ``size`` bytes; shares the sequential channel with writes."""
        if size < 0:
            raise ValueError(f"read size must be non-negative, got {size}")
        end = self._channel.quote(size, self.rate)
        self.bytes_read += size
        yield self.env.timeout_at(end)

    def read_event(self, size: int):
        """Commit a read and return the event firing at its completion.

        The read serve loop issues one of these per chunk; like
        :meth:`write_event` it costs one heap entry where a spawned
        ``read`` process costs three plus the generator.
        """
        if size < 0:
            raise ValueError(f"read size must be non-negative, got {size}")
        res = self._channel.reserve(size, self.rate)
        self.bytes_read += size
        return res

    @property
    def queue_len(self) -> int:
        """Writes waiting for the channel (used to detect disk pressure).

        Analytic channels do not track individual quotes; approximate
        pressure as whether the channel is backed up past *now*.
        """
        return 1 if self._channel.busy_until > self.env.now else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Disk {self.name} rate={self.rate:.0f} B/s>"
