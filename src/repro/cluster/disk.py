"""Local-disk model.

A datanode writes each received packet to its ephemeral store (``T_w`` in
the paper's cost model, §III-D).  The disk is a serializing channel at a
fixed sequential-write rate; concurrent writers queue, so a node receiving
blocks from several pipelines (not allowed for one client in SMARTH, but
possible across clients) shares disk bandwidth realistically.
"""

from __future__ import annotations

from ..sim import Environment, ProcessGenerator, Resource

__all__ = ["Disk"]


class Disk:
    """A serializing write channel with a fixed rate."""

    def __init__(self, env: Environment, rate: float, name: str = "disk"):
        if rate <= 0:
            raise ValueError(f"disk rate must be positive, got {rate}")
        self.env = env
        self.rate = float(rate)
        self.name = name
        self._channel = Resource(env, capacity=1)
        self.bytes_written = 0
        self.bytes_read = 0

    def write(self, size: int) -> ProcessGenerator:
        """Write ``size`` bytes; takes ``size / rate`` once admitted."""
        if size < 0:
            raise ValueError(f"write size must be non-negative, got {size}")
        with self._channel.request() as grant:
            yield grant
            yield self.env.timeout(size / self.rate)
            self.bytes_written += size

    def read(self, size: int) -> ProcessGenerator:
        """Read ``size`` bytes; shares the sequential channel with writes."""
        if size < 0:
            raise ValueError(f"read size must be non-negative, got {size}")
        with self._channel.request() as grant:
            yield grant
            yield self.env.timeout(size / self.rate)
            self.bytes_read += size

    @property
    def queue_len(self) -> int:
        """Writes waiting for the channel (used to detect disk pressure)."""
        return self._channel.queue_len

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Disk {self.name} rate={self.rate:.0f} B/s>"
