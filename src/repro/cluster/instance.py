"""Amazon EC2 instance catalog — the paper's Table I.

+---------------+---------+------+--------------------+
| Instance Type | Memory  | ECUs | Network            |
+===============+=========+======+====================+
| Small         | 1.7 GB  | 1    | ≈ 216 Mbps         |
| Medium        | 3.75 GB | 2    | ≈ 376 Mbps         |
| Large         | 7.5 GB  | 4    | ≈ 376 Mbps         |
+---------------+---------+------+--------------------+

One ECU ≈ a 1.0–1.2 GHz 2007 Opteron/Xeon core.  Beyond Table I the model
needs two rates the paper discusses but does not tabulate:

* ``disk_rate`` — EC2 ephemeral-storage sequential write throughput
  (``T_w`` per packet).  Era-appropriate ephemeral disks sustain roughly
  90–120 MB/s; we use 100 MB/s so the disk is never the bottleneck (the
  paper's experiments are all network-bound).
* ``production_rate`` — how fast the client can read local data, checksum
  it and form packets (``T_c`` per packet).  §III-D observes "to produce
  a packet is very fast compared with the speed to send a packet", so the
  rate scales with ECUs and comfortably exceeds every NIC.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import MB, gigabytes, mbps

__all__ = [
    "InstanceType",
    "SMALL",
    "MEDIUM",
    "LARGE",
    "INSTANCE_CATALOG",
    "instance_by_name",
    "STORAGE_PRESETS",
    "with_storage",
]


@dataclass(frozen=True)
class InstanceType:
    """Static description of an EC2 instance type."""

    name: str
    #: RAM in bytes (Table I).
    memory: int
    #: Elastic Compute Units (Table I).
    ecus: int
    #: NIC line rate, bytes/second (Table I "Network" column).
    network_rate: float
    #: Ephemeral-storage sequential write rate, bytes/second.
    disk_rate: float
    #: Packet production rate (local read + checksum), bytes/second.
    production_rate: float

    def __post_init__(self) -> None:
        if self.memory <= 0 or self.ecus <= 0:
            raise ValueError("memory and ecus must be positive")
        if min(self.network_rate, self.disk_rate, self.production_rate) <= 0:
            raise ValueError("all rates must be positive")


SMALL = InstanceType(
    name="small",
    memory=int(gigabytes(1.7)),
    ecus=1,
    network_rate=mbps(216),
    disk_rate=100 * MB,
    production_rate=400 * MB,
)

MEDIUM = InstanceType(
    name="medium",
    memory=int(gigabytes(3.75)),
    ecus=2,
    network_rate=mbps(376),
    disk_rate=100 * MB,
    production_rate=800 * MB,
)

LARGE = InstanceType(
    name="large",
    memory=int(gigabytes(7.5)),
    ecus=4,
    network_rate=mbps(376),
    disk_rate=100 * MB,
    production_rate=1600 * MB,
)

INSTANCE_CATALOG: dict[str, InstanceType] = {
    t.name: t for t in (SMALL, MEDIUM, LARGE)
}


#: Storage-platform presets (the paper's future work mentions evaluating
#: SMARTH on RAID and SSD): sequential-write rates in bytes/second.
STORAGE_PRESETS: dict[str, float] = {
    "hdd-slow": 20 * MB,  # a tired magnetic disk — below every NIC rate
    "ephemeral": 100 * MB,  # EC2 ephemeral storage (the default)
    "ssd": 400 * MB,
    "raid0": 800 * MB,
}


def with_storage(base: InstanceType, storage: str | float) -> InstanceType:
    """A copy of ``base`` on a different storage platform.

    ``storage`` is a :data:`STORAGE_PRESETS` key or a rate in bytes/second.
    """
    from dataclasses import replace

    if isinstance(storage, str):
        try:
            rate = STORAGE_PRESETS[storage]
        except KeyError:
            raise KeyError(
                f"unknown storage preset {storage!r}; expected one of "
                f"{sorted(STORAGE_PRESETS)}"
            ) from None
        label = storage
    else:
        rate = float(storage)
        label = f"{rate / MB:g}MBps"
    return replace(base, name=f"{base.name}+{label}", disk_rate=rate)


def instance_by_name(name: str) -> InstanceType:
    """Look up an instance type by its Table I name (case-insensitive)."""
    try:
        return INSTANCE_CATALOG[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown instance type {name!r}; expected one of "
            f"{sorted(INSTANCE_CATALOG)}"
        ) from None
