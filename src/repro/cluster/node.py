"""A physical (virtual) machine: NIC + disk + CPU + rack placement.

Nodes are pure substrate — they know nothing about HDFS.  The HDFS layer
instantiates namenode/datanode/client *services* on top of nodes.
"""

from __future__ import annotations

from ..sim import Environment, ProcessGenerator
from .disk import Disk
from .instance import InstanceType
from ..net.nic import NIC

__all__ = ["Node"]


class Node:
    """One machine in the cluster."""

    def __init__(
        self,
        env: Environment,
        name: str,
        instance: InstanceType,
        rack: str,
    ):
        if not name:
            raise ValueError("node name must be non-empty")
        self.env = env
        self.name = name
        self.instance = instance
        self.rack = rack
        self.nic = NIC(env, instance.network_rate, name=f"{name}.nic")
        self.disk = Disk(env, instance.disk_rate, name=f"{name}.disk")
        #: Set False by the fault injector; services must check it.
        self.alive = True

    def produce(self, size: int) -> ProcessGenerator:
        """Model packet production (``T_c``): local read + checksum.

        Production happens on the client's CPU at the instance's
        production rate; it is not a shared resource because the DataStreamer
        is a single thread producing packets sequentially.
        """
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        yield self.env.timeout(size / self.instance.production_rate)

    def fail(self) -> None:
        """Mark the machine dead (fault injection)."""
        self.alive = False

    def recover(self) -> None:
        """Bring the machine back (fault injection)."""
        self.alive = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "up" if self.alive else "DOWN"
        return f"<Node {self.name} ({self.instance.name}, rack={self.rack}, {status})>"
