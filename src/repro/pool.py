"""Shared process-pool fan-out with named-task failure reporting.

Both places the simulator farms work out to child processes — the
experiment runner's ``run_all --jobs`` and the sharded scale executor in
:mod:`repro.workloads.sharded` — need the same contract: results return
in task order, a child failure names *which* task died (no silent
``None`` holes to hole-check downstream), and ``jobs=1`` degrades to a
plain sequential loop with identical semantics.  This module is that one
implementation.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, Optional, Sequence

__all__ = ["WorkerFailure", "map_named"]


class WorkerFailure(RuntimeError):
    """One or more pool tasks failed.

    Carries the first failed task's name and exception (``__cause__`` is
    chained for the traceback) plus every failed name, so a 30-task
    fan-out reports "fig7 failed", not a bare pickle of the exception.
    """

    def __init__(self, name: str, cause: BaseException, all_failed: Sequence[str]):
        detail = ""
        if len(all_failed) > 1:
            detail = f" (failed tasks: {', '.join(all_failed)})"
        super().__init__(f"worker task {name!r} failed: {cause!r}{detail}")
        self.name = name
        self.cause = cause
        self.failed_names = tuple(all_failed)


def map_named(
    fn: Callable[..., Any],
    tasks: Sequence[tuple[str, tuple]],
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
) -> list[Any]:
    """Run ``fn(*args)`` for every ``(name, args)`` task; results in order.

    ``jobs == 1`` (or a single task) runs sequentially in-process, calling
    ``progress`` with each task's name *before* it starts; ``jobs > 1``
    submits to a :class:`ProcessPoolExecutor` of that many workers and
    calls ``progress`` as tasks *complete* (``fn`` and every ``args``
    element must pickle).  Any child failure raises
    :class:`WorkerFailure` naming the earliest failed task in input
    order — callers never receive a partially-``None`` result list.
    """
    names = [name for name, _ in tasks]
    if len(set(names)) != len(names):
        raise ValueError(f"task names must be unique, got {names}")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")

    if jobs == 1 or len(tasks) <= 1:
        results = []
        for name, args in tasks:
            if progress:
                progress(name)
            try:
                results.append(fn(*args))
            except Exception as exc:
                raise WorkerFailure(name, exc, [name]) from exc
        return results

    with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
        futures = {pool.submit(fn, *args): name for name, args in tasks}
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            if progress:
                for future in done:
                    progress(futures[future])
        by_name: dict[str, Any] = {}
        failed: list[tuple[str, BaseException]] = []
        for future, name in futures.items():
            exc = future.exception()
            if exc is not None:
                failed.append((name, exc))
            else:
                by_name[name] = future.result()

    if failed:
        failed.sort(key=lambda item: names.index(item[0]))
        first_name, first_exc = failed[0]
        raise WorkerFailure(
            first_name, first_exc, [name for name, _ in failed]
        ) from first_exc
    return [by_name[name] for name in names]
