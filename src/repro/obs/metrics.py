"""Aggregate metrics recorded alongside the span trace.

Three instrument kinds, mirroring what the paper's evaluation actually
reports: **counters** for monotone event counts (``pipelines_opened``,
``train_invalidation_count``), **gauges** for levels sampled over
simulated time (``pipelines_live`` with its high-water mark), and
**histograms** for latency distributions (``fnfa_latency``,
``recovery_duration``).

Like the tracer, a disabled registry short-circuits after one predicate
check, and everything it stores is deterministic: instruments render in
name-sorted order and histogram statistics are simple arithmetic over
the observation list, so a fixed seed yields a byte-identical summary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DISABLED_METRICS",
    "publish_env_health",
    "labelled",
    "window_bucket",
]


def labelled(name: str, **labels: object) -> str:
    """Render a metric name with labels: ``name{k=v,...}``, keys sorted.

    Sorting makes the rendered name deterministic regardless of keyword
    order at the call site, so per-tenant-class instruments land at stable
    positions in the name-sorted summary.
    """
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def window_bucket(name: str, when: float, width: float) -> str:
    """Bucket a metric name by time window: ``name[NNNNNN]``.

    ``when`` (simulated seconds) falls into window ``floor(when / width)``;
    the index is zero-padded to six digits so windows sort numerically in
    the name-sorted metrics summary.  The ingest service uses this for
    per-window latency histograms over multi-day horizons.
    """
    if width <= 0:
        raise ValueError(f"window width must be positive, got {width}")
    return f"{name}[{int(when // width):06d}]"


@dataclass
class Counter:
    name: str
    value: float = 0.0


@dataclass
class Gauge:
    """A sampled level; tracks the maximum it ever reached."""

    name: str
    value: float = 0.0
    max_value: float = 0.0


@dataclass
class Histogram:
    name: str
    observations: list = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.observations)

    @property
    def total(self) -> float:
        return sum(self.observations)

    @property
    def mean(self) -> float:
        return self.total / len(self.observations) if self.observations else 0.0

    @property
    def minimum(self) -> float:
        return min(self.observations) if self.observations else 0.0

    @property
    def maximum(self) -> float:
        return max(self.observations) if self.observations else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (``q`` in [0, 100]) of the observations.

        Nearest-rank is exact and deterministic (no interpolation), which
        keeps SLO tables byte-stable across platforms.  Returns 0.0 for an
        empty histogram.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.observations:
            return 0.0
        ordered = sorted(self.observations)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]


class MetricsRegistry:
    """Named counters/gauges/histograms with lazy instrument creation."""

    __slots__ = ("_enabled", "_counters", "_gauges", "_histograms")

    def __init__(self, enabled: bool = False):
        self._enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    @property
    def enabled(self) -> bool:
        return self._enabled

    # -- recording ---------------------------------------------------------
    def count(self, name: str, delta: float = 1.0) -> None:
        if not self._enabled:
            return
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        counter.value += delta

    def gauge(self, name: str, delta: float) -> None:
        """Move gauge ``name`` by ``delta`` (e.g. +1 on open, -1 on close)."""
        if not self._enabled:
            return
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        gauge.value += delta
        if gauge.value > gauge.max_value:
            gauge.max_value = gauge.value

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to an absolute level (high-water tracked)."""
        if not self._enabled:
            return
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        gauge.value = value
        if gauge.value > gauge.max_value:
            gauge.max_value = gauge.value

    def observe(self, name: str, value: float) -> None:
        if not self._enabled:
            return
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        histogram.observations.append(value)

    # -- reading -----------------------------------------------------------
    def counters(self) -> tuple[Counter, ...]:
        return tuple(self._counters[k] for k in sorted(self._counters))

    def gauges(self) -> tuple[Gauge, ...]:
        return tuple(self._gauges[k] for k in sorted(self._gauges))

    def histograms(self) -> tuple[Histogram, ...]:
        return tuple(self._histograms[k] for k in sorted(self._histograms))

    def counter_value(self, name: str) -> float:
        counter = self._counters.get(name)
        return counter.value if counter else 0.0

    def histogram(self, name: str) -> Histogram:
        return self._histograms.get(name) or Histogram(name)

    # -- snapshot protocol -------------------------------------------------
    def export_state(self) -> dict:
        """Plain-data instrument contents for checkpointing."""
        return {
            "enabled": self._enabled,
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {
                n: (g.value, g.max_value) for n, g in self._gauges.items()
            },
            "histograms": {
                n: list(h.observations) for n, h in self._histograms.items()
            },
        }

    def restore_state(self, state: dict) -> None:
        self._enabled = bool(state["enabled"])
        self._counters = {
            n: Counter(n, v) for n, v in state["counters"].items()
        }
        self._gauges = {
            n: Gauge(n, v, mx) for n, (v, mx) in state["gauges"].items()
        }
        self._histograms = {
            n: Histogram(n, list(obs))
            for n, obs in state["histograms"].items()
        }

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)


#: Shared no-op registry, mirroring ``DISABLED_TRACER``.
DISABLED_METRICS = MetricsRegistry(enabled=False)


#: Scalar counters published verbatim from ``Environment.health()``.
_ENV_HEALTH_KEYS = (
    "events_dispatched",
    "tombstones_skipped",
    "compactions_run",
    "heap_high_water",
    "inter_shard_messages",
    "window_barriers",
    "window_events",
    "window_batch_max",
    "window_batch_mean",
    "window_workers",
    "shard_imbalance",
)


def publish_env_health(env, metrics: MetricsRegistry) -> None:
    """Publish an environment's event-loop health counters as gauges.

    Gauges land under ``sim.env.*`` (``events_dispatched``,
    ``tombstones_skipped``, ``compactions_run``, ``heap_high_water``);
    a :class:`~repro.sim.ShardedEnvironment` additionally publishes
    ``sim.env.shard<k>.events`` per shard plus the inter-shard message
    and window-barrier totals and the windowed-execution gauges
    (``window_events``, ``window_batch_max``, ``window_batch_mean``,
    ``window_workers``), so shard imbalance and barrier batch shape
    show up directly in metrics summaries and trace exports.
    """
    if not metrics.enabled:
        return
    health = env.health()
    for key in _ENV_HEALTH_KEYS:
        if key in health:
            metrics.set_gauge(f"sim.env.{key}", health[key])
    for shard, events in enumerate(health.get("shard_events", ())):
        metrics.set_gauge(f"sim.env.shard{shard}.events", events)
