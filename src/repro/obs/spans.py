"""Simulator-time span tracing (the core of :mod:`repro.obs`).

A :class:`Tracer` records nested :class:`Span` intervals over *simulated*
time — upload → block → pipeline → {stream, store, forward, ack,
recovery} on the data path, {allocate, rank, heartbeat} on the namenode —
plus instant markers mirrored from the protocol
:class:`~repro.analysis.trace.Journal`.  Spans are addressed by

* an **actor** (the Chrome-trace *process*): ``client:<name>``,
  ``datanode:<name>``, ``namenode``, or ``journal`` for mirrored events;
* a **track** (the Chrome-trace *thread*): one lane of strictly nested
  intervals, e.g. ``b7`` for a block's client-side lifecycle or
  ``b7:store`` for one receiver's store machinery.

Design constraints, in order:

1. **Free when disabled.**  Every recording method starts with one
   ``enabled`` check and instrumentation points sit at span granularity
   (per block / pipeline / RPC), never inside the per-packet hot loop, so
   a disabled tracer costs a handful of predicate calls per block —
   within the noise of ``benchmarks/perf_floor.json``.
2. **Deterministic.**  All timestamps are simulated seconds; span ids are
   assigned in begin order; nothing reads wall clocks or iterates sets.
   Two runs of the same seed produce byte-identical exports, and the
   packet-train fast path records the same spans (same times, same args)
   as the legacy per-packet loop.
3. **Out-of-order friendly.**  The analytic packet train knows span end
   times before the simulation clock reaches them, so :meth:`Tracer.end`
   accepts an explicit timestamp; exporters canonicalize order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..analysis.trace import Journal, TraceEvent

__all__ = ["Span", "Instant", "Tracer", "DISABLED_TRACER"]


@dataclass
class Span:
    """One named interval on an actor's track."""

    id: int
    name: str
    actor: str
    track: str
    start: float
    end: Optional[float] = None
    parent: int = 0  #: enclosing span id (0 = top-level)
    args: dict = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start


@dataclass(frozen=True)
class Instant:
    """A zero-duration marker (mirrored journal milestones)."""

    name: str
    actor: str
    track: str
    time: float
    args: dict = field(default_factory=dict)


class Tracer:
    """Records spans and instants over simulated time.

    ``begin`` returns a span id (``0`` when disabled — a valid no-op
    handle for ``end``).  ``end`` on an already-closed span is a no-op,
    which lets teardown paths close spans defensively.
    """

    __slots__ = ("_enabled", "_spans", "_instants", "_next_id")

    def __init__(self, enabled: bool = False):
        self._enabled = enabled
        self._spans: dict[int, Span] = {}
        self._instants: list[Instant] = []
        self._next_id = 1

    # -- control -----------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    # -- recording ---------------------------------------------------------
    def begin(
        self,
        name: str,
        actor: str,
        track: str,
        t: float,
        parent: int = 0,
        **args: object,
    ) -> int:
        """Open a span at simulated time ``t``; returns its id (0 if off)."""
        if not self._enabled:
            return 0
        sid = self._next_id
        self._next_id += 1
        self._spans[sid] = Span(
            id=sid, name=name, actor=actor, track=track,
            start=t, parent=parent, args=dict(args),
        )
        return sid

    def end(self, sid: int, t: float, **args: object) -> None:
        """Close span ``sid`` at ``t``; no-op for 0 / unknown / closed ids."""
        if not self._enabled or sid == 0:
            return
        span = self._spans.get(sid)
        if span is None or span.end is not None:
            return
        span.end = t
        if args:
            span.args.update(args)

    def instant(
        self, name: str, actor: str, track: str, t: float, **args: object
    ) -> None:
        if not self._enabled:
            return
        self._instants.append(Instant(name, actor, track, t, dict(args)))

    # -- journal mirroring -------------------------------------------------
    def attach_journal(self, journal: "Journal") -> None:
        """Mirror every journal event as an instant on the ``journal`` actor.

        The existing protocol journal (pipeline_open, block_stored, FNFA
        flags, recoveries, kills…) is the event backbone the paper's
        timelines hang off; mirroring keys the trace to it without
        re-instrumenting the emit sites.
        """
        journal.subscribe(self._on_journal_event)

    def _on_journal_event(self, event: "TraceEvent") -> None:
        if not self._enabled:
            return
        self._instants.append(
            Instant(event.kind, "journal", event.kind, event.time,
                    dict(event.details))
        )

    # -- reading -----------------------------------------------------------
    def spans(self) -> tuple[Span, ...]:
        """All spans in begin order."""
        return tuple(self._spans.values())

    def instants(self) -> tuple[Instant, ...]:
        return tuple(self._instants)

    def open_spans(self) -> tuple[Span, ...]:
        return tuple(s for s in self._spans.values() if s.end is None)

    def __len__(self) -> int:
        return len(self._spans)


#: Shared no-op tracer for components wired before a deployment exists.
DISABLED_TRACER = Tracer(enabled=False)
