"""repro.obs — simulator-time tracing and metrics.

A cross-cutting observability layer: :class:`Tracer` records nested spans
over simulated time (upload → block → pipeline → stream/store/forward/
ack/recovery, plus namenode allocate/rank/heartbeat),
:class:`MetricsRegistry` aggregates counters/gauges/histograms alongside,
and the exporters render Chrome ``trace_event`` JSON (Perfetto-loadable),
a text Gantt, and a metrics summary table.  Enable per deployment with
``HdfsDeployment(cluster, observe=True)`` or from the CLI via
``python -m repro trace <experiment>``.
"""

from .export import chrome_trace_json, metrics_summary, render_gantt
from .metrics import (
    DISABLED_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    labelled,
    publish_env_health,
    window_bucket,
)
from .spans import DISABLED_TRACER, Instant, Span, Tracer
from .wellformed import WellformednessError, check_wellformed

__all__ = [
    "Tracer",
    "Span",
    "Instant",
    "DISABLED_TRACER",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DISABLED_METRICS",
    "publish_env_health",
    "labelled",
    "window_bucket",
    "chrome_trace_json",
    "render_gantt",
    "metrics_summary",
    "check_wellformed",
    "WellformednessError",
]
