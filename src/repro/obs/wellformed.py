"""Span well-formedness checker, run over every traced test.

Three invariants, checked structurally (not against goldens, so any
traced run can assert them):

1. **Interval sanity** — every closed span has ``end >= start``; no span
   is left open at the end of a run unless explicitly allowed (teardown
   paths mark theirs ``aborted``).
2. **Track nesting** — within one (actor, track) lane, spans form a
   proper stack: a span starting inside another must end inside it.
   Overlap without containment means two unrelated machines were traced
   onto one lane.
3. **Parent containment** — a span with an explicit parent must lie
   within the parent's interval (same-timestamp touching allowed: a
   recovery attempt can start the instant its block span did).
"""

from __future__ import annotations

from .spans import Span, Tracer

__all__ = ["check_wellformed", "WellformednessError"]

#: Slack for float comparisons between analytically-computed and
#: event-loop-observed times; far below any packet service time.
_EPS = 1e-9


class WellformednessError(AssertionError):
    pass


def check_wellformed(tracer: Tracer, allow_open: bool = False) -> None:
    """Raise :class:`WellformednessError` on the first violated invariant."""
    spans = tracer.spans()
    by_id = {s.id: s for s in spans}

    for span in spans:
        if span.end is None:
            if allow_open or span.args.get("aborted"):
                continue
            raise WellformednessError(f"span left open: {_describe(span)}")
        if span.end < span.start - _EPS:
            raise WellformednessError(
                f"end < start: {_describe(span)} "
                f"(start={span.start}, end={span.end})"
            )

    _check_track_nesting(spans)
    _check_parent_containment(spans, by_id)


def _check_track_nesting(spans) -> None:
    lanes: dict[tuple[str, str], list[Span]] = {}
    for span in spans:
        if span.end is None:
            continue
        lanes.setdefault((span.actor, span.track), []).append(span)

    for (actor, track), lane in lanes.items():
        lane.sort(key=lambda s: (s.start, -(s.end - s.start), s.id))
        stack: list[Span] = []
        for span in lane:
            while stack and stack[-1].end <= span.start + _EPS:
                stack.pop()
            if stack and span.end > stack[-1].end + _EPS:
                raise WellformednessError(
                    f"overlap without nesting on {actor}/{track}: "
                    f"{_describe(span)} crosses end of {_describe(stack[-1])}"
                )
            stack.append(span)


def _check_parent_containment(spans, by_id) -> None:
    for span in spans:
        if span.parent == 0:
            continue
        parent = by_id.get(span.parent)
        if parent is None:
            raise WellformednessError(
                f"dangling parent id {span.parent} on {_describe(span)}"
            )
        if span.start < parent.start - _EPS:
            raise WellformednessError(
                f"child starts before parent: {_describe(span)} "
                f"inside {_describe(parent)}"
            )
        if (
            span.end is not None
            and parent.end is not None
            and span.end > parent.end + _EPS
        ):
            raise WellformednessError(
                f"child outlives parent: {_describe(span)} "
                f"inside {_describe(parent)}"
            )


def _describe(span: Span) -> str:
    return f"{span.name}#{span.id}[{span.actor}/{span.track}]"
