"""Exporters: Chrome ``trace_event`` JSON, text Gantt, metrics summary.

All three outputs are canonicalized so a fixed seed produces the same
bytes regardless of recording order (the packet train closes spans
out-of-order relative to the legacy loop):

* pids/tids are assigned from the **sorted** actor / (actor, track)
  name sets, never from encounter order;
* events are sorted by ``(pid, tid, ts, -dur, name)`` — start-time order
  with enclosing spans first, the layout Perfetto expects for nesting;
* timestamps are microseconds rounded to 3 decimals (nanosecond grain,
  far below any simulated duration), serialized by ``json.dumps`` with
  ``sort_keys=True``.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from .metrics import MetricsRegistry
from .spans import Instant, Span, Tracer

__all__ = ["chrome_trace_json", "render_gantt", "metrics_summary"]

_US = 1e6


def _ts(t: float) -> float:
    us = round(t * _US, 3)
    return int(us) if us == int(us) else us


def chrome_trace_json(tracer: Tracer, label: str = "repro") -> str:
    """Render the trace as Chrome ``trace_event`` JSON (Perfetto-loadable).

    Spans become "X" (complete) events, instants become "i" events, and
    actor/track names are published through "M" metadata events.
    """
    spans = tracer.spans()
    instants = tracer.instants()

    actors = sorted(
        {s.actor for s in spans} | {i.actor for i in instants}
    )
    pid_of = {actor: pid for pid, actor in enumerate(actors, start=1)}
    tracks = sorted(
        {(s.actor, s.track) for s in spans}
        | {(i.actor, i.track) for i in instants}
    )
    tid_of = {key: tid for tid, key in enumerate(tracks, start=1)}

    events: list[dict] = []
    for actor in actors:
        events.append(
            {
                "ph": "M",
                "pid": pid_of[actor],
                "tid": 0,
                "name": "process_name",
                "args": {"name": actor},
            }
        )
    for actor, track in tracks:
        events.append(
            {
                "ph": "M",
                "pid": pid_of[actor],
                "tid": tid_of[(actor, track)],
                "name": "thread_name",
                "args": {"name": track},
            }
        )

    timed: list[tuple] = []
    for span in spans:
        end = span.end if span.end is not None else span.start
        pid = pid_of[span.actor]
        tid = tid_of[(span.actor, span.track)]
        ts = _ts(span.start)
        dur = _ts(max(end - span.start, 0.0))
        record = {
            "ph": "X",
            "pid": pid,
            "tid": tid,
            "ts": ts,
            "dur": dur,
            "name": span.name,
            "args": _clean_args(span.args),
        }
        if span.end is None:
            record["args"]["unclosed"] = True
        timed.append((pid, tid, ts, -dur, span.name, record))
    for inst in instants:
        pid = pid_of[inst.actor]
        tid = tid_of[(inst.actor, inst.track)]
        ts = _ts(inst.time)
        record = {
            "ph": "i",
            "pid": pid,
            "tid": tid,
            "ts": ts,
            "s": "t",
            "name": inst.name,
            "args": _clean_args(inst.args),
        }
        timed.append((pid, tid, ts, 0, inst.name, record))
    timed.sort(key=lambda item: item[:5])
    events.extend(record for *_, record in timed)

    return json.dumps(
        {"traceEvents": events, "displayTimeUnit": "ms",
         "otherData": {"label": label}},
        sort_keys=True,
        separators=(",", ":"),
    )


def _clean_args(args: dict) -> dict:
    """JSON-stable copy of span args (no sets, stringified oddballs)."""
    clean: dict = {}
    for key in sorted(args):
        value = args[key]
        if isinstance(value, (str, int, float, bool)) or value is None:
            clean[key] = value
        elif isinstance(value, (list, tuple)):
            clean[key] = [str(v) for v in value]
        else:
            clean[key] = str(value)
    return clean


# ---------------------------------------------------------------------------
# Text Gantt


def render_gantt(tracer: Tracer, width: int = 72) -> str:
    """One row per (actor, track): span bars over the simulated timeline.

    Screenshot-free Perfetto: enough to eyeball pipeline overlap in a
    terminal or a doc.  Bars are ``=`` runs bracketed by ``[``/``]``;
    sub-second spans still get one cell so nothing disappears.
    """
    spans = [s for s in tracer.spans() if s.end is not None]
    if not spans:
        return "(no closed spans)\n"
    t0 = min(s.start for s in spans)
    t1 = max(s.end for s in spans)
    horizon = max(t1 - t0, 1e-9)
    scale = (width - 1) / horizon

    rows: dict[tuple[str, str], list[Span]] = {}
    for span in spans:
        rows.setdefault((span.actor, span.track), []).append(span)

    label_width = max(len(f"{a}/{t}") for a, t in rows) + 2
    lines = [
        f"gantt {t0:.3f}s .. {t1:.3f}s "
        f"({horizon:.3f}s across {width} cols)",
        "",
    ]
    for actor, track in sorted(rows):
        cells = [" "] * width
        for span in sorted(rows[(actor, track)],
                           key=lambda s: (s.start, -(s.end - s.start))):
            lo = int((span.start - t0) * scale)
            hi = max(int((span.end - t0) * scale), lo)
            for x in range(lo, hi + 1):
                cells[x] = "="
            cells[lo] = "["
            cells[hi] = "]" if hi > lo else "|"
        label = f"{actor}/{track}"
        lines.append(f"{label:<{label_width}}{''.join(cells).rstrip()}")
        names = ", ".join(
            f"{s.name}@{s.start - t0:.3f}+{s.end - s.start:.3f}s"
            for s in sorted(rows[(actor, track)], key=lambda s: s.start)
        )
        lines.append(f"{'':<{label_width}}{names}")
    lines.append("")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Metrics summary


def metrics_summary(metrics: MetricsRegistry) -> str:
    """Fixed-width table of every instrument, name-sorted per kind."""
    lines: list[str] = []
    counters = metrics.counters()
    gauges = metrics.gauges()
    histograms = metrics.histograms()

    if counters:
        lines.append("counters")
        for c in counters:
            lines.append(f"  {c.name:<28} {_num(c.value):>12}")
    if gauges:
        lines.append("gauges")
        for g in gauges:
            lines.append(
                f"  {g.name:<28} {_num(g.value):>12}  max {_num(g.max_value)}"
            )
    if histograms:
        lines.append("histograms")
        lines.append(
            f"  {'name':<28} {'count':>7} {'mean':>12} {'min':>12} {'max':>12}"
        )
        for h in histograms:
            lines.append(
                f"  {h.name:<28} {h.count:>7} {_fmt(h.mean):>12}"
                f" {_fmt(h.minimum):>12} {_fmt(h.maximum):>12}"
            )
    if not lines:
        lines.append("(no metrics recorded)")
    lines.append("")
    return "\n".join(lines)


def _num(value: float) -> str:
    return str(int(value)) if value == int(value) else _fmt(value)


def _fmt(value: float) -> str:
    return f"{value:.6f}"


def write_outputs(
    tracer: Tracer,
    metrics: MetricsRegistry,
    json_path,
    gantt_path=None,
    summary_path=None,
    label: str = "repro",
) -> None:
    """Write the Chrome JSON (and optional Gantt/summary) to disk."""
    json_path.write_text(chrome_trace_json(tracer, label=label))
    if gantt_path is not None:
        gantt_path.write_text(render_gantt(tracer))
    if summary_path is not None:
        summary_path.write_text(metrics_summary(metrics))
