"""Traced experiment runners behind ``python -m repro trace <experiment>``.

Each runner replays a pinned, figure-style workload with observability
enabled on *both* clients, then merges the two tracers into one timeline
whose actors are prefixed ``hdfs/…`` and ``smarth/…`` — loading the
exported Chrome JSON into Perfetto shows the baseline and SMARTH uploads
side by side on one clock.

Everything here is seed-deterministic: the same ``(experiment, seed,
scale)`` produces byte-identical exports, which the golden trace test
pins.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SimulationConfig
from ..units import GB, MB
from .export import metrics_summary
from .metrics import publish_env_health
from .spans import Tracer
from .wellformed import check_wellformed

__all__ = ["TraceRun", "combine", "run_traced", "TRACEABLE"]

#: Packet granularity matching repro.experiments.figures.EXPERIMENT_PACKET.
_TRACE_PACKET = 4 * MB


@dataclass
class TraceRun:
    """The merged, checked output of one traced experiment."""

    experiment_id: str
    tracer: Tracer
    summary: str
    #: True when the workload legitimately leaves spans open at the end
    #: of the run (e.g. re-replication still copying when it settles).
    allow_open: bool = False


def combine(parts: list[tuple[str, Tracer]]) -> Tracer:
    """Merge tracers onto one timeline, prefixing actors per part.

    Span ids are remapped (parents always carry a lower id than their
    children, so a single begin-order pass suffices); open spans stay
    open in the merged tracer.
    """
    merged = Tracer(enabled=True)
    for prefix, tracer in parts:
        id_map: dict[int, int] = {}
        for span in sorted(tracer.spans(), key=lambda s: s.id):
            new_id = merged.begin(
                span.name,
                f"{prefix}/{span.actor}",
                span.track,
                span.start,
                parent=id_map.get(span.parent, 0),
                **span.args,
            )
            id_map[span.id] = new_id
            if span.end is not None:
                merged.end(new_id, span.end)
        for inst in tracer.instants():
            merged.instant(
                inst.name, f"{prefix}/{inst.actor}", inst.track, inst.time,
                **inst.args,
            )
    return merged


def _traced_config(seed: int) -> SimulationConfig:
    return SimulationConfig(seed=seed).with_hdfs(packet_size=_TRACE_PACKET)


def _traced_size(config: SimulationConfig, scale: float) -> int:
    """The fig5 1 GB point scaled down, never below two blocks (so the
    trace always shows pipeline hand-off)."""
    return max(int(GB * scale), 2 * config.hdfs.block_size)


def _run_pair(
    experiment_id: str,
    seed: float,
    scale: float,
    scenario,
    fault_hook=None,
    allow_open: bool = False,
) -> TraceRun:
    from ..workloads.upload import run_upload

    parts: list[tuple[str, Tracer]] = []
    summaries: list[str] = []
    for system in ("hdfs", "smarth"):
        config = _traced_config(int(seed))
        outcome = run_upload(
            scenario,
            system,
            _traced_size(config, scale),
            config=config,
            fault_hook=fault_hook,
            observe=True,
        )
        deployment = outcome.deployment
        check_wellformed(deployment.tracer, allow_open=allow_open)
        publish_env_health(deployment.cluster.env, deployment.metrics)
        parts.append((system, deployment.tracer))
        summaries.append(
            f"== {system} ==\n{metrics_summary(deployment.metrics)}"
        )
    return TraceRun(
        experiment_id=experiment_id,
        tracer=combine(parts),
        summary="\n".join(summaries),
        allow_open=allow_open,
    )


def _trace_fig5(seed: int, scale: float) -> TraceRun:
    """Figure 5's throttled small-cluster point, both systems."""
    from ..workloads.scenarios import two_rack

    return _run_pair(
        "fig5", seed, scale, two_rack("small", throttle_mbps=100)
    )


def _trace_faultrec(seed: int, scale: float) -> TraceRun:
    """The pinned fault-recovery schedule: mid-pipeline kill at t=1 s,
    50 Mbps throttle on dn1 at t=3 s (matches experiments.figures.faultrec)."""
    from ..workloads.scenarios import two_rack

    def faults(injector) -> None:
        injector.kill_busy_at(at=1.0, pick=1)
        injector.throttle_at("dn1", 50.0, at=3.0)

    # A killed node's re-replication can still be copying when the run
    # settles; those receiver spans legitimately stay open.
    return _run_pair(
        "faultrec", seed, scale, two_rack("small"),
        fault_hook=faults, allow_open=True,
    )


#: Experiments that support ``python -m repro trace <id>``.
TRACEABLE = {
    "fig5": _trace_fig5,
    "faultrec": _trace_faultrec,
}


def run_traced(experiment_id: str, seed: int = 0, scale: float = 0.25) -> TraceRun:
    """Run one traceable experiment; raises KeyError for unknown ids."""
    return TRACEABLE[experiment_id](seed, scale)
