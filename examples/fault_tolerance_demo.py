#!/usr/bin/env python3
"""Fault-tolerance demo: kill a datanode mid-upload (§IV).

Uploads a file with both systems while a fault injector crashes whichever
datanode is mid-pipeline shortly after the transfer starts.  Both
protocols must finish with every block fully replicated — HDFS via
Algorithm 3 (single-pipeline recovery), SMARTH via Algorithm 4 (error
pipeline set, recover, resume) — and the demo prints the cost of the
recovery relative to a clean run.

Run:  python examples/fault_tolerance_demo.py [size]
"""

import sys

from repro import parse_size, run_upload, two_rack
from repro.experiments import experiment_config
from repro.units import fmt_size, fmt_time


def main() -> None:
    size = parse_size(sys.argv[1]) if len(sys.argv) > 1 else parse_size("1GB")
    config = experiment_config()
    scenario = two_rack("small", throttle_mbps=100)
    kill_time = 2.0

    print(f"scenario : {scenario.description}")
    print(f"uploading: {fmt_size(size)}; killing a busy datanode at "
          f"t={kill_time:.0f}s\n")

    for system in ("hdfs", "smarth"):
        clean = run_upload(scenario, system, size, config=config)
        faulty = run_upload(
            scenario,
            system,
            size,
            config=config,
            fault_hook=lambda inj: inj.kill_busy_at(at=kill_time, pick=1),
        )
        overhead = (faulty.duration / clean.duration - 1) * 100
        print(f"{system:7s}: clean {fmt_time(clean.duration)}  "
              f"with failure {fmt_time(faulty.duration)}  "
              f"(+{overhead:.0f}%, {faulty.result.recoveries} recoveries, "
              f"killed: {', '.join(faulty.injected_faults) or 'none'}, "
              f"fully replicated: {faulty.fully_replicated})")

    print("\nBoth systems must report 'fully replicated: True' — the dead")
    print("node's replicas are rebuilt on replacements during recovery.")


if __name__ == "__main__":
    main()
