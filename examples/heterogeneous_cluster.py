#!/usr/bin/env python3
"""The §V-B.3 heterogeneous-cluster experiment (Figure 13).

A mixed cluster of 3 small + 3 medium + 3 large EC2 instances, no
artificial throttling: heterogeneity alone (216 vs 376 Mbps NICs) is
enough for SMARTH's speed-aware first-datanode choice to pay off.  The
paper measures 289 s (HDFS) vs 205 s (SMARTH) for 8 GB — 41% faster.

Run:  python examples/heterogeneous_cluster.py [scale]
"""

import sys

from repro import GB, heterogeneous, size_sweep
from repro.experiments import experiment_config


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    sizes = [int(g * GB * scale) for g in (1, 2, 4, 8)]
    config = experiment_config()
    scenario = heterogeneous()
    print(f"scenario: {scenario.description}\n")

    rows = size_sweep(scenario, sizes, config=config)

    header = f"{'size':>8s} {'hdfs':>9s} {'smarth':>9s} {'improvement':>12s}"
    print(header)
    print("-" * len(header))
    for size, row in zip(sizes, rows):
        print(
            f"{size / GB:7.2f}G {row.hdfs_seconds:8.1f}s "
            f"{row.smarth_seconds:8.1f}s {row.improvement:11.0f}%"
        )

    print("\nPaper (Figure 13, 8 GB): HDFS 289 s, SMARTH 205 s → 41%.")


if __name__ == "__main__":
    main()
