#!/usr/bin/env python3
"""Cluster administration walkthrough: heal, drain, balance.

Demonstrates the operational substrate around the write protocols:

1. upload a dataset with SMARTH;
2. crash a replica holder → the background **replication monitor**
   detects the dead node (missed heartbeats) and heals every block;
3. gracefully **decommission** another holder — its replicas are copied
   off before it is marked safe to power down;
4. run the **balancer** to even out the post-churn replica distribution.

Run:  python examples/admin_operations.py [size]
"""

import sys

from repro import SmarthDeployment, build_homogeneous, parse_size
from repro.experiments import experiment_config
from repro.hdfs import Balancer, DecommissionManager
from repro.sim import Environment
from repro.units import fmt_size


def utilization_line(balancer):
    counts = balancer.utilization()
    return "  ".join(f"{d}:{c}" for d, c in sorted(counts.items()))


def main() -> None:
    size = parse_size(sys.argv[1]) if len(sys.argv) > 1 else parse_size("512MB")
    config = experiment_config().with_hdfs(
        heartbeat_interval=1.0, dead_node_heartbeats=3
    )
    env = Environment()
    cluster = build_homogeneous(env, "small", n_datanodes=9, config=config)
    deployment = SmarthDeployment(cluster)
    nn = deployment.namenode

    client = deployment.client()
    env.run(until=env.process(client.put("/data/set.bin", size)))
    env.run(until=env.now + 1)
    print(f"1. uploaded {fmt_size(size)}; fully replicated: "
          f"{nn.file_fully_replicated('/data/set.bin')}")

    # 2. Crash a holder and let the monitor heal.
    victim = nn.blocks.locations(nn.namespace.get("/data/set.bin").blocks[0].block_id)[0]
    deployment.datanode(victim).kill()
    print(f"2. crashed {victim}; waiting for detection + healing …")
    env.run(until=env.now + 60)
    healed = len(deployment.replication_monitor.completed)
    print(f"   monitor re-replicated {healed} blocks; fully replicated: "
          f"{nn.file_fully_replicated('/data/set.bin')}")

    # 3. Graceful decommission of another holder.
    survivor = next(
        d for d in nn.datanodes.live_datanodes()
        if nn.blocks.blocks_on(d)
    )
    admin = DecommissionManager(deployment)
    copies = env.run(until=env.process(admin.decommission(survivor)))
    print(f"3. decommissioned {survivor} after draining {copies} replicas; "
          f"state: {nn.datanodes.descriptor(survivor).decommissioned}")

    # 4. Balance what churn left behind.
    balancer = Balancer(deployment, threshold_blocks=1)
    print(f"4. utilization before balance: {utilization_line(balancer)}")
    report = env.run(until=env.process(balancer.run()))
    print(f"   moved {report.n_moves} replicas "
          f"(spread {report.initial_spread} → {report.final_spread})")
    print(f"   utilization after balance:  {utilization_line(balancer)}")
    print(f"   file still fully replicated: "
          f"{nn.file_fully_replicated('/data/set.bin')}")


if __name__ == "__main__":
    main()
