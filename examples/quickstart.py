#!/usr/bin/env python3
"""Quickstart: upload one file through HDFS and through SMARTH.

Builds the paper's small-instance two-rack cluster, throttles the rack
boundary to 50 Mbps (the §V-B.1 setting where SMARTH shines), uploads a
1 GB file with both systems and prints the comparison.

Run:  python examples/quickstart.py [size] [throttle_mbps]
"""

import sys

from repro import compare, parse_size, two_rack
from repro.units import fmt_rate, fmt_size, fmt_time


def main() -> None:
    size = parse_size(sys.argv[1]) if len(sys.argv) > 1 else parse_size("1GB")
    throttle = float(sys.argv[2]) if len(sys.argv) > 2 else 50.0

    scenario = two_rack("small", throttle_mbps=throttle)
    print(f"scenario : {scenario.description}")
    print(f"uploading: {fmt_size(size)}\n")

    hdfs, smarth, improvement = compare(scenario, size)

    for outcome in (hdfs, smarth):
        result = outcome.result
        print(f"{outcome.system:7s}: {fmt_time(result.duration)}"
              f"  ({fmt_rate(result.throughput)},"
              f" {result.n_blocks} blocks,"
              f" ≤{result.max_concurrent_pipelines} concurrent pipelines,"
              f" fully replicated: {outcome.fully_replicated})")

    print(f"\nSMARTH improvement: {improvement:.0f}%"
          f"  (paper reports 27–245% across its scenarios)")


if __name__ == "__main__":
    main()
