#!/usr/bin/env python3
"""Observe SMARTH's pipelining through the protocol journal.

Uploads a file on a throttled two-rack cluster, then prints the journal's
pipeline timeline — you can watch new pipelines open *before* earlier
blocks finish replicating (the paper's Figure 4 behaviour), and finally
reads the file back through the HDFS read path to prove every replica is
usable.

Run:  python examples/pipeline_timeline.py [size]
"""

import sys

from repro import SmarthDeployment, build_homogeneous, parse_size
from repro.experiments import experiment_config
from repro.hdfs import HdfsReader
from repro.sim import Environment
from repro.units import fmt_size, fmt_time


def main() -> None:
    size = parse_size(sys.argv[1]) if len(sys.argv) > 1 else parse_size("512MB")
    config = experiment_config()
    env = Environment()
    cluster = build_homogeneous(env, "small", n_datanodes=9, config=config)
    cluster.throttle_rack_boundary(50)
    deployment = SmarthDeployment(cluster)

    client = deployment.client()
    result = env.run(until=env.process(client.put("/data/file.bin", size)))

    print(f"uploaded {fmt_size(size)} in {fmt_time(result.duration)} "
          f"(≤{result.max_concurrent_pipelines} concurrent pipelines)\n")

    print("pipeline timeline (journal extract):")
    interesting = ("add_block", "pipeline_open", "block_stored", "file_complete")
    shown = 0
    for event in deployment.journal:
        if event.kind in interesting and shown < 24:
            print(f"  {event}")
            shown += 1
    total = sum(deployment.journal.count(k) for k in interesting)
    if total > shown:
        print(f"  … {total - shown} more events")

    reader = HdfsReader(deployment)
    read = env.run(until=env.process(reader.get("/data/file.bin")))
    print(f"\nread back {fmt_size(read.size)} in {fmt_time(read.duration)} "
          f"from {len(set(s for _, s in read.sources))} datanodes — replicas OK")


if __name__ == "__main__":
    main()
