#!/usr/bin/env python3
"""Ingest + analyze: SMARTH's impact on a MapReduce-style job (§VII).

The paper's future work asks whether the ingest speedup matters for
whole pipelines.  This example uploads a dataset through HDFS and then
through SMARTH (throttled two-rack cluster), runs a data-local map phase
over each, and prints the end-to-end comparison.

Run:  python examples/mapreduce_pipeline.py [size]
"""

import sys

from repro import HdfsDeployment, SmarthDeployment, parse_size, two_rack
from repro.experiments import experiment_config
from repro.mapred import JobConfig, MapRunner
from repro.units import MB, fmt_size, fmt_time


def main() -> None:
    size = parse_size(sys.argv[1]) if len(sys.argv) > 1 else parse_size("2GB")
    config = experiment_config()
    scenario = two_rack("small", throttle_mbps=50)
    job_config = JobConfig(map_slots_per_node=2, compute_rate=50 * MB)

    print(f"scenario : {scenario.description}")
    print(f"dataset  : {fmt_size(size)}  "
          f"(map tasks: one per 64 MB block, 2 slots/node)\n")

    totals = {}
    for system in ("hdfs", "smarth"):
        env, cluster = scenario.make(config)
        deployment = (
            SmarthDeployment(cluster) if system == "smarth"
            else HdfsDeployment(cluster)
        )
        client = deployment.client()
        write = env.run(until=env.process(client.put("/input", size)))
        env.run(until=env.now + 1)

        runner = MapRunner(deployment, job_config)
        job = env.run(until=env.process(runner.run("/input")))
        totals[system] = write.duration + job.duration

        print(f"{system:7s}: ingest {fmt_time(write.duration)}  "
              f"map phase {fmt_time(job.duration)} "
              f"({job.locality_fraction:.0%} data-local)  "
              f"total {fmt_time(totals[system])}")

    improvement = (totals["hdfs"] / totals["smarth"] - 1) * 100
    print(f"\nend-to-end improvement from SMARTH ingest: {improvement:.0f}%")
    print("(the job itself is unaffected — both files are fully replicated)")


if __name__ == "__main__":
    main()
