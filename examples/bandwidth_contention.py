#!/usr/bin/env python3
"""The §V-B.2 bandwidth-contention experiment: slow-node sweep.

Some datanodes are throttled to 50 Mbps in both directions (think: a
neighbouring tenant hammering the NIC).  Baseline HDFS pipelines that
include a slow node run at the slow node's speed; SMARTH learns which
nodes are fast, streams to those first, and lets slow replicas trail in
background pipelines.

Run:  python examples/bandwidth_contention.py [scale] [slow_mbps]
"""

import sys

from repro import GB, contention, sweep
from repro.experiments import experiment_config


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    slow_mbps = float(sys.argv[2]) if len(sys.argv) > 2 else 50.0
    size = int(8 * GB * scale)
    config = experiment_config()

    print(
        f"small cluster, {size / GB:.1f} GB uploads, slow nodes at "
        f"{slow_mbps:g} Mbps\n"
    )
    rows = sweep(
        scenario_for=lambda k: contention(
            "small", n_slow=k, slow_mbps=slow_mbps
        ),
        xs=[0, 1, 2, 3, 4, 5],
        size=size,
        config=config,
        label_for=lambda k: f"{k} slow",
    )

    header = f"{'slow nodes':>10s} {'hdfs':>9s} {'smarth':>9s} {'improvement':>12s}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row.label:>10s} {row.hdfs_seconds:8.1f}s "
            f"{row.smarth_seconds:8.1f}s {row.improvement:11.0f}%"
        )

    print("\nPaper (Figure 10): one 50 Mbps node already costs HDFS 78%;")
    print("the more slow nodes, the larger SMARTH's advantage.")


if __name__ == "__main__":
    main()
