#!/usr/bin/env python3
"""The §V-B.1 two-rack experiment: throttle sweep on all three clusters.

Reproduces the Figure 6/7/8/9 workload at a configurable scale: uploads a
file per (cluster, throttle) pair with both systems and prints the
upload-time series plus the improvement trend.

Run:  python examples/two_rack_throttling.py [scale]
      scale 1.0 = the paper's 8 GB points (≈ a minute of wall time);
      default 0.25 (2 GB points) finishes in a few seconds.
"""

import sys

from repro import GB, sweep, two_rack
from repro.experiments import experiment_config


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    size = int(8 * GB * scale)
    throttles = [50, 100, 150, None]
    config = experiment_config()

    print(f"8 GB × {scale:g} = {size / GB:.1f} GB per upload\n")
    header = f"{'cluster':8s} {'throttle':>9s} {'hdfs':>9s} {'smarth':>9s} {'improvement':>12s}"
    print(header)
    print("-" * len(header))

    for cluster in ("small", "medium", "large"):
        rows = sweep(
            scenario_for=lambda t, c=cluster: two_rack(c, throttle_mbps=t),
            xs=throttles,
            size=size,
            config=config,
            label_for=lambda t: f"{t:g}Mbps" if t else "default",
        )
        for row in rows:
            print(
                f"{cluster:8s} {row.label:>9s} {row.hdfs_seconds:8.1f}s "
                f"{row.smarth_seconds:8.1f}s {row.improvement:11.0f}%"
            )
        print()

    print("Paper's headline points: small 130% @50 Mbps, 27% @150 Mbps;")
    print("medium 225% @50 Mbps; large 245% @50 Mbps; small gain unthrottled.")


if __name__ == "__main__":
    main()
