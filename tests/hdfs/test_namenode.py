"""Unit tests for namenode RPCs and the speed registry."""

import pytest

from repro.cluster import SMALL, build_homogeneous
from repro.config import SimulationConfig
from repro.hdfs import (
    FileAlreadyExists,
    HdfsDeployment,
    NoDatanodesAvailable,
    SpeedRegistry,
)
from repro.sim import Environment
from repro.units import MB


@pytest.fixture()
def env():
    return Environment()


@pytest.fixture()
def deployment(env):
    cfg = SimulationConfig().with_hdfs(block_size=MB, packet_size=64 * 1024)
    cluster = build_homogeneous(env, SMALL, n_datanodes=6, config=cfg)
    return HdfsDeployment(cluster)


def run(env, gen):
    return env.run(until=env.process(gen))


class TestClientRpcs:
    def test_create_charges_rpc_latency(self, env, deployment):
        nn = deployment.namenode
        run(env, nn.create_file("client", "/f"))
        assert env.now == pytest.approx(nn.config.namenode_rpc_latency)
        assert nn.namespace.exists("/f")

    def test_create_duplicate_raises(self, env, deployment):
        nn = deployment.namenode
        run(env, nn.create_file("client", "/f"))
        with pytest.raises(FileAlreadyExists):
            run(env, nn.create_file("client", "/f"))

    def test_add_block_allocates_and_places(self, env, deployment):
        nn = deployment.namenode
        run(env, nn.create_file("client", "/f"))
        bt = run(env, nn.add_block("client", "/f", MB))
        assert len(bt.targets) == 3
        assert bt.block.size == MB
        assert nn.blocks.blocks_on(bt.targets[0]) == (bt.block.block_id,)
        assert nn.namespace.get("/f").blocks[0] is bt.block

    def test_add_block_respects_exclusions(self, env, deployment):
        nn = deployment.namenode
        run(env, nn.create_file("client", "/f"))
        excluded = {"dn0", "dn1", "dn2"}
        bt = run(env, nn.add_block("client", "/f", MB, excluded=excluded))
        assert not excluded & set(bt.targets)

    def test_complete_commits_blocks(self, env, deployment):
        nn = deployment.namenode
        run(env, nn.create_file("client", "/f"))
        bt = run(env, nn.add_block("client", "/f", MB))
        run(env, nn.complete_file("client", "/f"))
        from repro.hdfs import BlockState

        assert nn.blocks.info(bt.block.block_id).state is BlockState.COMPLETE

    def test_get_additional_datanode_avoids_existing(self, env, deployment):
        nn = deployment.namenode
        run(env, nn.create_file("client", "/f"))
        bt = run(env, nn.add_block("client", "/f", MB))
        extra = run(
            env,
            nn.get_additional_datanode(
                "client", bt.block, existing=bt.targets, excluded={"dn5"}
            ),
        )
        assert extra not in bt.targets
        assert extra != "dn5"

    def test_get_additional_datanode_exhausted(self, env, deployment):
        nn = deployment.namenode
        run(env, nn.create_file("client", "/f"))
        bt = run(env, nn.add_block("client", "/f", MB))
        everyone = set(nn.datanodes.all_names())
        with pytest.raises(NoDatanodesAvailable):
            run(
                env,
                nn.get_additional_datanode(
                    "client", bt.block, existing=everyone
                ),
            )

    def test_bump_generation_updates_namespace(self, env, deployment):
        nn = deployment.namenode
        run(env, nn.create_file("client", "/f"))
        bt = run(env, nn.add_block("client", "/f", MB))
        new_block = run(env, nn.bump_generation(bt.block))
        assert new_block.generation == 1
        assert nn.namespace.get("/f").blocks[0].generation == 1

    def test_client_heartbeat_updates_speeds(self, env, deployment):
        nn = deployment.namenode
        run(env, nn.client_heartbeat("client", {"dn0": 1e6, "dn1": 2e6}))
        assert nn.speeds.records_for("client") == {"dn0": 1e6, "dn1": 2e6}


class TestDatanodeLiaison:
    def test_registration_via_deployment(self, deployment):
        assert deployment.namenode.datanodes.all_names() == tuple(
            sorted(f"dn{i}" for i in range(6))
        )

    def test_heartbeats_keep_nodes_alive(self, env, deployment):
        env.run(until=60)
        assert len(deployment.namenode.datanodes.live_datanodes()) == 6

    def test_dead_datanode_expires(self, env, deployment):
        deployment.datanode("dn0").kill()
        dead_after = deployment.namenode.datanodes.dead_after
        env.run(until=dead_after * 3 + 10)
        assert "dn0" not in deployment.namenode.datanodes.live_datanodes()

    def test_block_received_updates_manager(self, env, deployment):
        nn = deployment.namenode
        run(env, nn.create_file("client", "/f"))
        bt = run(env, nn.add_block("client", "/f", MB))
        nn.block_received(bt.block.block_id, bt.targets[0], MB)
        assert nn.replication_of(bt.block.block_id) == 1


class TestSpeedRegistry:
    def test_top_n_orders_by_speed(self):
        reg = SpeedRegistry()
        reg.update("c", {"dn0": 10.0, "dn1": 30.0, "dn2": 20.0})
        assert reg.top_n("c", 2) == ["dn1", "dn2"]

    def test_top_n_restricted_pool(self):
        reg = SpeedRegistry()
        reg.update("c", {"dn0": 10.0, "dn1": 30.0, "dn2": 20.0})
        assert reg.top_n("c", 2, among=["dn0", "dn2"]) == ["dn2", "dn0"]

    def test_updates_overwrite(self):
        reg = SpeedRegistry()
        reg.update("c", {"dn0": 10.0})
        reg.update("c", {"dn0": 99.0})
        assert reg.records_for("c")["dn0"] == 99.0

    def test_has_records(self):
        reg = SpeedRegistry()
        assert not reg.has_records("c")
        reg.update("c", {"dn0": 1.0})
        assert reg.has_records("c")

    def test_clients_isolated(self):
        reg = SpeedRegistry()
        reg.update("c1", {"dn0": 1.0})
        assert reg.records_for("c2") == {}
