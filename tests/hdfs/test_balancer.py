"""Integration tests for the HDFS balancer."""

import pytest

from repro.cluster import SMALL, build_homogeneous
from repro.config import SimulationConfig
from repro.hdfs import Balancer, HdfsDeployment
from repro.sim import Environment
from repro.smarth import SmarthDeployment
from repro.units import KB, MB


def build(smarth=False, n_datanodes=9):
    env = Environment()
    cfg = SimulationConfig().with_hdfs(block_size=MB, packet_size=64 * KB)
    cluster = build_homogeneous(env, SMALL, n_datanodes=n_datanodes, config=cfg)
    deployment = (
        SmarthDeployment(cluster, enable_replication_monitor=False)
        if smarth
        else HdfsDeployment(cluster, enable_replication_monitor=False)
    )
    return env, deployment


def upload_files(env, deployment, n_files=4, size=4 * MB):
    client = deployment.client()
    for i in range(n_files):
        env.run(until=env.process(client.put(f"/f{i}", size)))
    env.run(until=env.now + 1)


class TestBalancer:
    def test_reduces_spread(self):
        env, deployment = build()
        upload_files(env, deployment)
        balancer = Balancer(deployment, threshold_blocks=1)
        before = balancer.spread()
        report = env.run(until=env.process(balancer.run()))
        assert report.initial_spread == before
        assert report.final_spread <= max(1, before)
        assert report.final_spread <= report.initial_spread

    def test_preserves_replication(self):
        env, deployment = build()
        upload_files(env, deployment)
        balancer = Balancer(deployment, threshold_blocks=1)
        env.run(until=env.process(balancer.run()))
        nn = deployment.namenode
        for i in range(4):
            assert nn.file_fully_replicated(f"/f{i}")

    def test_never_colocates_replicas(self):
        env, deployment = build()
        upload_files(env, deployment)
        balancer = Balancer(deployment, threshold_blocks=1)
        env.run(until=env.process(balancer.run()))
        nn = deployment.namenode
        for i in range(4):
            for block in nn.namespace.get(f"/f{i}").blocks:
                locations = nn.blocks.locations(block.block_id)
                assert len(set(locations)) == len(locations)

    def test_balanced_cluster_is_noop(self):
        env, deployment = build()
        upload_files(env, deployment, n_files=1, size=MB)
        balancer = Balancer(deployment, threshold_blocks=9)
        report = env.run(until=env.process(balancer.run()))
        assert report.n_moves == 0

    def test_smarth_skew_gets_balanced(self):
        """SMARTH's speed-biased placement creates skew the balancer
        removes."""
        env, deployment = build(smarth=True)
        upload_files(env, deployment, n_files=6)
        balancer = Balancer(deployment, threshold_blocks=1)
        report = env.run(until=env.process(balancer.run()))
        assert report.final_spread <= 1 or report.final_spread <= report.initial_spread

    def test_threshold_validation(self):
        env, deployment = build()
        with pytest.raises(ValueError):
            Balancer(deployment, threshold_blocks=0)

    def test_max_moves_bounds_work(self):
        env, deployment = build()
        upload_files(env, deployment)
        balancer = Balancer(deployment, threshold_blocks=1, max_moves=1)
        report = env.run(until=env.process(balancer.run()))
        assert report.n_moves <= 1
