"""Datanode serve-queue admission, short-circuit reads, and resume.

The serve model (``HdfsConfig.serve_streams``, Hadoop's
``dfs.datanode.max.transfer.threads``) bounds concurrent read streams
per datanode; excess readers queue FIFO and their wait lands in the
``read.serve_wait`` histogram.  Short-circuit local reads bypass the
queue (and the NIC) entirely; a source dying mid-stream resumes from
the delivered byte offset on the next-ranked replica instead of
re-reading the block.
"""

from __future__ import annotations

import pytest

from repro.cluster import SMALL, build_homogeneous
from repro.config import SimulationConfig
from repro.hdfs import HdfsDeployment, HdfsReader
from repro.hdfs.protocol import DatanodeDead
from repro.sim import Environment
from repro.units import KB, MB

BLOCK = 2 * MB


def build(n_datanodes: int = 6, observe: bool = True, **hdfs):
    env = Environment()
    config = SimulationConfig().with_hdfs(
        block_size=BLOCK, packet_size=64 * KB, **hdfs
    )
    cluster = build_homogeneous(
        env, SMALL, n_datanodes=n_datanodes, config=config
    )
    return env, HdfsDeployment(cluster, observe=observe)


def put(env, deployment, path: str, size: int):
    client = deployment.client()
    return env.run(until=env.process(client.put(path, size)))


class TestServeQueue:
    def test_slots_bound_concurrent_serves(self):
        env, deployment = build(serve_streams=2)
        datanode = next(iter(deployment.datanodes.values()))

        serves = []

        def opener(env):
            for i in range(4):
                serve = yield from datanode.open_serve(block_id=i, client="c")
                serves.append(serve)

        env.process(opener(env))
        env.run(until=0.001)
        # Slots exhausted after two grants: the opener is parked waiting.
        assert len(serves) == 2
        assert datanode.active_serves == 2
        assert datanode.serve_queue_len == 1

        serves[0].close()
        env.run(until=0.002)  # let the queued request resume
        assert len(serves) == 3

    def test_waiting_reader_records_serve_wait(self):
        env, deployment = build(serve_streams=1)
        put(env, deployment, "/f", BLOCK)
        block = deployment.namenode.namespace.get("/f").blocks[0]
        source = HdfsReader(deployment)._candidates(block)[0]
        datanode = deployment.datanode(source)

        def hog(env):
            serve = yield from datanode.open_serve(block.block_id, "hog")
            yield env.timeout(0.5)
            serve.close()

        env.process(hog(env))
        result = env.run(
            until=env.process(HdfsReader(deployment).get("/f"))
        )
        # The hog held the only slot until t=0.5; the read queued behind
        # it and its wait is on the record.
        wait = deployment.metrics.histogram("read.serve_wait")
        assert wait.count >= 1
        assert wait.maximum > 0.4
        assert result.end > 0.5

    def test_uncontended_read_waits_zero(self):
        env, deployment = build(serve_streams=4)
        put(env, deployment, "/f", 2 * BLOCK)
        env.run(until=env.process(HdfsReader(deployment).get("/f")))
        wait = deployment.metrics.histogram("read.serve_wait")
        assert wait.count >= 2  # one admission per block stream
        assert wait.maximum == 0.0

    def test_open_serve_on_dead_datanode_raises(self):
        env, deployment = build()
        datanode = next(iter(deployment.datanodes.values()))
        datanode.kill()

        def opener(env):
            yield from datanode.open_serve(block_id=0, client="c")

        with pytest.raises(DatanodeDead):
            env.run(until=env.process(opener(env)))

    def test_kill_aborts_open_serves_and_frees_slots(self):
        env, deployment = build(serve_streams=2)
        datanode = next(iter(deployment.datanodes.values()))
        aborted = []

        def opener(env):
            serve = yield from datanode.open_serve(block_id=7, client="c")
            serve.on_kill = lambda: aborted.append(serve)

        env.run(until=env.process(opener(env)))
        assert datanode.active_serves == 1
        datanode.kill()
        assert aborted and aborted[0].closed
        assert datanode.active_serves == 0


class TestShortCircuit:
    def _local_setup(self, short_circuit: int):
        env, deployment = build(short_circuit_reads=short_circuit)
        put(env, deployment, "/f", BLOCK)
        block = deployment.namenode.namespace.get("/f").blocks[0]
        holder = deployment.namenode.blocks.locations(block.block_id)[0]
        host = deployment.datanode(holder).node
        return env, deployment, HdfsReader(deployment, host=host), host

    def test_local_replica_bypasses_nic_and_serve_queue(self):
        env, deployment, reader, host = self._local_setup(short_circuit=1)
        sent0 = host.nic.bytes_sent
        read0 = host.disk.bytes_read
        result = env.run(until=env.process(reader.get("/f")))
        assert result.size == BLOCK
        # Served off the local disk: no NIC traffic, no serve admission.
        assert host.nic.bytes_sent == sent0
        assert host.disk.bytes_read == read0 + BLOCK
        assert deployment.metrics.histogram("read.serve_wait").count == 0

    def test_disabled_short_circuit_goes_through_the_datanode(self):
        env, deployment, reader, host = self._local_setup(short_circuit=0)
        result = env.run(until=env.process(reader.get("/f")))
        assert result.size == BLOCK
        # Loopback still skips the NIC but the stream was admitted.
        assert deployment.metrics.histogram("read.serve_wait").count == 1

    def test_short_circuit_is_faster(self):
        env1, dep1, reader1, _ = self._local_setup(short_circuit=1)
        fast = env1.run(until=env1.process(reader1.get("/f")))
        env0, dep0, reader0, _ = self._local_setup(short_circuit=0)
        slow = env0.run(until=env0.process(reader0.get("/f")))
        assert fast.duration < slow.duration


class TestResumeFromOffset:
    def test_resume_transfers_only_the_remainder(self):
        """A mid-stream source death must not restart the block: total
        bytes entering the reader equal the file size exactly."""
        env, deployment = build(n_datanodes=9)
        put(env, deployment, "/f", BLOCK)
        block = deployment.namenode.namespace.get("/f").blocks[0]
        reader = HdfsReader(deployment)
        candidates = reader._candidates(block)

        def killer(env):
            yield env.timeout(0.02)  # ~half of a 2 MB stream at NIC rate
            deployment.datanode(candidates[0]).kill()

        env.process(killer(env))
        result = env.run(until=env.process(reader.get("/f")))
        assert result.size == BLOCK
        assert dict(result.sources)[block.block_id] == candidates[1]
        client_host = deployment.cluster.client_host
        assert client_host.nic.bytes_received == BLOCK
        # The journal's completion record carries the delivered total.
        (event,) = deployment.journal.events(kind="read_complete")
        assert event.details["bytes"] == event.details["size"] == BLOCK

    def test_resume_equivalent_with_and_without_trains(self):
        """The resumed remainder is per-chunk in both modes; the whole
        degraded read lands on the same replicas either way."""

        def run(coalesce: int):
            env, deployment = build(n_datanodes=9, coalesce_reads=coalesce)
            put(env, deployment, "/f", 2 * BLOCK)
            block = deployment.namenode.namespace.get("/f").blocks[0]
            reader = HdfsReader(deployment)
            victim = reader._candidates(block)[0]

            def killer(env):
                yield env.timeout(0.02)
                deployment.datanode(victim).kill()

            env.process(killer(env))
            result = env.run(until=env.process(reader.get("/f")))
            return result.size, tuple(result.sources)

        assert run(0) == run(1)
