"""Integration tests for the background re-replication monitor."""

import pytest

from repro.cluster import SMALL, build_homogeneous
from repro.config import SimulationConfig
from repro.hdfs import HdfsDeployment
from repro.sim import Environment
from repro.units import KB, MB


def build(n_datanodes=9, monitor=True):
    env = Environment()
    cfg = SimulationConfig().with_hdfs(
        block_size=2 * MB,
        packet_size=64 * KB,
        heartbeat_interval=1.0,
        dead_node_heartbeats=3,
    )
    cluster = build_homogeneous(env, SMALL, n_datanodes=n_datanodes, config=cfg)
    deployment = HdfsDeployment(cluster, enable_replication_monitor=monitor)
    return env, deployment


def upload(env, deployment, size=4 * MB, path="/f"):
    client = deployment.client()
    return env.run(until=env.process(client.put(path, size)))


class TestHealing:
    def test_heals_after_post_write_death(self):
        env, deployment = build()
        result = upload(env, deployment)
        nn = deployment.namenode
        assert nn.file_fully_replicated("/f")

        # Kill one replica holder after the write completed.
        victim = result.pipelines[0][1]
        deployment.datanode(victim).kill()

        # Wait past dead-node detection + one replication round trip.
        env.run(until=env.now + 60)
        assert nn.file_fully_replicated("/f")
        assert deployment.replication_monitor.completed
        # The healed replicas do not live on the dead node.
        for block in nn.namespace.get("/f").blocks:
            assert victim not in nn.blocks.locations(block.block_id)

    def test_no_healing_without_monitor(self):
        env, deployment = build(monitor=False)
        result = upload(env, deployment)
        victim = result.pipelines[0][0]
        deployment.datanode(victim).kill()
        env.run(until=env.now + 60)
        nn = deployment.namenode
        affected = nn.blocks.blocks_on(victim)
        # Replicas on the dead node are never dropped nor rebuilt.
        assert deployment.replication_monitor is None
        assert affected  # bookkeeping still names the dead holder

    def test_new_replica_prefers_fresh_rack(self):
        env, deployment = build()
        upload(env, deployment)
        nn = deployment.namenode
        topo = deployment.network.topology

        victim = nn.namespace.get("/f").blocks[0]
        locations = nn.blocks.locations(victim.block_id)
        deployment.datanode(locations[0]).kill()
        env.run(until=env.now + 60)

        new_locations = nn.blocks.locations(victim.block_id)
        racks = {topo.rack_of(d) for d in new_locations}
        assert len(new_locations) >= 3
        assert len(racks) == 2  # still spans both racks after healing

    def test_two_holders_dead_still_heals(self):
        env, deployment = build()
        upload(env, deployment)
        nn = deployment.namenode
        block = nn.namespace.get("/f").blocks[0]
        l0, l1 = nn.blocks.locations(block.block_id)[:2]
        deployment.datanode(l0).kill()
        deployment.datanode(l1).kill()
        env.run(until=env.now + 90)
        assert nn.replication_of(block.block_id) >= 3

    def test_unhealable_when_every_replica_lost(self):
        env, deployment = build()
        upload(env, deployment)
        nn = deployment.namenode
        block = nn.namespace.get("/f").blocks[0]
        for holder in nn.blocks.locations(block.block_id):
            deployment.datanode(holder).kill()
        env.run(until=env.now + 90)
        assert nn.replication_of(block.block_id) == 0

    def test_stop_halts_monitor(self):
        env, deployment = build()
        result = upload(env, deployment)
        deployment.replication_monitor.stop()
        victim = result.pipelines[0][0]
        deployment.datanode(victim).kill()
        env.run(until=env.now + 60)
        assert not deployment.replication_monitor.completed

    def test_monitor_idle_on_healthy_cluster(self):
        env, deployment = build()
        upload(env, deployment)
        env.run(until=env.now + 30)
        assert deployment.replication_monitor.completed == []
