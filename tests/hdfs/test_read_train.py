"""On-vs-off equivalence of read-train coalescing.

``coalesce_reads=0`` (the default) collapses pristine block reads into
one analytic :class:`~repro.hdfs.train.ReadTrain`; ``coalesce_reads=1``
runs the legacy per-chunk prefetch loop.  These tests pin the two modes
to *identical* observable history — durations, sources, the full
journal, NIC/disk byte counters and flow samples — across randomized
sizes, seeds and cluster shapes, including mixed read/write workloads
where the train's channel guards must chain foreign traffic exactly
like legacy in-flight chunks.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import SMALL, build_homogeneous
from repro.config import SimulationConfig
from repro.hdfs import HdfsDeployment, HdfsReader
from repro.sim import Environment
from repro.smarth import SmarthDeployment
from repro.units import KB, MB

BLOCK = 2 * MB
PACKET = 64 * KB


def run_read(
    seed: int,
    size: int,
    coalesce: int,
    n_datanodes: int = 9,
    smarth: bool = False,
    mixed: bool = False,
):
    """One write-then-read run; returns its full observable fingerprint."""
    env = Environment()
    cfg = SimulationConfig(seed=seed).with_hdfs(
        block_size=BLOCK, packet_size=PACKET, coalesce_reads=coalesce
    )
    cluster = build_homogeneous(env, SMALL, n_datanodes=n_datanodes, config=cfg)
    deployment = (
        SmarthDeployment(cluster) if smarth else HdfsDeployment(cluster)
    )
    deployment.network.stats.keep_samples = True
    client = deployment.client()
    env.run(until=env.process(client.put("/f", size)))

    mixer = None
    if mixed:
        # A concurrent writer shares the reader's host NIC and quotes the
        # datanode disks the read train is guarding.
        writer = deployment.client(name="mixer")
        mixer = env.process(writer.put("/mix", size), name="mixer")

    reader = HdfsReader(deployment)
    result = env.run(until=env.process(reader.get("/f")))
    if mixer is not None and not mixer.triggered:
        # Counters are batch-applied at block settles, so only the
        # *final* state is comparable — let the mixer drain first.
        env.run(until=mixer)
    nodes = sorted(
        deployment.cluster.datanode_hosts + [deployment.cluster.client_host],
        key=lambda n: n.name,
    )
    return {
        "duration": result.duration,
        "end": result.end,
        "sources": tuple(result.sources),
        "journal": deployment.journal.events(),
        "nic": [
            (n.name, n.nic.bytes_sent, n.nic.bytes_received) for n in nodes
        ],
        "disk": [(n.name, n.disk.bytes_read) for n in nodes],
        "flows": sorted(
            deployment.network.stats.samples,
            key=lambda s: (s.start, s.end, s.src, s.dst, s.size),
        ),
    }


def assert_equivalent(seed, size, **kwargs) -> None:
    fast = run_read(seed, size, coalesce=0, **kwargs)
    legacy = run_read(seed, size, coalesce=1, **kwargs)
    for key in fast:
        assert fast[key] == legacy[key], f"{key} diverges: " + repr(
            (fast[key], legacy[key])
        )


class TestEquivalenceFixed:
    def test_single_block(self):
        assert_equivalent(seed=0, size=BLOCK)

    def test_ragged_tail(self):
        assert_equivalent(seed=1, size=2 * BLOCK + 256 * KB + 1)

    def test_sub_packet_file(self):
        assert_equivalent(seed=2, size=4 * KB)

    def test_smarth_written_file(self):
        # SMARTH ingest warms the speed registry, so the ranked candidate
        # order differs from plain locality — both modes must follow it.
        assert_equivalent(seed=3, size=6 * MB, smarth=True)

    def test_mixed_read_write(self):
        assert_equivalent(seed=4, size=6 * MB, mixed=True)

    def test_bounded_coalesce_matches_both(self):
        """1 < coalesce_reads < n_chunks declines per block exactly like
        the legacy mode."""
        bounded = run_read(5, 2 * BLOCK, coalesce=4)  # 2 MB block = 32 chunks
        legacy = run_read(5, 2 * BLOCK, coalesce=1)
        assert bounded == legacy


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    blocks=st.integers(min_value=1, max_value=4),
    tail=st.integers(min_value=0, max_value=BLOCK - 1),
    n_datanodes=st.integers(min_value=4, max_value=10),
)
def test_equivalence_property(seed, blocks, tail, n_datanodes):
    size = (blocks - 1) * BLOCK + (tail or BLOCK)
    assert_equivalent(seed=seed, size=size, n_datanodes=n_datanodes)


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    smarth=st.booleans(),
)
def test_mixed_equivalence_property(seed, smarth):
    assert_equivalent(seed=seed, size=4 * MB, smarth=smarth, mixed=True)


def test_train_mode_uses_fewer_events():
    """The point of the fast path: same history, far fewer heap events."""

    def events(coalesce: int) -> int:
        env = Environment()
        cfg = SimulationConfig().with_hdfs(
            block_size=BLOCK, packet_size=PACKET, coalesce_reads=coalesce
        )
        cluster = build_homogeneous(env, SMALL, n_datanodes=9, config=cfg)
        deployment = HdfsDeployment(cluster)
        client = deployment.client()
        env.run(until=env.process(client.put("/f", 8 * MB)))
        before = env.events_processed
        reader = HdfsReader(deployment)
        env.run(until=env.process(reader.get("/f")))
        return env.events_processed - before

    assert events(1) >= 1.5 * events(0)
