"""Unit tests for the namenode namespace (§II step 1 checks)."""

import pytest

from repro.hdfs import (
    FileAlreadyExists,
    FileNotFound,
    FileState,
    LeaseConflict,
    Namespace,
    SafeModeException,
)
from repro.hdfs.protocol import Block


@pytest.fixture()
def ns():
    return Namespace()


class TestCreate:
    def test_create_registers_file(self, ns):
        inode = ns.create("/a/b", client="c1")
        assert inode.state is FileState.UNDER_CONSTRUCTION
        assert ns.exists("/a/b")
        assert len(ns) == 1

    def test_relative_path_rejected(self, ns):
        with pytest.raises(ValueError):
            ns.create("relative/path", client="c1")

    def test_duplicate_create_raises(self, ns):
        ns.create("/f", client="c1")
        with pytest.raises(FileAlreadyExists):
            ns.create("/f", client="c2")

    def test_overwrite_allowed_when_requested(self, ns):
        ns.create("/f", client="c1")
        inode = ns.create("/f", client="c2", overwrite=True)
        assert inode.client == "c2"

    def test_safe_mode_blocks_create(self, ns):
        ns.enter_safe_mode()
        with pytest.raises(SafeModeException):
            ns.create("/f", client="c1")
        ns.leave_safe_mode()
        ns.create("/f", client="c1")


class TestLeases:
    def test_lease_enforced(self, ns):
        ns.create("/f", client="c1")
        with pytest.raises(LeaseConflict):
            ns.check_lease("/f", "c2")
        assert ns.check_lease("/f", "c1").path == "/f"

    def test_completed_file_has_no_lease(self, ns):
        ns.create("/f", client="c1")
        ns.complete("/f", "c1")
        with pytest.raises(LeaseConflict):
            ns.check_lease("/f", "c1")

    def test_get_missing_raises(self, ns):
        with pytest.raises(FileNotFound):
            ns.get("/missing")


class TestBlocks:
    def _block(self, bid, path, index=0, size=64):
        return Block(block_id=bid, path=path, index=index, size=size)

    def test_append_block_accumulates(self, ns):
        ns.create("/f", client="c1")
        ns.append_block("/f", "c1", self._block(1, "/f", 0, 10))
        ns.append_block("/f", "c1", self._block(2, "/f", 1, 20))
        inode = ns.get("/f")
        assert [b.block_id for b in inode.blocks] == [1, 2]
        assert inode.size == 30

    def test_append_requires_lease(self, ns):
        ns.create("/f", client="c1")
        with pytest.raises(LeaseConflict):
            ns.append_block("/f", "c2", self._block(1, "/f"))

    def test_replace_block_swaps_generation(self, ns):
        ns.create("/f", client="c1")
        block = self._block(7, "/f")
        ns.append_block("/f", "c1", block)
        ns.replace_block("/f", block.with_generation(3))
        assert ns.get("/f").blocks[0].generation == 3

    def test_replace_unknown_block_raises(self, ns):
        ns.create("/f", client="c1")
        with pytest.raises(FileNotFound):
            ns.replace_block("/f", self._block(99, "/f"))

    def test_complete_transitions_state(self, ns):
        ns.create("/f", client="c1")
        inode = ns.complete("/f", "c1")
        assert inode.state is FileState.COMPLETE

    def test_files_listing_sorted(self, ns):
        ns.create("/b", client="c")
        ns.create("/a", client="c")
        assert ns.files() == ("/a", "/b")
