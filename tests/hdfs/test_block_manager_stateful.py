"""Stateful property test: the BlockManager under arbitrary op sequences.

A hypothesis RuleBasedStateMachine drives allocate / expect / receive /
drop / commit / remove-datanode in random interleavings and checks the
bookkeeping invariants a namenode must never violate.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.hdfs import BlockManager
from repro.hdfs.protocol import BlockState

DATANODES = [f"dn{i}" for i in range(6)]


class BlockManagerMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.manager = BlockManager()
        #: Shadow model: block_id -> set of finalized datanodes.
        self.finalized: dict[int, set[str]] = {}
        self.sizes: dict[int, int] = {}

    blocks = Bundle("blocks")

    @rule(target=blocks, size=st.integers(min_value=1, max_value=1 << 20))
    def allocate(self, size):
        block = self.manager.allocate("/f", index=len(self.sizes), size=size)
        self.finalized[block.block_id] = set()
        self.sizes[block.block_id] = size
        return block.block_id

    @rule(block_id=blocks, dns=st.sets(st.sampled_from(DATANODES), max_size=3))
    def expect(self, block_id, dns):
        self.manager.expect_replicas(block_id, tuple(sorted(dns)))

    @rule(block_id=blocks, dn=st.sampled_from(DATANODES))
    def receive(self, block_id, dn):
        self.manager.replica_received(block_id, dn, self.sizes[block_id])
        self.finalized[block_id].add(dn)

    @rule(block_id=blocks, dn=st.sampled_from(DATANODES))
    def drop(self, block_id, dn):
        self.manager.drop_replica(block_id, dn)
        self.finalized[block_id].discard(dn)

    @rule(block_id=blocks)
    def commit(self, block_id):
        self.manager.commit(block_id)

    @rule(block_id=blocks)
    def bump(self, block_id):
        before = self.manager.info(block_id).block.generation
        bumped = self.manager.bump_generation(block_id)
        assert bumped.generation == before + 1

    @rule(dn=st.sampled_from(DATANODES))
    def remove_datanode(self, dn):
        affected = self.manager.remove_datanode(dn)
        for block_id in self.finalized:
            self.finalized[block_id].discard(dn)
        # Everything reported affected really referenced the datanode.
        for block_id in affected:
            assert dn not in self.manager.locations(block_id)

    # ------------------------------------------------------------------
    @invariant()
    def locations_match_shadow_model(self):
        for block_id, expected in self.finalized.items():
            assert set(self.manager.locations(block_id)) == expected
            assert self.manager.replication_of(block_id) == len(expected)

    @invariant()
    def under_replicated_is_consistent(self):
        flagged = set(self.manager.under_replicated(3))
        for block_id, dns in self.finalized.items():
            assert (block_id in flagged) == (len(dns) < 3)

    @invariant()
    def blocks_on_inverts_locations(self):
        for dn in DATANODES:
            for block_id in self.manager.blocks_on(dn):
                info = self.manager.info(block_id)
                assert dn in info.replicas

    @invariant()
    def committed_state_sticks(self):
        for block_id in self.finalized:
            state = self.manager.info(block_id).state
            assert state in (BlockState.UNDER_CONSTRUCTION, BlockState.COMPLETE)


TestBlockManagerStateful = BlockManagerMachine.TestCase
TestBlockManagerStateful.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
