"""Regression: the replication monitor must not fight a decommission.

A decommissioning datanode is unschedulable but *alive*: its replicas
still exist and serve as copy sources.  The monitor's dead-node sweep
must leave them in the block map (it once keyed off schedulability and
silently dropped them).
"""

import pytest

from repro.cluster import SMALL, build_homogeneous
from repro.config import SimulationConfig
from repro.hdfs import DecommissionManager, HdfsDeployment
from repro.sim import Environment
from repro.units import KB, MB


def test_decommissioning_replicas_survive_monitor_sweeps():
    env = Environment()
    cfg = SimulationConfig().with_hdfs(
        block_size=2 * MB, packet_size=64 * KB, heartbeat_interval=0.5
    )
    cluster = build_homogeneous(env, SMALL, n_datanodes=9, config=cfg)
    deployment = HdfsDeployment(cluster)  # monitor ON
    client = deployment.client()
    env.run(until=env.process(client.put("/f", 6 * MB)))
    env.run(until=env.now + 1)

    nn = deployment.namenode
    victim = nn.blocks.locations(nn.namespace.get("/f").blocks[0].block_id)[0]
    held_before = set(nn.blocks.blocks_on(victim))
    nn.datanodes.start_decommission(victim)

    # Several monitor sweeps pass while the node is decommissioning.
    env.run(until=env.now + 10)
    assert set(nn.blocks.blocks_on(victim)) == held_before
    # And the monitor performed no bogus healing for this node's blocks.
    healed_blocks = {b for b, _, _ in deployment.replication_monitor.completed}
    assert not healed_blocks & held_before


def test_decommission_completes_with_monitor_running():
    env = Environment()
    cfg = SimulationConfig().with_hdfs(
        block_size=2 * MB, packet_size=64 * KB, heartbeat_interval=0.5
    )
    cluster = build_homogeneous(env, SMALL, n_datanodes=9, config=cfg)
    deployment = HdfsDeployment(cluster)  # monitor ON
    client = deployment.client()
    env.run(until=env.process(client.put("/f", 6 * MB)))
    env.run(until=env.now + 1)

    nn = deployment.namenode
    victim = nn.blocks.locations(nn.namespace.get("/f").blocks[0].block_id)[0]
    admin = DecommissionManager(deployment)
    env.run(until=env.process(admin.decommission(victim)))
    assert nn.datanodes.descriptor(victim).decommissioned
    for block in nn.namespace.get("/f").blocks:
        elsewhere = [
            d for d in nn.blocks.locations(block.block_id) if d != victim
        ]
        assert len(elsewhere) >= 3
