"""Packet-train coalescing: equivalence and invalidation tests.

The fast path (``HdfsConfig.coalesce_packets == 0``, the default) must be
*behaviour-preserving*: every observable — upload duration, the protocol
journal, NIC/disk byte counters, buffer high-water marks, recovery counts
— must be bit-identical to the per-packet loop (``coalesce_packets=1``).
These tests drive both modes through steady-state uploads, mid-train
throttle changes (the split/re-quote path) and unscheduled datanode kills
(the error settle), comparing the full observable history.
"""

import pytest

from repro.cluster import SMALL, build_homogeneous
from repro.config import SimulationConfig
from repro.hdfs import HdfsClient, HdfsDeployment
from repro.hdfs.train import plan_train
from repro.net.throttle import NodeThrottle
from repro.sim import Environment
from repro.smarth import SmarthClient
from repro.units import KB, MB, mbps

UPLOAD = 64 * MB


def _config(coalesce: int) -> SimulationConfig:
    return SimulationConfig().with_hdfs(
        block_size=16 * MB, packet_size=64 * KB, coalesce_packets=coalesce
    )


def _run(coalesce, chaos=None, client_cls=HdfsClient, size=UPLOAD):
    env = Environment()
    cluster = build_homogeneous(
        env, SMALL, n_datanodes=9, config=_config(coalesce)
    )
    deployment = HdfsDeployment(cluster)
    client = client_cls(deployment)
    if chaos is not None:
        env.process(chaos(env, deployment), name="chaos")
    result = env.run(until=env.process(client.put("/data/f.bin", size)))
    return result, deployment


def _observables(result, deployment):
    journal = [
        (e.time, e.kind, e.subject, tuple(sorted(e.details.items())))
        for e in deployment.journal.events()
    ]
    counters = {
        name: (
            dn.node.nic.bytes_sent,
            dn.node.nic.bytes_received,
            dn.node.disk.bytes_written,
        )
        for name, dn in deployment.datanodes.items()
    }
    return {
        "duration": result.duration,
        "recoveries": result.recoveries,
        "pipelines": result.pipelines,
        "journal": journal,
        "counters": counters,
    }


def _assert_equivalent(chaos=None, client_cls=HdfsClient):
    legacy = _observables(*_run(1, chaos=chaos, client_cls=client_cls))
    train = _observables(*_run(0, chaos=chaos, client_cls=client_cls))
    for key in legacy:
        assert train[key] == legacy[key], f"{key} diverged from legacy"


class TestSteadyStateEquivalence:
    def test_hdfs_upload_bit_identical(self):
        _assert_equivalent()

    def test_smarth_upload_bit_identical(self):
        _assert_equivalent(client_cls=SmarthClient)

    def test_train_actually_engages(self):
        """The fast path must reduce events, not silently decline."""
        env_events = {}
        for coalesce in (1, 0):
            env = Environment()
            cluster = build_homogeneous(
                env, SMALL, n_datanodes=9, config=_config(coalesce)
            )
            deployment = HdfsDeployment(cluster)
            client = HdfsClient(deployment)
            env.run(until=env.process(client.put("/data/f.bin", UPLOAD)))
            env_events[coalesce] = env.events_processed
        assert env_events[0] * 3 <= env_events[1]


class TestMidTrainThrottle:
    """A ``tc`` rule change lands while trains are in flight: the affected
    trains must split at the change point — frozen prefix kept, suffix
    re-quoted at the new effective rates — and stay bit-identical."""

    @pytest.mark.parametrize("at", [0.4, 1.1, 2.2])
    def test_throttle_splits_train(self, at):
        def chaos(env, deployment):
            yield env.timeout(at)
            busy = [
                d
                for d in deployment.datanodes.values()
                if d.active_receivers > 0
            ]
            for dn in busy[:2]:
                deployment.network.throttles.add(
                    NodeThrottle(dn.name, mbps(40))
                )
            yield env.timeout(0.9)
            deployment.network.throttles.remove_matching(
                lambda rule: isinstance(rule, NodeThrottle)
            )

        _assert_equivalent(chaos=chaos)

    def test_throttle_splits_smarth_train(self):
        def chaos(env, deployment):
            yield env.timeout(0.8)
            busy = [
                d
                for d in deployment.datanodes.values()
                if d.active_receivers > 0
            ]
            for dn in busy[:2]:
                deployment.network.throttles.add(
                    NodeThrottle(dn.name, mbps(40))
                )

        _assert_equivalent(chaos=chaos, client_cls=SmarthClient)


class TestMidTrainKill:
    """An *unscheduled* kill (no injector registration, so the train does
    engage) hits a pipeline datanode mid-train: the error settle must
    reconstruct the per-packet recovery state exactly."""

    @pytest.mark.parametrize("at", [0.3, 1.37, 2.6])
    def test_kill_settles_bit_identical(self, at):
        def chaos(env, deployment):
            yield env.timeout(at)
            busy = [
                d
                for d in deployment.datanodes.values()
                if d.active_receivers > 0 and d.node.alive
            ]
            if busy:
                busy[0].kill()

        _assert_equivalent(chaos=chaos)

    def test_kill_settles_smarth_train(self):
        def chaos(env, deployment):
            yield env.timeout(1.1)
            busy = [
                d
                for d in deployment.datanodes.values()
                if d.active_receivers > 0 and d.node.alive
            ]
            if busy:
                busy[0].kill()

        _assert_equivalent(chaos=chaos, client_cls=SmarthClient)

    def test_recovery_still_happens(self):
        def chaos(env, deployment):
            yield env.timeout(1.0)
            busy = [
                d
                for d in deployment.datanodes.values()
                if d.active_receivers > 0 and d.node.alive
            ]
            busy[0].kill()

        result, deployment = _run(0, chaos=chaos)
        assert result.recoveries >= 1
        assert deployment.namenode.file_fully_replicated("/data/f.bin")


class TestPredicateDeclines:
    """`plan_train` must stand down whenever coalescing could not be
    proven equivalent; these paths fall back to the per-packet loop."""

    def _fresh_pipeline(self, coalesce=0):
        env = Environment()
        cluster = build_homogeneous(
            env, SMALL, n_datanodes=9, config=_config(coalesce)
        )
        return env, cluster, HdfsDeployment(cluster)

    def _open(self, deployment, client_node, plan_size=16 * MB):
        from repro.hdfs.client.output_stream import plan_file
        from repro.hdfs.client.responder import PacketResponder
        from repro.sim import Store

        env = deployment.env
        namenode = deployment.namenode
        plan = plan_file(plan_size, deployment.config.hdfs)[0]

        def setup(env):
            yield from namenode.create_file("client", "/t.bin")
            result = yield from namenode.add_block(
                "client", "/t.bin", plan.size, excluded=set()
            )
            return result

        proc = env.process(setup(env))
        env.run(until=proc)
        result = proc.value
        handle = deployment.open_pipeline(
            result.block,
            result.targets,
            client_node,
            buffer_bytes=deployment.config.hdfs.socket_buffer,
        )
        responder = PacketResponder(env, result.block, handle.ack_in)
        queue = Store(env, capacity=8)
        return plan, handle, responder, queue

    def test_declines_when_coalescing_disabled(self):
        env, cluster, deployment = self._fresh_pipeline(coalesce=1)
        plan, handle, responder, queue = self._open(
            deployment, cluster.client_host
        )
        assert (
            plan_train(
                deployment, cluster.client_host, handle, responder, queue, plan
            )
            is None
        )

    def test_declines_on_scheduled_disturbance(self):
        env, cluster, deployment = self._fresh_pipeline()
        deployment.scheduled_disturbances.append(1.0)
        plan, handle, responder, queue = self._open(
            deployment, cluster.client_host
        )
        assert (
            plan_train(
                deployment, cluster.client_host, handle, responder, queue, plan
            )
            is None
        )

    def test_declines_on_resend(self):
        env, cluster, deployment = self._fresh_pipeline()
        plan, handle, responder, queue = self._open(
            deployment, cluster.client_host
        )
        assert (
            plan_train(
                deployment,
                cluster.client_host,
                handle,
                responder,
                queue,
                plan,
                fresh=False,
            )
            is None
        )

    def test_plans_train_on_clean_pipeline(self):
        env, cluster, deployment = self._fresh_pipeline()
        plan, handle, responder, queue = self._open(
            deployment, cluster.client_host
        )
        train = plan_train(
            deployment, cluster.client_host, handle, responder, queue, plan
        )
        assert train is not None
        assert train.sent_count == 0
        assert len(train.channels) >= 3

    def test_injector_scheduled_faults_decline_trains(self):
        """A registered injector schedule keeps every train off the road,
        so fault experiments replay the per-packet timeline verbatim."""
        from repro.faults import FaultInjector

        env, cluster, deployment = self._fresh_pipeline()
        injector = FaultInjector(deployment)
        injector.throttle_at("dn1", 50.0, at=5.0)
        plan, handle, responder, queue = self._open(
            deployment, cluster.client_host
        )
        assert (
            plan_train(
                deployment, cluster.client_host, handle, responder, queue, plan
            )
            is None
        )
