"""Unit tests for namenode block/replica bookkeeping."""

import pytest

from repro.hdfs import BlockManager, BlockState, FileNotFound


@pytest.fixture()
def bm():
    return BlockManager(start_id=100)


class TestAllocation:
    def test_ids_are_unique_and_increasing(self, bm):
        blocks = [bm.allocate("/f", i, 64) for i in range(5)]
        ids = [b.block_id for b in blocks]
        assert ids == sorted(set(ids))
        assert len(bm) == 5

    def test_allocate_records_info(self, bm):
        block = bm.allocate("/f", 0, 64)
        info = bm.info(block.block_id)
        assert info.state is BlockState.UNDER_CONSTRUCTION
        assert info.replicas == {}

    def test_unknown_block_raises(self, bm):
        with pytest.raises(FileNotFound):
            bm.info(9999)


class TestReplicas:
    def test_expect_then_receive(self, bm):
        block = bm.allocate("/f", 0, 64)
        bm.expect_replicas(block.block_id, ("dn0", "dn1", "dn2"))
        assert bm.replication_of(block.block_id) == 0  # pending, not final
        bm.replica_received(block.block_id, "dn0", 64)
        bm.replica_received(block.block_id, "dn1", 64)
        assert bm.replication_of(block.block_id) == 2
        assert bm.locations(block.block_id) == ("dn0", "dn1")

    def test_under_replicated(self, bm):
        b1 = bm.allocate("/f", 0, 64)
        b2 = bm.allocate("/f", 1, 64)
        for dn in ("dn0", "dn1", "dn2"):
            bm.replica_received(b1.block_id, dn, 64)
        bm.replica_received(b2.block_id, "dn0", 64)
        assert bm.under_replicated(3) == (b2.block_id,)
        assert bm.under_replicated(1) == ()

    def test_drop_replica(self, bm):
        block = bm.allocate("/f", 0, 64)
        bm.replica_received(block.block_id, "dn0", 64)
        bm.drop_replica(block.block_id, "dn0")
        assert bm.replication_of(block.block_id) == 0

    def test_remove_datanode_sweeps_all_blocks(self, bm):
        b1 = bm.allocate("/f", 0, 64)
        b2 = bm.allocate("/f", 1, 64)
        bm.replica_received(b1.block_id, "dn0", 64)
        bm.replica_received(b2.block_id, "dn0", 64)
        bm.replica_received(b2.block_id, "dn1", 64)
        affected = bm.remove_datanode("dn0")
        assert affected == (b1.block_id, b2.block_id)
        assert bm.locations(b2.block_id) == ("dn1",)

    def test_blocks_on(self, bm):
        b1 = bm.allocate("/f", 0, 64)
        bm.expect_replicas(b1.block_id, ("dn5",))
        assert bm.blocks_on("dn5") == (b1.block_id,)
        assert bm.blocks_on("dn9") == ()


class TestGeneration:
    def test_bump_generation(self, bm):
        block = bm.allocate("/f", 0, 64)
        assert block.generation == 0
        bumped = bm.bump_generation(block.block_id)
        assert bumped.generation == 1
        assert bm.info(block.block_id).block.generation == 1

    def test_commit(self, bm):
        block = bm.allocate("/f", 0, 64)
        bm.commit(block.block_id)
        assert bm.info(block.block_id).state is BlockState.COMPLETE
