"""Unit and property tests for the default rack-aware placement policy."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import HdfsConfig
from repro.hdfs import DefaultPlacementPolicy, NoDatanodesAvailable
from repro.hdfs.datanode_manager import DatanodeManager
from repro.net import Topology
from repro.sim import Environment


def make_policy(rack_map, seed=1, dead=()):
    env = Environment()
    topo = Topology.from_rack_map(rack_map)
    manager = DatanodeManager(env, HdfsConfig())
    for rack, hosts in rack_map.items():
        for host in hosts:
            manager.register(host, rack)
    for name in dead:
        manager.mark_dead(name)
    return DefaultPlacementPolicy(topo, manager, random.Random(seed))


TWO_RACKS = {
    "rack0": ["dn0", "dn2", "dn4", "dn6", "dn8"],
    "rack1": ["dn1", "dn3", "dn5", "dn7"],
}


class TestInvariants:
    def test_targets_distinct(self):
        policy = make_policy(TWO_RACKS)
        for _ in range(50):
            targets = policy.choose_targets("client", 3)
            assert len(set(targets)) == 3

    def test_second_replica_off_rack(self):
        policy = make_policy(TWO_RACKS)
        for _ in range(50):
            t = policy.choose_targets("client", 3)
            assert policy.topology.rack_of(t[0]) != policy.topology.rack_of(t[1])

    def test_third_replica_same_rack_as_second(self):
        policy = make_policy(TWO_RACKS)
        for _ in range(50):
            t = policy.choose_targets("client", 3)
            assert policy.topology.rack_of(t[1]) == policy.topology.rack_of(t[2])

    def test_client_datanode_gets_first_replica(self):
        policy = make_policy(TWO_RACKS)
        t = policy.choose_targets("dn4", 3)
        assert t[0] == "dn4"

    def test_excluded_nodes_never_chosen(self):
        policy = make_policy(TWO_RACKS)
        excluded = {"dn0", "dn1", "dn2"}
        for _ in range(50):
            t = policy.choose_targets("client", 3, excluded=excluded)
            assert not excluded & set(t)

    def test_dead_nodes_never_chosen(self):
        policy = make_policy(TWO_RACKS, dead=("dn3", "dn5", "dn7"))
        for _ in range(50):
            t = policy.choose_targets("client", 3)
            assert not {"dn3", "dn5", "dn7"} & set(t)

    def test_insufficient_datanodes_degrades(self):
        """Hadoop's chooseTarget places on fewer nodes when the cluster
        cannot satisfy the replication factor."""
        policy = make_policy({"rack0": ["dn0", "dn1"]})
        targets = policy.choose_targets("client", 3)
        assert sorted(targets) == ["dn0", "dn1"]

    def test_no_datanodes_raises(self):
        policy = make_policy({"rack0": ["dn0"]}, dead=("dn0",))
        with pytest.raises(NoDatanodesAvailable):
            policy.choose_targets("client", 3)

    def test_invalid_replication(self):
        policy = make_policy(TWO_RACKS)
        with pytest.raises(ValueError):
            policy.choose_targets("client", 0)

    def test_single_rack_fallback(self):
        policy = make_policy({"rack0": ["dn0", "dn1", "dn2", "dn3"]})
        t = policy.choose_targets("client", 3)
        assert len(set(t)) == 3  # fell back to same-rack placement

    def test_replication_beyond_three(self):
        policy = make_policy(TWO_RACKS)
        t = policy.choose_targets("client", 5)
        assert len(set(t)) == 5

    def test_determinism_per_seed(self):
        a = make_policy(TWO_RACKS, seed=42)
        b = make_policy(TWO_RACKS, seed=42)
        seq_a = [a.choose_targets("client", 3) for _ in range(10)]
        seq_b = [b.choose_targets("client", 3) for _ in range(10)]
        assert seq_a == seq_b


@given(
    n_r0=st.integers(min_value=1, max_value=12),
    n_r1=st.integers(min_value=1, max_value=12),
    repli=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=200, deadline=None)
def test_placement_properties(n_r0, n_r1, repli, seed):
    """For any cluster shape: targets are distinct live nodes, and when both
    racks have nodes and replication >= 2, replicas span >= 2 racks."""
    rack_map = {
        "rack0": [f"a{i}" for i in range(n_r0)],
        "rack1": [f"b{i}" for i in range(n_r1)],
    }
    policy = make_policy(rack_map, seed=seed)
    total = n_r0 + n_r1
    targets = policy.choose_targets("client", repli)
    expected = min(repli, total)
    assert len(set(targets)) == len(targets) == expected
    racks = {policy.topology.rack_of(t) for t in targets}
    if expected >= 2 and n_r0 >= 1 and n_r1 >= 1:
        assert len(racks) >= 2
