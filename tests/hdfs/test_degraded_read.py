"""Degraded-read coverage: reads racing datanode death.

The existing read-path tests kill replicas *between* operations; these
kill them *mid-stream* and check the contract the reader must keep while
the cluster degrades underneath it:

* a source dying mid-block makes the reader fall back to the
  nearest-next candidate, transparently and completely;
* a read never serves un-acked bytes — every source it used held a
  *finalized* replica of that block, even when the file was written
  through a pipeline failure.
"""

from __future__ import annotations

import pytest

from repro.cluster import SMALL, build_homogeneous
from repro.config import SimulationConfig
from repro.hdfs import BlockUnavailable, HdfsDeployment, HdfsReader
from repro.sim import Environment
from repro.smarth import SmarthDeployment
from repro.units import KB, MB


def build(smarth=False, n_datanodes=9, seed=0):
    env = Environment()
    cfg = SimulationConfig(seed=seed).with_hdfs(
        block_size=2 * MB, packet_size=64 * KB
    )
    cluster = build_homogeneous(env, SMALL, n_datanodes=n_datanodes, config=cfg)
    deployment = SmarthDeployment(cluster) if smarth else HdfsDeployment(cluster)
    return env, deployment


def ingest(env, deployment, size, path="/f"):
    client = deployment.client()
    env.run(until=env.process(client.put(path, size)))
    return deployment.namenode.namespace.get(path)


@pytest.mark.parametrize("smarth", [False, True], ids=["hdfs", "smarth"])
def test_source_death_mid_stream_falls_back_nearest_next(smarth):
    env, deployment = build(smarth=smarth)
    inode = ingest(env, deployment, 4 * MB)
    reader = HdfsReader(deployment)
    block0 = inode.blocks[0]
    candidates = reader._candidates(block0)

    def killer(env):
        # Partway through block 0's stream (a 2 MB block takes ~75 ms at
        # NIC rate) — strictly after the read began.
        yield env.timeout(0.02)
        deployment.datanode(candidates[0]).kill()

    env.process(killer(env))
    result = env.run(until=env.process(reader.get("/f")))

    assert result.size == 4 * MB
    sources = dict(result.sources)
    # The reader abandoned the dead first choice and continued from the
    # next-nearest candidate of its original preference order.
    assert sources[block0.block_id] != candidates[0]
    assert sources[block0.block_id] == candidates[1]
    # Every block was still served in full from a live holder.
    for block_id, source in result.sources:
        assert deployment.datanode(source).node.alive


def test_later_block_unavailable_raises_after_partial_progress():
    env, deployment = build(n_datanodes=6)
    inode = ingest(env, deployment, 4 * MB)
    last = inode.blocks[-1]
    for holder in list(deployment.namenode.blocks.locations(last.block_id)):
        deployment.datanode(holder).kill()
    reader = HdfsReader(deployment)
    with pytest.raises(BlockUnavailable):
        env.run(until=env.process(reader.get("/f")))


@pytest.mark.parametrize("smarth", [False, True], ids=["hdfs", "smarth"])
def test_sources_are_finalized_replicas_after_pipeline_failure(smarth):
    """Never serve un-acked bytes.

    Kill a datanode while it is mid-pipeline for the write, so some
    expected-but-never-acked replicas exist; the reader must source each
    block only from replicas the namenode finalized (acked), never from
    a node that merely *expected* the block.
    """
    env, deployment = build(smarth=smarth)

    def killer(env):
        yield env.timeout(0.05)
        busy = [
            d
            for d in deployment.datanodes.values()
            if d.active_receivers > 0 and d.node.alive
        ]
        if busy:
            busy[0].kill()

    env.process(killer(env))
    ingest(env, deployment, 8 * MB)

    reader = HdfsReader(deployment)
    result = env.run(until=env.process(reader.get("/f")))
    assert result.size == 8 * MB

    blocks = deployment.namenode.blocks
    for block_id, source in result.sources:
        assert source in blocks.locations(block_id), (
            f"block {block_id} read from {source}, which never acked it"
        )
        assert deployment.datanode(source).node.alive


def test_candidates_exclude_dead_and_unacked_holders():
    env, deployment = build()
    inode = ingest(env, deployment, 2 * MB)
    block = inode.blocks[0]
    blocks = deployment.namenode.blocks
    reader = HdfsReader(deployment)

    finalized = list(blocks.locations(block.block_id))
    # An expected-but-unacked replica must never become a candidate.
    spare = next(
        name
        for name in sorted(deployment.datanodes)
        if name not in finalized
    )
    blocks.expect_replicas(block.block_id, (spare,))
    assert spare not in reader._candidates(block)

    # Neither must a dead holder, even though it acked the block once.
    deployment.datanode(finalized[0]).kill()
    remaining = reader._candidates(block)
    assert finalized[0] not in remaining
    assert set(remaining) == set(finalized) - {finalized[0]}
