"""Unit tests for the datanode service and BlockReceiver mechanics."""

import pytest

from repro.cluster import SMALL, build_homogeneous
from repro.config import SimulationConfig
from repro.hdfs import HdfsDeployment
from repro.hdfs.protocol import Packet
from repro.sim import Environment, Store
from repro.units import KB, MB, mbps


def make(n_datanodes=3, **hdfs):
    env = Environment()
    defaults = dict(block_size=MB, packet_size=64 * KB)
    defaults.update(hdfs)
    cfg = SimulationConfig().with_hdfs(**defaults)
    cluster = build_homogeneous(env, SMALL, n_datanodes=n_datanodes, config=cfg)
    deployment = HdfsDeployment(cluster, enable_replication_monitor=False)
    return env, deployment


def packets_for(block, packet_size):
    sizes = []
    remaining = block.size
    while remaining > 0:
        p = min(packet_size, remaining)
        sizes.append(p)
        remaining -= p
    return [
        Packet(block, seq, size, is_last=(seq == len(sizes) - 1))
        for seq, size in enumerate(sizes)
    ]


class TestSingleReceiver:
    def test_receives_and_finalizes(self):
        env, dep = make()
        block = dep.namenode.blocks.allocate("/f", 0, 256 * KB)
        handle = dep.open_pipeline(block, ("dn0",), dep.cluster.client_host)
        receiver = handle.receivers[0]

        def feed(env):
            for pkt in packets_for(block, 64 * KB):
                yield from receiver.send_in(dep.cluster.client_host, pkt)

        env.process(feed(env))
        env.run(until=5)
        assert receiver.finalized
        assert receiver.bytes_received == 256 * KB
        assert dep.namenode.replication_of(block.block_id) == 1

    def test_acks_arrive_in_order(self):
        env, dep = make()
        block = dep.namenode.blocks.allocate("/f", 0, 256 * KB)
        handle = dep.open_pipeline(block, ("dn0",), dep.cluster.client_host)
        receiver = handle.receivers[0]

        def feed(env):
            for pkt in packets_for(block, 64 * KB):
                yield from receiver.send_in(dep.cluster.client_host, pkt)

        env.process(feed(env))
        seqs = []

        def drain(env):
            for _ in range(4):
                ack = yield handle.ack_in.get()
                seqs.append(ack.seq)

        env.process(drain(env))
        env.run(until=5)
        assert seqs == [0, 1, 2, 3]

    def test_initial_bytes_counted_in_report(self):
        env, dep = make()
        block = dep.namenode.blocks.allocate("/f", 0, 256 * KB)
        handle = dep.open_pipeline(
            block,
            ("dn0",),
            dep.cluster.client_host,
            initial_bytes=128 * KB,
        )
        receiver = handle.receivers[0]
        tail = Packet(block, 0, 128 * KB, is_last=True)

        def feed(env):
            yield from receiver.send_in(dep.cluster.client_host, tail)

        env.process(feed(env))
        env.run(until=5)
        info = dep.namenode.blocks.info(block.block_id)
        assert info.replicas["dn0"].bytes_confirmed == 256 * KB


class TestBackpressure:
    def test_bounded_buffer_blocks_sender(self):
        """With a tiny buffer and a stalled pipeline, the sender waits."""
        env, dep = make(packet_size=64 * KB)
        block = dep.namenode.blocks.allocate("/f", 0, MB)
        # Two-node pipeline; throttle the forward hop to near-zero so the
        # first receiver's buffer fills and stays full.
        dep.cluster.throttle_node("dn1", 0.001)
        handle = dep.open_pipeline(
            block,
            ("dn0", "dn1"),
            dep.cluster.client_host,
            buffer_bytes=4 * 64 * KB,
        )
        receiver = handle.receivers[0]
        fed = []

        def feed(env):
            for pkt in packets_for(block, 64 * KB):
                yield from receiver.send_in(dep.cluster.client_host, pkt)
                fed.append(env.now)

        env.process(feed(env))
        env.run(until=30)
        # 16 packets total; buffer 4 + 1 in flight — the sender must be
        # blocked long before feeding everything.
        assert len(fed) < 8

    def test_fnfa_independent_of_downstream(self):
        """The paper's core mechanism: first-node store completes at
        first-hop speed even when the forward hop crawls."""
        env, dep = make(packet_size=64 * KB)
        block = dep.namenode.blocks.allocate("/f", 0, MB)
        dep.cluster.throttle_node("dn1", 1)  # 1 Mbps forward hop
        handle = dep.open_pipeline(
            block,
            ("dn0", "dn1"),
            dep.cluster.client_host,
            want_fnfa=True,
            buffer_bytes=MB,
        )
        receiver = handle.receivers[0]

        def feed(env):
            for pkt in packets_for(block, 64 * KB):
                yield from receiver.send_in(dep.cluster.client_host, pkt)

        env.process(feed(env))

        got = []

        def wait_fnfa(env):
            fnfa = yield handle.fnfa_in.get()
            got.append(fnfa.finished_at)

        env.process(wait_fnfa(env))
        env.run(until=20)
        # 1 MB at 216 Mbps ≈ 0.04 s; at the throttled 1 Mbps it would be
        # ≈ 8.4 s.  FNFA must arrive at first-hop speed.
        assert got and got[0] < 1.0


class TestKillSemantics:
    def test_kill_fires_error_with_name(self):
        env, dep = make()
        block = dep.namenode.blocks.allocate("/f", 0, MB)
        handle = dep.open_pipeline(
            block, ("dn0", "dn1"), dep.cluster.client_host
        )

        def killer(env):
            yield env.timeout(0.01)
            dep.datanode("dn1").kill()

        env.process(killer(env))
        receiver = handle.receivers[0]

        def feed(env):
            for pkt in packets_for(block, 64 * KB):
                yield from receiver.send_in(dep.cluster.client_host, pkt)

        env.process(feed(env))
        env.run(until=5)
        assert handle.error.triggered
        assert handle.error.value == "dn1"

    def test_open_receiver_on_dead_datanode_raises(self):
        env, dep = make()
        dep.datanode("dn0").kill()
        block = dep.namenode.blocks.allocate("/f", 0, MB)
        with pytest.raises(RuntimeError, match="dead"):
            dep.open_pipeline(block, ("dn0",), dep.cluster.client_host)

    def test_teardown_is_idempotent(self):
        env, dep = make()
        block = dep.namenode.blocks.allocate("/f", 0, MB)
        handle = dep.open_pipeline(block, ("dn0", "dn1"), dep.cluster.client_host)
        handle.teardown()
        handle.teardown()  # second call is a no-op
        env.run(until=1)
        assert dep.datanode("dn0").active_receivers == 0
        assert dep.datanode("dn1").active_receivers == 0
