"""Integration tests for graceful datanode decommissioning."""

import pytest

from repro.cluster import SMALL, build_homogeneous
from repro.config import SimulationConfig
from repro.hdfs import DecommissionManager, HdfsDeployment
from repro.sim import Environment
from repro.units import KB, MB


def build(n_datanodes=9):
    env = Environment()
    cfg = SimulationConfig().with_hdfs(
        block_size=2 * MB, packet_size=64 * KB, heartbeat_interval=0.5
    )
    cluster = build_homogeneous(env, SMALL, n_datanodes=n_datanodes, config=cfg)
    deployment = HdfsDeployment(cluster, enable_replication_monitor=False)
    return env, deployment


def upload(env, deployment, size=8 * MB, path="/f"):
    client = deployment.client()
    result = env.run(until=env.process(client.put(path, size)))
    env.run(until=env.now + 1)
    return result


class TestDecommission:
    def test_drain_preserves_replication(self):
        env, deployment = build()
        upload(env, deployment)
        nn = deployment.namenode
        victim = nn.blocks.locations(nn.namespace.get("/f").blocks[0].block_id)[0]
        had_blocks = len(nn.blocks.blocks_on(victim))
        assert had_blocks > 0

        admin = DecommissionManager(deployment)
        copies = env.run(until=env.process(admin.decommission(victim)))
        assert copies == had_blocks
        # Every block still has `replication` live copies off the node.
        for block in nn.namespace.get("/f").blocks:
            elsewhere = [
                d for d in nn.blocks.locations(block.block_id) if d != victim
            ]
            assert len(elsewhere) >= 3
        assert nn.datanodes.descriptor(victim).decommissioned

    def test_empty_node_decommissions_instantly(self):
        env, deployment = build()
        upload(env, deployment, size=2 * MB)
        nn = deployment.namenode
        block = nn.namespace.get("/f").blocks[0]
        holders = set(nn.blocks.locations(block.block_id))
        idle = next(d for d in deployment.datanodes if d not in holders)
        admin = DecommissionManager(deployment)
        copies = env.run(until=env.process(admin.decommission(idle)))
        assert copies == 0
        assert nn.datanodes.descriptor(idle).decommissioned

    def test_decommissioning_node_excluded_from_new_pipelines(self):
        env, deployment = build()
        nn = deployment.namenode
        nn.datanodes.start_decommission("dn0")
        result = upload(env, deployment, size=8 * MB)
        for pipeline in result.pipelines:
            assert "dn0" not in pipeline

    def test_decommissioned_node_safe_to_kill(self):
        """The whole point: powering the node off loses no data."""
        env, deployment = build()
        upload(env, deployment)
        nn = deployment.namenode
        victim = nn.blocks.locations(nn.namespace.get("/f").blocks[0].block_id)[0]
        admin = DecommissionManager(deployment)
        env.run(until=env.process(admin.decommission(victim)))
        deployment.datanode(victim).kill()
        nn.blocks.remove_datanode(victim)
        assert nn.file_fully_replicated("/f")

    def test_drain_fails_when_cluster_too_small(self):
        env, deployment = build(n_datanodes=3)
        upload(env, deployment, size=2 * MB)
        nn = deployment.namenode
        victim = nn.blocks.locations(nn.namespace.get("/f").blocks[0].block_id)[0]
        admin = DecommissionManager(deployment)
        with pytest.raises(RuntimeError, match="no target"):
            env.run(until=env.process(admin.decommission(victim)))
