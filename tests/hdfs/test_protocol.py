"""Unit tests for protocol data types and their invariants."""

import pytest

from repro.hdfs.protocol import (
    Ack,
    Block,
    BlockTargets,
    Packet,
    PipelineFailure,
    WriteResult,
)
from repro.units import MB


class TestBlock:
    def test_with_generation_preserves_identity(self):
        block = Block(7, "/f", 2, MB)
        bumped = block.with_generation(3)
        assert bumped.block_id == 7
        assert bumped.index == 2
        assert bumped.generation == 3
        assert block.generation == 0  # immutable original

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Block(1, "/f", 0, -1)

    def test_frozen(self):
        block = Block(1, "/f", 0, MB)
        with pytest.raises(AttributeError):
            block.size = 2


class TestPacket:
    def test_validation(self):
        block = Block(1, "/f", 0, MB)
        with pytest.raises(ValueError):
            Packet(block, 0, 0)
        with pytest.raises(ValueError):
            Packet(block, -1, 100)

    def test_is_last_default(self):
        block = Block(1, "/f", 0, MB)
        assert not Packet(block, 0, 100).is_last


class TestBlockTargets:
    def test_requires_targets(self):
        block = Block(1, "/f", 0, MB)
        with pytest.raises(ValueError):
            BlockTargets(block, ())

    def test_rejects_duplicates(self):
        block = Block(1, "/f", 0, MB)
        with pytest.raises(ValueError):
            BlockTargets(block, ("dn0", "dn0"))


class TestWriteResult:
    def test_duration_and_throughput(self):
        result = WriteResult(
            path="/f", size=10 * MB, start=1.0, end=6.0, n_blocks=1, system="x"
        )
        assert result.duration == 5.0
        assert result.throughput == pytest.approx(2 * MB)

    def test_zero_duration_throughput(self):
        result = WriteResult(
            path="/f", size=MB, start=1.0, end=1.0, n_blocks=1, system="x"
        )
        assert result.throughput == float("inf")


class TestExceptions:
    def test_pipeline_failure_carries_context(self):
        failure = PipelineFailure(42, "dn3")
        assert failure.block_id == 42
        assert failure.failed_datanode == "dn3"
        assert "dn3" in str(failure)

    def test_ack_defaults(self):
        ack = Ack(1, 0)
        assert ack.ok
        assert ack.failed_datanode is None
