"""Unit tests for the client-side PacketResponder."""

import pytest

from repro.hdfs.client.responder import PacketResponder
from repro.hdfs.protocol import Ack, Block, Packet
from repro.sim import Environment, Store


@pytest.fixture()
def env():
    return Environment()


def setup(env, n_packets=3, block_id=1):
    block = Block(block_id, "/f", 0, n_packets * 100)
    ack_in = Store(env)
    responder = PacketResponder(env, block, ack_in)
    packets = [
        Packet(block, seq, 100, is_last=(seq == n_packets - 1))
        for seq in range(n_packets)
    ]
    return block, ack_in, responder, packets


class TestAckMatching:
    def test_in_order_acks_drain_queue(self, env):
        block, ack_in, responder, packets = setup(env)
        for pkt in packets:
            responder.packet_sent(pkt)

        def feed(env):
            for seq in range(3):
                yield ack_in.put(Ack(block.block_id, seq))

        env.process(feed(env))
        env.run(until=1)
        assert responder.block_done.triggered
        assert responder.acked_count == 3
        assert responder.acked_bytes == 300
        assert not responder.ack_queue

    def test_wrong_block_acks_ignored(self, env):
        block, ack_in, responder, packets = setup(env)
        responder.packet_sent(packets[0])

        def feed(env):
            yield ack_in.put(Ack(999, 0))  # stale generation / other block
            yield ack_in.put(Ack(block.block_id, 0))

        env.process(feed(env))
        env.run(until=1)
        assert responder.acked_count == 1

    def test_out_of_order_ack_ignored(self, env):
        block, ack_in, responder, packets = setup(env)
        for pkt in packets:
            responder.packet_sent(pkt)

        def feed(env):
            yield ack_in.put(Ack(block.block_id, 2))  # head is seq 0
            yield ack_in.put(Ack(block.block_id, 0))

        env.process(feed(env))
        env.run(until=1)
        assert responder.acked_count == 1
        assert responder.ack_queue[0].seq == 1

    def test_ack_before_send_ignored(self, env):
        block, ack_in, responder, packets = setup(env)

        def feed(env):
            yield ack_in.put(Ack(block.block_id, 0))

        env.process(feed(env))
        env.run(until=1)
        assert responder.acked_count == 0

    def test_block_done_carries_block(self, env):
        block, ack_in, responder, packets = setup(env, n_packets=1)
        responder.packet_sent(packets[0])

        def feed(env):
            yield ack_in.put(Ack(block.block_id, 0))

        env.process(feed(env))
        env.run(until=1)
        assert responder.block_done.value is block


class TestRecoveryHooks:
    def test_unacked_packets_drains(self, env):
        block, ack_in, responder, packets = setup(env)
        for pkt in packets:
            responder.packet_sent(pkt)

        def feed(env):
            yield ack_in.put(Ack(block.block_id, 0))

        env.process(feed(env))
        env.run(until=1)
        unacked = responder.unacked_packets()
        assert [p.seq for p in unacked] == [1, 2]
        assert not responder.ack_queue

    def test_stop_interrupts(self, env):
        block, ack_in, responder, packets = setup(env)
        env.run(until=0.1)
        responder.stop()
        env.run(until=0.2)
        assert not responder._proc.is_alive
