"""Integration tests for Algorithm 3: baseline pipeline fault recovery."""

import pytest

from repro.cluster import SMALL, build_homogeneous
from repro.config import SimulationConfig
from repro.hdfs import HdfsClient, HdfsDeployment
from repro.hdfs.client import RecoveryFailed
from repro.sim import Environment
from repro.units import KB, MB


def build(n_datanodes=9, replication=3):
    env = Environment()
    cfg = SimulationConfig().with_hdfs(
        block_size=2 * MB, packet_size=64 * KB, replication=replication
    )
    cluster = build_homogeneous(env, SMALL, n_datanodes=n_datanodes, config=cfg)
    deployment = HdfsDeployment(cluster)
    return env, deployment


def kill_at(env, deployment, name, at):
    def killer(env):
        yield env.timeout(at)
        deployment.datanode(name).kill()

    env.process(killer(env))


def kill_pipeline_member_at(env, deployment, client, at, member_index=0):
    """Kill whichever datanode is serving as pipeline member N at time `at`."""
    victims = []

    def killer(env):
        yield env.timeout(at)
        # Find a datanode with an active receiver.
        active = [
            d
            for d in deployment.datanodes.values()
            if d.active_receivers > 0 and d.node.alive
        ]
        if active:
            victim = active[min(member_index, len(active) - 1)]
            victims.append(victim.name)
            victim.kill()

    env.process(killer(env))
    return victims


class TestRecovery:
    def test_upload_survives_single_failure(self):
        env, deployment = build()
        client = HdfsClient(deployment)
        victims = kill_pipeline_member_at(env, deployment, client, at=0.05)
        result = env.run(until=env.process(client.put("/f", 8 * MB)))
        assert victims, "the killer found no active datanode to kill"
        assert result.recoveries >= 1
        assert deployment.namenode.file_fully_replicated("/f")

    def test_failed_node_not_in_final_locations(self):
        env, deployment = build()
        client = HdfsClient(deployment)
        victims = kill_pipeline_member_at(env, deployment, client, at=0.05)
        env.run(until=env.process(client.put("/f", 8 * MB)))
        assert victims
        nn = deployment.namenode
        for block in nn.namespace.get("/f").blocks:
            assert victims[0] not in nn.blocks.locations(block.block_id)

    def test_all_replicas_full_size_after_recovery(self):
        env, deployment = build()
        client = HdfsClient(deployment)
        victims = kill_pipeline_member_at(env, deployment, client, at=0.08)
        env.run(until=env.process(client.put("/f", 6 * MB)))
        assert victims
        nn = deployment.namenode
        for block in nn.namespace.get("/f").blocks:
            info = nn.blocks.info(block.block_id)
            finalized = [r for r in info.replicas.values() if r.finalized]
            assert len(finalized) >= 3
            for replica in finalized:
                assert replica.bytes_confirmed == block.size

    def test_recovery_is_slower_than_clean_run(self):
        env_clean, dep_clean = build()
        clean = env_clean.run(
            until=env_clean.process(HdfsClient(dep_clean).put("/f", 8 * MB))
        )
        env_faulty, dep_faulty = build()
        client = HdfsClient(dep_faulty)
        kill_pipeline_member_at(env_faulty, dep_faulty, client, at=0.05)
        faulty = env_faulty.run(until=env_faulty.process(client.put("/f", 8 * MB)))
        assert faulty.duration > clean.duration

    def test_two_failures_same_upload(self):
        env, deployment = build()
        client = HdfsClient(deployment)
        v1 = kill_pipeline_member_at(env, deployment, client, at=0.05)
        v2 = kill_pipeline_member_at(env, deployment, client, at=0.30)
        result = env.run(until=env.process(client.put("/f", 10 * MB)))
        assert v1 and v2
        assert result.recoveries >= 2
        assert deployment.namenode.file_fully_replicated("/f")

    def test_generation_bumped_on_recovery(self):
        env, deployment = build()
        client = HdfsClient(deployment)
        kill_pipeline_member_at(env, deployment, client, at=0.05)
        env.run(until=env.process(client.put("/f", 4 * MB)))
        nn = deployment.namenode
        generations = [b.generation for b in nn.namespace.get("/f").blocks]
        assert max(generations) >= 1

    def test_replication_degrades_when_cluster_exhausted(self):
        """With exactly `replication` datanodes and one dead, recovery
        proceeds with a shorter pipeline rather than failing."""
        env, deployment = build(n_datanodes=3)
        client = HdfsClient(deployment)
        victims = kill_pipeline_member_at(env, deployment, client, at=0.05)
        result = env.run(until=env.process(client.put("/f", 4 * MB)))
        assert victims
        assert result.recoveries >= 1
        nn = deployment.namenode
        for block in nn.namespace.get("/f").blocks:
            assert nn.blocks.replication_of(block.block_id) >= 2

    def test_unrecoverable_when_all_pipeline_nodes_die(self):
        env, deployment = build(n_datanodes=3, replication=3)

        def killer(env):
            yield env.timeout(0.05)
            for name in list(deployment.datanodes):
                deployment.datanode(name).kill()

        env.process(killer(env))
        client = HdfsClient(deployment)
        with pytest.raises(RecoveryFailed):
            env.run(until=env.process(client.put("/f", 4 * MB)))


class TestFaultSignals:
    def test_kill_before_upload_excludes_node(self):
        env, deployment = build()
        deployment.datanode("dn0").kill()
        # Wait for the namenode to notice.
        env.run(until=deployment.namenode.datanodes.dead_after * 2 + 5)
        client = HdfsClient(deployment)
        result = env.run(until=env.process(client.put("/f", 6 * MB)))
        for pipeline in result.pipelines:
            assert "dn0" not in pipeline
        assert deployment.namenode.file_fully_replicated("/f")

    def test_killed_datanode_stops_heartbeating(self):
        env, deployment = build()
        deployment.datanode("dn1").kill()
        env.run(until=deployment.namenode.datanodes.dead_after * 3)
        assert "dn1" not in deployment.namenode.datanodes.live_datanodes()
