"""Stateful property test for the namespace: leases and lifecycle."""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.hdfs import (
    FileAlreadyExists,
    FileState,
    LeaseConflict,
    Namespace,
)

PATHS = [f"/f{i}" for i in range(4)]
CLIENTS = ["c0", "c1"]


class NamespaceMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.namespace = Namespace()
        #: Shadow model: path -> (owner, complete?).
        self.model: dict[str, tuple[str, bool]] = {}

    @rule(path=st.sampled_from(PATHS), client=st.sampled_from(CLIENTS))
    def create(self, path, client):
        if path in self.model:
            try:
                self.namespace.create(path, client)
                raise AssertionError("duplicate create must raise")
            except FileAlreadyExists:
                return
        else:
            self.namespace.create(path, client)
            self.model[path] = (client, False)

    @rule(path=st.sampled_from(PATHS), client=st.sampled_from(CLIENTS))
    def complete(self, path, client):
        owner_ok = (
            path in self.model
            and self.model[path][0] == client
            and not self.model[path][1]
        )
        try:
            self.namespace.complete(path, client)
            assert owner_ok, "complete must require an open lease"
            self.model[path] = (client, True)
        except LeaseConflict:
            assert not owner_ok or path not in self.model
        except Exception:
            assert path not in self.model

    @rule(path=st.sampled_from(PATHS), client=st.sampled_from(CLIENTS))
    def check_lease(self, path, client):
        holds = (
            path in self.model
            and self.model[path][0] == client
            and not self.model[path][1]
        )
        try:
            self.namespace.check_lease(path, client)
            assert holds
        except LeaseConflict:
            assert not holds
        except Exception:
            assert path not in self.model

    @invariant()
    def states_match_model(self):
        for path, (owner, complete) in self.model.items():
            inode = self.namespace.get(path)
            assert inode.client == owner
            expected = FileState.COMPLETE if complete else FileState.UNDER_CONSTRUCTION
            assert inode.state is expected

    @invariant()
    def listing_matches_model(self):
        assert set(self.namespace.files()) == set(self.model)


TestNamespaceStateful = NamespaceMachine.TestCase
TestNamespaceStateful.settings = settings(
    max_examples=80, stateful_step_count=30, deadline=None
)
