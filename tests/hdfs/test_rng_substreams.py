"""Regression tests: shuffle determinism is per-call, not per-consumer.

The reader's replica tie-break and the map scheduler's holder tie-break
used to draw from one shared ``random.Random`` per consumer, so the
outcome for a block depended on how many blocks had been processed
before it — interleaving a second reader (or an earlier job) silently
changed the choices.  Both now key a substream per (consumer, block),
making every choice order-independent.  These tests pin that property.
"""

from __future__ import annotations

from repro.cluster import SMALL, build_homogeneous
from repro.config import SimulationConfig
from repro.hdfs import HdfsDeployment, HdfsReader
from repro.mapred import MapRunner
from repro.rng import substream, substream_seed
from repro.sim import Environment
from repro.units import KB, MB


def build(seed=0):
    env = Environment()
    cfg = SimulationConfig(seed=seed).with_hdfs(
        block_size=MB, packet_size=64 * KB
    )
    cluster = build_homogeneous(env, SMALL, n_datanodes=9, config=cfg)
    deployment = HdfsDeployment(cluster)
    client = deployment.client()
    env.run(until=env.process(client.put("/a", 3 * MB)))
    env.run(until=env.process(client.put("/b", 3 * MB)))
    return env, deployment


class TestSubstreamPrimitive:
    def test_deterministic_and_key_sensitive(self):
        assert substream_seed(1, "x", 2) == substream_seed(1, "x", 2)
        assert substream_seed(1, "x", 2) != substream_seed(1, "x", 3)
        assert substream_seed(1, "x", 2) != substream_seed(1, "y", 2)
        assert substream_seed(1, "x", 2) != substream_seed(2, "x", 2)
        assert substream(5, "k").random() == substream(5, "k").random()

    def test_draws_do_not_couple_streams(self):
        a = substream(7, "a")
        first = substream(7, "b").random()
        for _ in range(100):
            a.random()
        assert substream(7, "b").random() == first


class TestReaderCandidateOrder:
    def test_independent_of_evaluation_order(self):
        env, deployment = build()
        reader = HdfsReader(deployment)
        blocks = deployment.namenode.namespace.get("/a").blocks
        forward = [reader._candidates(b) for b in blocks]
        backward = [reader._candidates(b) for b in reversed(blocks)]
        assert forward == list(reversed(backward))

    def test_independent_of_sibling_readers(self):
        env, deployment = build()
        blocks = deployment.namenode.namespace.get("/b").blocks

        solo = HdfsReader(deployment, name="r1")
        expected = [solo._candidates(b) for b in blocks]

        # Interleave another reader's draws between every evaluation.
        noisy = HdfsReader(deployment, name="r1")
        sibling = HdfsReader(deployment, name="r2")
        got = []
        for b in blocks:
            for other in deployment.namenode.namespace.get("/a").blocks:
                sibling._candidates(other)
            got.append(noisy._candidates(b))
        assert got == expected

    def test_interleaved_reads_pick_same_sources(self):
        """End to end: reading /a concurrently must not change /b's
        sources versus reading /b alone."""
        env1, dep1 = build(seed=42)
        reader = HdfsReader(dep1, name="r")
        alone = env1.run(until=env1.process(reader.get("/b")))

        env2, dep2 = build(seed=42)
        reader_b = HdfsReader(dep2, name="r")
        reader_a = HdfsReader(dep2, name="other")
        env2.process(reader_a.get("/a"))
        together = env2.run(until=env2.process(reader_b.get("/b")))

        assert together.sources == alone.sources


class TestMapAssignmentOrder:
    @staticmethod
    def _assignments(runner, deployment, path):
        inode = deployment.namenode.namespace.get(path)
        runner._slots = dict.fromkeys(sorted(deployment.datanodes))
        pairs = runner._assign(inode.blocks)
        return [(b.block_id, node) for b, node in pairs]

    def test_prior_job_does_not_shift_assignments(self):
        env1, dep1 = build(seed=7)
        fresh = MapRunner(dep1)
        only_b = self._assignments(fresh, dep1, "/b")

        env2, dep2 = build(seed=7)
        reused = MapRunner(dep2)
        env2.run(until=env2.process(reused.run("/a")))
        after_a = self._assignments(reused, dep2, "/b")

        assert after_a == only_b
