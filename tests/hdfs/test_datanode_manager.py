"""Unit tests for datanode liveness tracking."""

import pytest

from repro.config import HdfsConfig
from repro.hdfs import DatanodeManager
from repro.sim import Environment


@pytest.fixture()
def env():
    return Environment()


@pytest.fixture()
def manager(env):
    return DatanodeManager(env, HdfsConfig(heartbeat_interval=3.0, dead_node_heartbeats=2))


class TestRegistration:
    def test_register(self, manager):
        d = manager.register("dn0", "rack0")
        assert d.alive
        assert manager.live_datanodes() == ("dn0",)
        assert manager.rack_of("dn0") == "rack0"

    def test_duplicate_registration_rejected(self, manager):
        manager.register("dn0", "rack0")
        with pytest.raises(ValueError):
            manager.register("dn0", "rack1")

    def test_unknown_datanode(self, manager):
        with pytest.raises(KeyError):
            manager.descriptor("ghost")


class TestLiveness:
    def test_monitor_expires_silent_nodes(self, env, manager):
        manager.register("dn0", "rack0")
        manager.register("dn1", "rack0")
        env.process(manager.monitor())

        def beats(env, manager):
            # dn0 keeps beating; dn1 goes silent.
            for _ in range(10):
                yield env.timeout(3.0)
                manager.heartbeat("dn0")

        env.process(beats(env, manager))
        env.run(until=30)
        assert manager.is_alive("dn0")
        assert not manager.is_alive("dn1")
        assert manager.live_datanodes() == ("dn0",)

    def test_heartbeat_revives(self, env, manager):
        manager.register("dn0", "rack0")
        manager.mark_dead("dn0")
        assert not manager.is_alive("dn0")
        manager.heartbeat("dn0")
        assert manager.is_alive("dn0")

    def test_dead_after_uses_config(self, manager):
        assert manager.dead_after == 6.0

    def test_decommissioned_not_schedulable(self, manager):
        manager.register("dn0", "rack0")
        manager.decommission("dn0")
        assert manager.live_datanodes() == ()
        assert not manager.is_alive("dn0")

    def test_all_names_includes_dead(self, manager):
        manager.register("dn0", "rack0")
        manager.mark_dead("dn0")
        assert manager.all_names() == ("dn0",)
        assert len(manager) == 1
