"""Integration tests for the HDFS read path (write-then-read round trips)."""

import pytest

from repro.cluster import SMALL, build_homogeneous
from repro.config import SimulationConfig
from repro.hdfs import BlockUnavailable, HdfsClient, HdfsDeployment, HdfsReader
from repro.hdfs.protocol import FileNotFound
from repro.sim import Environment
from repro.smarth import SmarthDeployment
from repro.units import KB, MB, mbps


def build(smarth=False, n_datanodes=9):
    env = Environment()
    cfg = SimulationConfig().with_hdfs(block_size=2 * MB, packet_size=64 * KB)
    cluster = build_homogeneous(env, SMALL, n_datanodes=n_datanodes, config=cfg)
    deployment = SmarthDeployment(cluster) if smarth else HdfsDeployment(cluster)
    return env, deployment


def write_then_read(env, deployment, size, path="/f"):
    client = deployment.client()
    env.run(until=env.process(client.put(path, size)))
    reader = HdfsReader(deployment)
    return env.run(until=env.process(reader.get(path)))


class TestRoundTrip:
    def test_read_whole_file(self):
        env, deployment = build()
        result = write_then_read(env, deployment, 5 * MB)
        assert result.size == 5 * MB
        assert len(result.sources) == 3  # 2+2+1 MB blocks
        assert result.duration > 0

    def test_read_smarth_written_file(self):
        env, deployment = build(smarth=True)
        result = write_then_read(env, deployment, 6 * MB)
        assert result.size == 6 * MB
        assert len(result.sources) == 3

    def test_sources_hold_replicas(self):
        env, deployment = build()
        result = write_then_read(env, deployment, 4 * MB)
        nn = deployment.namenode
        for block_id, source in result.sources:
            assert source in nn.blocks.locations(block_id)

    def test_prefers_near_replicas(self):
        """Reads come from the client's rack when a replica lives there."""
        env, deployment = build()
        result = write_then_read(env, deployment, 8 * MB)
        topo = deployment.network.topology
        nn = deployment.namenode
        for block_id, source in result.sources:
            local_replicas = [
                dn
                for dn in nn.blocks.locations(block_id)
                if topo.rack_of(dn) == "rack0"
            ]
            if local_replicas:
                assert topo.rack_of(source) == "rack0"

    def test_read_throughput_bounded_by_nic(self):
        env, deployment = build()
        result = write_then_read(env, deployment, 10 * MB)
        assert result.throughput < mbps(216)
        assert result.throughput > mbps(216) * 0.3

    def test_missing_file_raises(self):
        env, deployment = build()
        reader = HdfsReader(deployment)
        with pytest.raises(FileNotFound):
            env.run(until=env.process(reader.get("/nope")))


class TestReadFaultTolerance:
    def test_falls_back_to_other_replica(self):
        env, deployment = build()
        client = deployment.client()
        env.run(until=env.process(client.put("/f", 4 * MB)))
        # Kill the replica nearest to the client for every block.
        reader = HdfsReader(deployment)
        first_choices = {
            block.block_id: reader._candidates(block)[0]
            for block in deployment.namenode.namespace.get("/f").blocks
        }
        for victim in set(first_choices.values()):
            deployment.datanode(victim).kill()
        result = env.run(until=env.process(reader.get("/f")))
        for block_id, source in result.sources:
            assert source != first_choices[block_id]

    def test_all_replicas_dead_raises(self):
        env, deployment = build(n_datanodes=3)
        client = deployment.client()
        env.run(until=env.process(client.put("/f", 2 * MB)))
        for name in list(deployment.datanodes):
            deployment.datanode(name).kill()
        reader = HdfsReader(deployment)
        with pytest.raises(BlockUnavailable):
            env.run(until=env.process(reader.get("/f")))

    def test_read_after_write_with_recovery(self):
        """A file written through a failure is still fully readable."""
        env, deployment = build()

        def killer(env):
            yield env.timeout(0.05)
            busy = [
                d
                for d in deployment.datanodes.values()
                if d.active_receivers > 0 and d.node.alive
            ]
            if busy:
                busy[0].kill()

        env.process(killer(env))
        result = write_then_read(env, deployment, 8 * MB)
        assert result.size == 8 * MB
        assert len(result.sources) == 4
