"""Read-path edge cases: empty files, odd block boundaries, dead replicas."""

from __future__ import annotations

import pytest

from repro.cluster import SMALL, build_homogeneous
from repro.config import SimulationConfig
from repro.hdfs import HdfsDeployment, HdfsReader
from repro.hdfs.client.input_stream import BlockUnavailable
from repro.hdfs.protocol import FileNotFound
from repro.sim import Environment
from repro.units import KB, MB

BLOCK = 2 * MB


def build(n_datanodes: int = 6):
    env = Environment()
    config = SimulationConfig().with_hdfs(
        block_size=BLOCK, packet_size=64 * KB
    )
    cluster = build_homogeneous(
        env, SMALL, n_datanodes=n_datanodes, config=config
    )
    return env, HdfsDeployment(cluster)


def put(env, deployment, path: str, size: int):
    client = deployment.client()
    return env.run(until=env.process(client.put(path, size)))


def read(env, deployment, path: str):
    reader = HdfsReader(deployment)
    return env.run(until=env.process(reader.get(path)))


class TestEmptyAndMissing:
    def test_zero_length_file_reads_as_file_not_found(self):
        """A created-but-never-written file has no blocks; the reader
        reports that the way Hadoop reports an unreadable path."""
        env, deployment = build()
        deployment.namenode.namespace.create("/empty", client="c")
        with pytest.raises(FileNotFound, match="no blocks"):
            read(env, deployment, "/empty")

    def test_missing_path_raises_file_not_found(self):
        env, deployment = build()
        with pytest.raises(FileNotFound):
            read(env, deployment, "/never-written")

    def test_zero_byte_write_is_rejected_up_front(self):
        env, deployment = build()
        with pytest.raises(ValueError, match="must be positive"):
            put(env, deployment, "/zero", 0)


class TestBlockBoundaries:
    @pytest.mark.parametrize(
        "size",
        [
            BLOCK - 1,  # one byte short of a boundary
            BLOCK,  # exactly one block
            BLOCK + 1,  # one byte into the second block
            3 * BLOCK + 512 * KB,  # ragged tail block
        ],
    )
    def test_sizes_straddling_boundaries_read_back_fully(self, size: int):
        env, deployment = build()
        write = put(env, deployment, "/f", size)
        result = read(env, deployment, "/f")
        assert result.size == size
        assert len(result.sources) == write.n_blocks
        # Block ids arrive in file order, each served by a real holder.
        namenode = deployment.namenode
        for block, (block_id, source) in zip(
            namenode.namespace.get("/f").blocks, result.sources
        ):
            assert block.block_id == block_id
            assert source in namenode.blocks.locations(block_id)

    def test_partial_tail_block_transfers_only_its_bytes(self):
        """The reader streams block.size, not block_size, for the tail."""
        size = BLOCK + 256 * KB
        env, deployment = build()
        put(env, deployment, "/f", size)
        blocks = deployment.namenode.namespace.get("/f").blocks
        assert [b.size for b in blocks] == [BLOCK, 256 * KB]
        result = read(env, deployment, "/f")
        assert result.size == size
        assert result.duration > 0


class TestAllReplicasDead:
    def test_read_fails_with_block_unavailable(self):
        env, deployment = build()
        put(env, deployment, "/f", 2 * BLOCK)
        namenode = deployment.namenode
        first_block = namenode.namespace.get("/f").blocks[0]
        for holder in namenode.blocks.locations(first_block.block_id):
            deployment.datanode(holder).kill()
        with pytest.raises(BlockUnavailable, match=str(first_block.block_id)):
            read(env, deployment, "/f")

    def test_error_names_the_block_and_chains_the_cause(self):
        env, deployment = build()
        put(env, deployment, "/f", BLOCK)
        namenode = deployment.namenode
        block = namenode.namespace.get("/f").blocks[0]
        reader = HdfsReader(deployment)

        # Kill every holder mid-stream: the reader tries each candidate,
        # sees it die, and surfaces the *last* failure as the cause.
        for holder in namenode.blocks.locations(block.block_id):
            deployment.datanode(holder).kill()
        try:
            env.run(until=env.process(reader.get("/f")))
        except BlockUnavailable as err:
            assert "no live replica" in str(err)
        else:  # pragma: no cover - the assertion is the raise
            pytest.fail("expected BlockUnavailable")

    def test_one_survivor_still_serves_every_block(self):
        env, deployment = build()
        put(env, deployment, "/f", 2 * BLOCK)
        namenode = deployment.namenode
        # For each block kill all holders but one.
        survivors = {}
        for block in namenode.namespace.get("/f").blocks:
            holders = namenode.blocks.locations(block.block_id)
            survivors[block.block_id] = holders[0]
        for name in sorted(deployment.datanodes):
            if name not in survivors.values():
                deployment.datanode(name).kill()
        result = read(env, deployment, "/f")
        assert result.size == 2 * BLOCK
        for block_id, source in result.sources:
            assert deployment.datanode(source).node.alive
