"""Integration tests: the baseline HDFS write path end-to-end."""

import pytest

from repro.cluster import MEDIUM, SMALL, build_homogeneous
from repro.config import SimulationConfig
from repro.hdfs import HdfsClient, HdfsDeployment
from repro.sim import Environment
from repro.units import KB, MB, mbps


def small_config(**hdfs_overrides):
    defaults = dict(block_size=2 * MB, packet_size=64 * KB)
    defaults.update(hdfs_overrides)
    return SimulationConfig().with_hdfs(**defaults)


def upload(cluster, size, path="/data/file.bin"):
    deployment = HdfsDeployment(cluster)
    client = HdfsClient(deployment)
    result = cluster.env.run(until=cluster.env.process(client.put(path, size)))
    return deployment, result


class TestEndToEnd:
    def test_small_file_completes(self):
        env = Environment()
        cluster = build_homogeneous(env, SMALL, n_datanodes=9, config=small_config())
        deployment, result = upload(cluster, 5 * MB)
        assert result.n_blocks == 3  # 2 + 2 + 1 MB
        assert result.duration > 0
        assert deployment.namenode.file_fully_replicated("/data/file.bin")

    def test_single_packet_file(self):
        env = Environment()
        cluster = build_homogeneous(env, SMALL, n_datanodes=9, config=small_config())
        deployment, result = upload(cluster, 10 * KB)
        assert result.n_blocks == 1
        assert deployment.namenode.file_fully_replicated("/data/file.bin")

    def test_exact_block_multiple(self):
        env = Environment()
        cluster = build_homogeneous(env, SMALL, n_datanodes=9, config=small_config())
        deployment, result = upload(cluster, 4 * MB)
        assert result.n_blocks == 2

    def test_every_block_has_replication_pipelines(self):
        env = Environment()
        cluster = build_homogeneous(env, SMALL, n_datanodes=9, config=small_config())
        _, result = upload(cluster, 6 * MB)
        assert len(result.pipelines) == result.n_blocks
        for pipeline in result.pipelines:
            assert len(pipeline) == 3
            assert len(set(pipeline)) == 3

    def test_replica_sizes_match_block_sizes(self):
        env = Environment()
        cluster = build_homogeneous(env, SMALL, n_datanodes=9, config=small_config())
        deployment, _ = upload(cluster, 5 * MB)
        nn = deployment.namenode
        for block in nn.namespace.get("/data/file.bin").blocks:
            info = nn.blocks.info(block.block_id)
            for replica in info.replicas.values():
                assert replica.finalized
                assert replica.bytes_confirmed == block.size

    def test_stop_and_wait_uses_one_pipeline(self):
        env = Environment()
        cluster = build_homogeneous(env, SMALL, n_datanodes=9, config=small_config())
        _, result = upload(cluster, 5 * MB)
        assert result.max_concurrent_pipelines == 1
        assert result.system == "hdfs"


class TestTimingPhysics:
    """Upload times must track the §III-D cost model's structure."""

    def test_throughput_below_nic_rate(self):
        env = Environment()
        cluster = build_homogeneous(env, SMALL, n_datanodes=9, config=small_config())
        _, result = upload(cluster, 10 * MB)
        assert result.throughput < mbps(216)

    def test_throughput_reasonably_close_to_nic(self):
        env = Environment()
        cluster = build_homogeneous(env, SMALL, n_datanodes=9, config=small_config())
        _, result = upload(cluster, 10 * MB)
        # Unthrottled homogeneous cluster: pipeline bandwidth == NIC rate;
        # stop-and-wait tails cost something but not half the bandwidth.
        assert result.throughput > mbps(216) * 0.6

    def test_time_proportional_to_size(self):
        """Figure 5's linearity: time grows ~linearly with file size."""
        durations = {}
        for size_mb in (4, 8, 16):
            env = Environment()
            cluster = build_homogeneous(
                env, SMALL, n_datanodes=9, config=small_config()
            )
            _, result = upload(cluster, size_mb * MB)
            durations[size_mb] = result.duration
        ratio_8_4 = durations[8] / durations[4]
        ratio_16_8 = durations[16] / durations[8]
        assert ratio_8_4 == pytest.approx(2.0, rel=0.15)
        assert ratio_16_8 == pytest.approx(2.0, rel=0.15)

    def test_cross_rack_throttle_gates_pipeline(self):
        """With a throttled rack boundary the pipeline runs at throttle rate
        (every pipeline crosses racks at least once by placement policy)."""
        env = Environment()
        cluster = build_homogeneous(env, SMALL, n_datanodes=9, config=small_config())
        cluster.throttle_rack_boundary(50)
        _, result = upload(cluster, 10 * MB)
        assert result.throughput < mbps(50) * 1.1
        assert result.throughput > mbps(50) * 0.5

    def test_medium_faster_than_small(self):
        times = {}
        for itype in (SMALL, MEDIUM):
            env = Environment()
            cluster = build_homogeneous(env, itype, n_datanodes=9, config=small_config())
            _, result = upload(cluster, 10 * MB)
            times[itype.name] = result.duration
        assert times["medium"] < times["small"]

    def test_rpc_latency_shows_up_per_block(self):
        """Raising T_n by dt adds ~n_blocks*dt to the upload."""
        results = {}
        for latency in (1e-3, 100e-3):
            env = Environment()
            cfg = small_config(namenode_rpc_latency=latency)
            cluster = build_homogeneous(env, SMALL, n_datanodes=9, config=cfg)
            _, result = upload(cluster, 6 * MB)  # 3 blocks
            results[latency] = result.duration
        extra = results[100e-3] - results[1e-3]
        # create + 3 addBlock + complete ≈ 5 RPCs
        assert extra == pytest.approx(5 * 99e-3, rel=0.3)


class TestMultipleFiles:
    def test_sequential_uploads_same_client(self):
        env = Environment()
        cluster = build_homogeneous(env, SMALL, n_datanodes=9, config=small_config())
        deployment = HdfsDeployment(cluster)
        client = HdfsClient(deployment)
        r1 = env.run(until=env.process(client.put("/a", 2 * MB)))
        r2 = env.run(until=env.process(client.put("/b", 2 * MB)))
        assert deployment.namenode.file_fully_replicated("/a")
        assert deployment.namenode.file_fully_replicated("/b")
        assert r2.start >= r1.end

    def test_replication_one(self):
        env = Environment()
        cfg = SimulationConfig().with_hdfs(
            block_size=2 * MB, packet_size=64 * KB, replication=1
        )
        cluster = build_homogeneous(env, SMALL, n_datanodes=3, config=cfg)
        deployment, result = upload(cluster, 4 * MB)
        assert all(len(p) == 1 for p in result.pipelines)
        assert deployment.namenode.file_fully_replicated("/data/file.bin")

    def test_replication_two(self):
        env = Environment()
        cfg = SimulationConfig().with_hdfs(
            block_size=2 * MB, packet_size=64 * KB, replication=2
        )
        cluster = build_homogeneous(env, SMALL, n_datanodes=4, config=cfg)
        deployment, result = upload(cluster, 4 * MB)
        assert all(len(p) == 2 for p in result.pipelines)
        assert deployment.namenode.file_fully_replicated("/data/file.bin")
