"""Property tests: the SpeedRegistry ranking cache vs a reference model.

The registry memoizes one ranking per client and invalidates it on
heartbeat updates; ``top_n`` filters the cached ranking by membership.
These tests drive random interleavings of heartbeat updates, no-op
updates, and membership-restricted queries (datanode death, revival, and
cluster membership changes all reach the registry as ``among`` filters)
and check every answer against an uncached reference computation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hdfs.namenode import SpeedRegistry

CLIENTS = ["c0", "c1"]
DATANODES = [f"dn{i}" for i in range(8)]


def reference_top_n(records: dict, n: int, among) -> list[str]:
    """Uncached model: sort by (-speed, name), filter, truncate."""
    pool = (
        records
        if among is None
        else {d: s for d, s in records.items() if d in among}
    )
    return sorted(pool, key=lambda d: (-pool[d], d))[:n]


speeds = st.integers(min_value=1, max_value=10**9).map(float)

update_op = st.tuples(
    st.just("update"),
    st.sampled_from(CLIENTS),
    st.dictionaries(st.sampled_from(DATANODES), speeds, max_size=4),
)
query_op = st.tuples(
    st.just("query"),
    st.sampled_from(CLIENTS),
    st.integers(min_value=0, max_value=10),
    st.one_of(
        st.none(),
        st.frozensets(st.sampled_from(DATANODES)),
    ),
)


@given(ops=st.lists(st.one_of(update_op, query_op), max_size=60))
@settings(max_examples=300, deadline=None)
def test_top_n_matches_reference_over_random_update_sequences(ops):
    """Every query answers as if the ranking were rebuilt from scratch."""
    registry = SpeedRegistry()
    model: dict[str, dict[str, float]] = {}
    for op in ops:
        if op[0] == "update":
            _, client, records = op
            registry.update(client, dict(records))
            if records:
                model.setdefault(client, {}).update(records)
        else:
            _, client, n, among = op
            expected = reference_top_n(model.get(client, {}), n, among)
            assert registry.top_n(client, n, among=among) == expected
    for client in CLIENTS:
        assert registry.ranking(client) == reference_top_n(
            model.get(client, {}), len(DATANODES), None
        )


def test_death_and_revival_only_filter_membership():
    """A dead datanode drops out of `among` queries and returns intact.

    Liveness never mutates the registry — the cached ranking survives a
    death/revival cycle unchanged, the membership filter does the work.
    """
    registry = SpeedRegistry()
    registry.update("c", {"dn0": 300.0, "dn1": 200.0, "dn2": 100.0})
    live = frozenset(["dn0", "dn1", "dn2"])
    assert registry.top_n("c", 2, among=live) == ["dn0", "dn1"]
    # dn0 dies: same cached ranking, filtered.
    assert registry.top_n("c", 2, among=live - {"dn0"}) == ["dn1", "dn2"]
    # dn0 revives: the original answer comes back.
    assert registry.top_n("c", 2, among=live) == ["dn0", "dn1"]


def test_noop_heartbeat_keeps_cached_ranking_object():
    """A heartbeat repeating known values must not invalidate the cache."""
    registry = SpeedRegistry()
    registry.update("c", {"dn0": 300.0, "dn1": 200.0})
    first = registry.ranking("c")
    registry.update("c", {"dn0": 300.0, "dn1": 200.0})
    assert registry.ranking("c") is first  # cache untouched
    registry.update("c", {"dn1": 999.0})
    assert registry.ranking("c") == ["dn1", "dn0"]  # invalidated + rebuilt


def test_membership_change_new_datanode_joins_ranking():
    """A record for a never-seen datanode invalidates and re-ranks."""
    registry = SpeedRegistry()
    registry.update("c", {"dn0": 300.0})
    assert registry.ranking("c") == ["dn0"]
    registry.update("c", {"dn5": 500.0})
    assert registry.ranking("c") == ["dn5", "dn0"]
    assert registry.top_n("c", 1, among=frozenset(["dn0"])) == ["dn0"]
