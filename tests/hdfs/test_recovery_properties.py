"""Property-based tests for Algorithm 3 (`recover_pipeline`).

Whatever subset of the cluster dies — including the recovery primary
mid-recovery and fully exhausted clusters — recovery must terminate with
exactly one of two outcomes: a valid ``(block, targets)`` pair (failed
node gone, generation bumped, no blacklisted targets, replica state
synced on the namenode) or :class:`RecoveryFailed`.  No hangs, no other
exceptions, no half-recovered state.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import SMALL, build_homogeneous
from repro.config import SimulationConfig
from repro.hdfs import HdfsDeployment
from repro.hdfs.client.recovery import RecoveryFailed, recover_pipeline
from repro.sim import Environment
from repro.units import KB, MB


def _deployment(n_datanodes: int):
    env = Environment()
    cfg = SimulationConfig().with_hdfs(block_size=2 * MB, packet_size=64 * KB)
    cluster = build_homogeneous(env, SMALL, n_datanodes=n_datanodes, config=cfg)
    # No replication monitor: the property is about the client-side
    # algorithm, not background healing.
    return env, HdfsDeployment(cluster, enable_replication_monitor=False)


def _allocate_block(env, deployment):
    namenode = deployment.namenode
    box: dict = {}

    def setup():
        yield from namenode.create_file("client", "/f")
        box["result"] = yield from namenode.add_block(
            "client", "/f", 2 * MB, excluded=set()
        )

    env.run(until=env.process(setup()))
    return box["result"].block, box["result"].targets


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_recovery_terminates_validly_or_raises(data) -> None:
    n = data.draw(st.integers(min_value=4, max_value=9), label="n_datanodes")
    env, deployment = _deployment(n)
    block, targets = _allocate_block(env, deployment)

    failed = data.draw(st.sampled_from(list(targets)), label="failed")
    others = sorted(set(deployment.datanodes) - {failed})
    extra_dead = data.draw(
        st.lists(st.sampled_from(others), unique=True, max_size=len(others)),
        label="extra_dead",
    )
    acked_bytes = data.draw(
        st.sampled_from((0, 64 * KB, MB)), label="acked_bytes"
    )
    kill_primary_mid = data.draw(st.booleans(), label="kill_primary_mid")

    deployment.datanode(failed).kill()
    for name in extra_dead:
        deployment.datanode(name).kill()
    blacklist = {failed} | set(extra_dead)

    survivors = [
        t
        for t in targets
        if t != failed and deployment.datanode(t).node.alive
    ]
    if kill_primary_mid and survivors and acked_bytes > 0:
        primary = survivors[0]

        def killer():
            # Strike while the primary is mid replica-sync transfer.
            yield env.timeout(0.0005)
            if deployment.datanode(primary).node.alive:
                deployment.datanode(primary).kill()

        env.process(killer(), name="killer")

    outcome: dict = {}

    def recover():
        try:
            outcome["result"] = yield from recover_pipeline(
                deployment,
                "client",
                block,
                targets,
                failed,
                acked_bytes,
                blacklist,
            )
        except RecoveryFailed as exc:
            outcome["error"] = exc

    proc = env.process(recover(), name="recover")
    env.run(until=60.0)

    # Outcome 0 (forbidden): still running — recovery must never hang.
    assert proc.triggered, "recover_pipeline did not terminate"

    if "error" in outcome:
        # Outcome B: the cluster was exhausted — a clean RecoveryFailed.
        assert isinstance(outcome["error"], RecoveryFailed)
        return

    # Outcome A: a valid rebuilt pipeline.
    new_block, new_targets = outcome["result"]
    assert new_block.block_id == block.block_id
    assert new_block.generation > block.generation  # stale replicas fenced
    assert new_targets, "recovered pipeline has no targets"
    assert len(set(new_targets)) == len(new_targets)
    assert len(new_targets) <= len(targets)
    assert failed not in new_targets
    assert not blacklist.intersection(new_targets)
    for name in new_targets:
        assert name in deployment.datanodes
    # The failed node's replica was dropped from the namenode's map.
    info = deployment.namenode.blocks.info(block.block_id)
    assert failed not in info.replicas
