"""Integration tests: the SMARTH multi-pipeline write path (§III-A)."""

import pytest

from repro.cluster import SMALL, build_homogeneous
from repro.config import SimulationConfig
from repro.hdfs import HdfsDeployment
from repro.smarth import SmarthDeployment
from repro.sim import Environment
from repro.units import KB, MB, mbps


def config(**hdfs):
    defaults = dict(block_size=2 * MB, packet_size=64 * KB)
    defaults.update(hdfs)
    return SimulationConfig().with_hdfs(**defaults)


def smarth_upload(cluster, size, path="/f"):
    deployment = SmarthDeployment(cluster)
    client = deployment.client()
    result = cluster.env.run(until=cluster.env.process(client.put(path, size)))
    return deployment, result


class TestCorrectness:
    def test_file_fully_replicated(self):
        env = Environment()
        cluster = build_homogeneous(env, SMALL, n_datanodes=9, config=config())
        deployment, result = smarth_upload(cluster, 10 * MB)
        assert result.n_blocks == 5
        assert deployment.namenode.file_fully_replicated("/f")

    def test_replica_sizes_exact(self):
        env = Environment()
        cluster = build_homogeneous(env, SMALL, n_datanodes=9, config=config())
        deployment, _ = smarth_upload(cluster, 7 * MB)
        nn = deployment.namenode
        for block in nn.namespace.get("/f").blocks:
            info = nn.blocks.info(block.block_id)
            finalized = [r for r in info.replicas.values() if r.finalized]
            assert len(finalized) == 3
            for replica in finalized:
                assert replica.bytes_confirmed == block.size

    def test_single_block_file(self):
        env = Environment()
        cluster = build_homogeneous(env, SMALL, n_datanodes=9, config=config())
        deployment, result = smarth_upload(cluster, 100 * KB)
        assert result.n_blocks == 1
        assert deployment.namenode.file_fully_replicated("/f")

    def test_pipelines_use_disjoint_datanodes_while_live(self):
        """§IV-C: a datanode serves at most one live pipeline per client.

        Verified post-hoc: consecutive concurrently-live pipelines never
        share datanodes.  We approximate by checking that each pipeline's
        targets are distinct (exactly 3) and that the upload used more
        than 3 distinct datanodes overall (i.e. rotation happened).
        """
        env = Environment()
        cluster = build_homogeneous(env, SMALL, n_datanodes=9, config=config())
        cluster.throttle_rack_boundary(50)
        _, result = smarth_upload(cluster, 20 * MB)
        used = set()
        for pipeline in result.pipelines:
            assert len(set(pipeline)) == len(pipeline)
            used.update(pipeline)
        assert len(used) > 3

    def test_max_pipelines_never_exceeds_cap(self):
        env = Environment()
        cluster = build_homogeneous(env, SMALL, n_datanodes=9, config=config())
        cluster.throttle_rack_boundary(25)  # slow drain → high concurrency
        _, result = smarth_upload(cluster, 20 * MB)
        assert result.max_concurrent_pipelines <= 3  # 9 // 3

    def test_max_pipelines_override(self):
        env = Environment()
        cfg = config().with_smarth(max_pipelines=1)
        cluster = build_homogeneous(env, SMALL, n_datanodes=9, config=cfg)
        _, result = smarth_upload(cluster, 10 * MB)
        assert result.max_concurrent_pipelines == 1

    def test_speed_records_populated(self):
        env = Environment()
        # Shrink the heartbeat so reports fire within this small upload.
        cfg = config(heartbeat_interval=0.05)
        cluster = build_homogeneous(env, SMALL, n_datanodes=9, config=cfg)
        deployment = SmarthDeployment(cluster)
        client = deployment.client()
        env.run(until=env.process(client.put("/f", 20 * MB)))
        assert len(client.records) >= 1
        assert deployment.namenode.speeds.has_records(client.name)

    def test_sequential_files_reuse_learned_speeds(self):
        env = Environment()
        cluster = build_homogeneous(env, SMALL, n_datanodes=9, config=config())
        deployment = SmarthDeployment(cluster)
        client = deployment.client()
        env.run(until=env.process(client.put("/a", 8 * MB)))
        r2 = env.run(until=env.process(client.put("/b", 8 * MB)))
        assert deployment.namenode.file_fully_replicated("/a")
        assert deployment.namenode.file_fully_replicated("/b")
        assert r2.duration > 0


class TestPerformance:
    """The §III-D cost-model claims, verified in simulation."""

    def _run_pair(self, throttle=None, size=64 * MB, n_datanodes=9):
        durations = {}
        for smarth in (False, True):
            env = Environment()
            cluster = build_homogeneous(
                env, SMALL, n_datanodes=n_datanodes, config=config()
            )
            if throttle:
                cluster.throttle_rack_boundary(throttle)
            deployment = (
                SmarthDeployment(cluster) if smarth else HdfsDeployment(cluster)
            )
            client = deployment.client()
            result = env.run(until=env.process(client.put("/f", size)))
            assert deployment.namenode.file_fully_replicated("/f")
            durations[smarth] = result.duration
        return durations

    def test_smarth_beats_hdfs_under_throttling(self):
        durations = self._run_pair(throttle=50)
        assert durations[True] < durations[False] * 0.75

    def test_smarth_close_to_hdfs_unthrottled(self):
        """Figure 5: 'no big gain if the cluster's network is homogeneous'."""
        durations = self._run_pair(throttle=None)
        assert durations[True] <= durations[False] * 1.05  # never worse
        assert durations[True] > durations[False] * 0.5  # and not magic

    def test_tighter_throttle_bigger_gain(self):
        """Figure 6-9: the more throttled the boundary, the bigger the win."""
        gain_at = {}
        for throttle in (150, 50):
            durations = self._run_pair(throttle=throttle, size=96 * MB)
            gain_at[throttle] = durations[False] / durations[True]
        assert gain_at[50] > gain_at[150]

    def test_smarth_concurrency_appears_under_throttle(self):
        env = Environment()
        cluster = build_homogeneous(env, SMALL, n_datanodes=9, config=config())
        cluster.throttle_rack_boundary(50)
        _, result = smarth_upload(cluster, 48 * MB)
        assert result.max_concurrent_pipelines >= 2
