"""Unit tests for the client-side SmarthPipeline state object."""

import pytest

from repro.hdfs.client.output_stream import BlockPlan
from repro.hdfs.client.responder import PacketResponder
from repro.hdfs.protocol import Ack, Block, Packet
from repro.sim import Environment, Resource, Store
from repro.smarth.pipeline import PipelineState, SmarthPipeline


@pytest.fixture()
def env():
    return Environment()


def make_pipeline(env, n_packets=4):
    plan = BlockPlan(index=0, size=n_packets * 100, packet_sizes=(100,) * n_packets)
    block = Block(1, "/f", 0, plan.size)
    slots = Resource(env, capacity=3)
    slot = slots.request()
    return SmarthPipeline(env, plan, block, ("dn0", "dn1", "dn2"), slot)


class _FakeHandle:
    """Stand-in for a PipelineHandle: just the ack stream."""

    def __init__(self, env):
        self.ack_in = Store(env)


class TestStateTracking:
    def test_initial_state(self, env):
        p = make_pipeline(env)
        assert p.state is PipelineState.STREAMING
        assert p.pending_seqs() == [0, 1, 2, 3]
        assert p.acked_bytes == 0
        assert not p.fnfa_received and not p.fully_streamed

    def test_note_sent_excludes_from_pending(self, env):
        p = make_pipeline(env)
        handle = _FakeHandle(env)
        p.bind(handle, PacketResponder(env, p.block, handle.ack_in))
        p.note_sent(0)
        p.note_sent(1)
        assert p.pending_seqs() == [2, 3]

    def test_fold_acks_uses_attempt_order(self, env):
        p = make_pipeline(env)
        handle = _FakeHandle(env)
        responder = PacketResponder(env, p.block, handle.ack_in)
        p.bind(handle, responder)
        for seq in (2, 3):  # tail-only attempt (earlier seqs already acked)
            p.acked_seqs.add(seq - 2)
            packet = Packet(p.block, seq, 100, is_last=(seq == 3))
            p.produced[seq] = packet
            p.note_sent(seq)
            responder.packet_sent(packet)

        def feed(env):
            yield handle.ack_in.put(Ack(p.block.block_id, 2))

        env.process(feed(env))
        env.run(until=1)
        p.fold_acks()
        assert p.acked_seqs == {0, 1, 2}
        assert p.pending_seqs() == []  # 3 was sent on this handle

    def test_bind_resets_attempt_state(self, env):
        p = make_pipeline(env)
        handle = _FakeHandle(env)
        p.bind(handle, PacketResponder(env, p.block, handle.ack_in))
        p.note_sent(0)
        new_handle = _FakeHandle(env)
        p.bind(new_handle, PacketResponder(env, p.block, new_handle.ack_in))
        assert p.sent_seqs == set()
        assert p.pending_seqs() == [0, 1, 2, 3]

    def test_rebind_block_remaps_packets(self, env):
        p = make_pipeline(env)
        p.produced[0] = Packet(p.block, 0, 100)
        new_block = p.block.with_generation(1)
        p.rebind_block(new_block, ("dn0", "dn5", "dn6"))
        assert p.block.generation == 1
        assert p.produced[0].block.generation == 1
        assert p.recoveries == 1
        assert p.skip_speed_record
        assert p.targets == ("dn0", "dn5", "dn6")

    def test_acked_bytes_sums_produced(self, env):
        p = make_pipeline(env)
        p.produced[0] = Packet(p.block, 0, 100)
        p.produced[1] = Packet(p.block, 1, 100)
        p.acked_seqs = {0, 1}
        assert p.acked_bytes == 200

    def test_mark_done_fires_event(self, env):
        p = make_pipeline(env)
        p.mark_done()
        assert p.state is PipelineState.DONE
        assert p.done.triggered
        p.mark_done()  # idempotent
        assert p.done.value is p

    def test_first_datanode(self, env):
        p = make_pipeline(env)
        assert p.first_datanode == "dn0"
