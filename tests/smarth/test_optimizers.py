"""Unit tests for Algorithm 1 (global) and Algorithm 2 (local) optimizers."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import HdfsConfig
from repro.hdfs.datanode_manager import DatanodeManager
from repro.hdfs.namenode import SpeedRegistry
from repro.net import Topology
from repro.sim import Environment
from repro.smarth import LocalOptimizer, SmarthPlacementPolicy, SpeedRecords, SpeedSample

RACKS = {
    "rack0": ["dn0", "dn2", "dn4", "dn6", "dn8"],
    "rack1": ["dn1", "dn3", "dn5", "dn7"],
}


def make_policy(speed_map=None, seed=7, enabled=True, replication=3):
    env = Environment()
    topo = Topology.from_rack_map(RACKS)
    manager = DatanodeManager(env, HdfsConfig())
    for rack, hosts in RACKS.items():
        for host in hosts:
            manager.register(host, rack)
    registry = SpeedRegistry()
    if speed_map:
        registry.update("client", speed_map)
    return SmarthPlacementPolicy(
        topo, manager, registry, random.Random(seed), replication, enabled=enabled
    )


class TestGlobalOptimization:
    def test_no_records_falls_back_to_default(self):
        policy = make_policy()
        targets = policy.choose_targets("client", 3)
        assert len(set(targets)) == 3
        assert policy.fallback_selections == 1
        assert policy.topn_selections == 0

    def test_first_datanode_from_topn(self):
        # 9 datanodes, repli 3 → n = 3; dn0/dn2/dn4 are the fastest.
        speeds = {f"dn{i}": 100.0 - i for i in range(9)}
        policy = make_policy(speeds)
        firsts = {policy.choose_targets("client", 3)[0] for _ in range(100)}
        assert firsts <= {"dn0", "dn1", "dn2"}
        assert policy.topn_selections == 100

    def test_second_replica_remote_rack(self):
        speeds = {f"dn{i}": 100.0 - i for i in range(9)}
        policy = make_policy(speeds)
        for _ in range(50):
            t = policy.choose_targets("client", 3)
            assert policy.topology.rack_of(t[0]) != policy.topology.rack_of(t[1])
            assert policy.topology.rack_of(t[1]) == policy.topology.rack_of(t[2])

    def test_unmeasured_nodes_fill_topn(self):
        # Only one (slow) node measured: unmeasured nodes must still be
        # eligible as first datanode, else one bad early sample pins us.
        policy = make_policy({"dn7": 1.0})
        firsts = {policy.choose_targets("client", 3)[0] for _ in range(200)}
        assert len(firsts) > 1

    def test_excluded_respected(self):
        speeds = {f"dn{i}": 100.0 - i for i in range(9)}
        policy = make_policy(speeds)
        excluded = {"dn0", "dn1", "dn2", "dn3", "dn4", "dn5"}
        for _ in range(50):
            t = policy.choose_targets("client", 3, excluded=excluded)
            assert not excluded & set(t)

    def test_disabled_always_falls_back(self):
        speeds = {f"dn{i}": 100.0 - i for i in range(9)}
        policy = make_policy(speeds, enabled=False)
        policy.choose_targets("client", 3)
        assert policy.fallback_selections == 1

    def test_degrades_below_replication(self):
        speeds = {f"dn{i}": 100.0 - i for i in range(9)}
        policy = make_policy(speeds)
        t = policy.choose_targets(
            "client", 3, excluded={f"dn{i}" for i in range(7)}
        )
        assert len(t) == 2

    def test_targets_always_distinct(self):
        speeds = {f"dn{i}": float(i) for i in range(9)}
        policy = make_policy(speeds)
        for _ in range(100):
            t = policy.choose_targets("client", 3)
            assert len(set(t)) == len(t)


class TestHotPathSetConstruction:
    """Micro-regression: the warm allocation path builds a bounded handful
    of sets per call, never one per element.  The quadratic regression this
    guards against — ``set(available)`` rebuilt inside a comprehension
    condition — makes the construction count grow with cluster size."""

    def _counting_policy(self, monkeypatch, n_datanodes):
        from repro.smarth import global_opt

        env = Environment()
        racks = {"rack0": [], "rack1": []}
        for i in range(n_datanodes):
            racks[f"rack{i % 2}"].append(f"dn{i:03d}")
        topo = Topology.from_rack_map(racks)
        manager = DatanodeManager(env, HdfsConfig())
        for rack, hosts in racks.items():
            for host in hosts:
                manager.register(host, rack)
        registry = SpeedRegistry()
        registry.update(
            "client", {f"dn{i:03d}": 1000.0 + i for i in range(n_datanodes)}
        )
        policy = SmarthPlacementPolicy(
            topo, manager, registry, random.Random(3), 3
        )

        counter = {"n": 0}

        class CountingSet(set):
            def __init__(self, *args, **kwargs):
                counter["n"] += 1
                super().__init__(*args, **kwargs)

        class CountingFrozenset(frozenset):
            def __new__(cls, *args):
                counter["n"] += 1
                return super().__new__(cls, *args)

        # Shadow the builtins in the module's namespace: every `set(...)`
        # / `frozenset(...)` evaluated inside global_opt is counted.
        monkeypatch.setattr(global_opt, "set", CountingSet, raising=False)
        monkeypatch.setattr(
            global_opt, "frozenset", CountingFrozenset, raising=False
        )
        return policy, counter

    def test_construction_count_independent_of_cluster_size(self, monkeypatch):
        calls = 5
        counts = {}
        for size in (30, 240):
            policy, counter = self._counting_policy(monkeypatch, size)
            excluded = {f"dn{i:03d}" for i in range(6)}
            for _ in range(calls):
                targets = policy.choose_targets("client", 3, excluded=excluded)
                assert len(targets) == 3
            assert policy.topn_selections == calls  # warm TopN path taken
            counts[size] = counter["n"]
        assert counts[30] == counts[240]
        assert counts[240] <= 2 * calls  # a handful per call, not per element

    def test_busy_topn_branch_stays_bounded(self, monkeypatch):
        # Exclude the entire TopN so the "every TopN node busy" branch
        # runs: it may build a couple of extra sets, but still O(1)/call.
        policy, counter = self._counting_policy(monkeypatch, 60)
        # n = 60 // 3 = 20; the TopN is the 20 highest-speed datanodes,
        # i.e. the highest-numbered names under the speed map above.
        excluded = {f"dn{i:03d}" for i in range(40, 60)}
        before = counter["n"]
        for _ in range(3):
            targets = policy.choose_targets("client", 3, excluded=excluded)
            assert not excluded.intersection(targets)
        assert counter["n"] - before <= 4 * 3


class TestLocalOptimization:
    def _records(self, speeds):
        rec = SpeedRecords()
        for dn, rate in speeds.items():
            rec.record(SpeedSample(dn, nbytes=int(rate), duration=1.0, at=0))
        return rec

    def test_sorts_descending_by_speed(self):
        rec = self._records({"a": 10, "b": 30, "c": 20})
        opt = LocalOptimizer(rec, random.Random(1), threshold=1.0)
        assert opt.reorder(("a", "b", "c")) == ("b", "c", "a")

    def test_unknown_nodes_sort_last(self):
        rec = self._records({"a": 10})
        opt = LocalOptimizer(rec, random.Random(1), threshold=1.0)
        assert opt.reorder(("x", "a", "y"))[0] == "a"

    def test_threshold_one_never_swaps(self):
        rec = self._records({"a": 10, "b": 30, "c": 20})
        opt = LocalOptimizer(rec, random.Random(1), threshold=1.0)
        for _ in range(200):
            opt.reorder(("a", "b", "c"))
        assert opt.swaps == 0

    def test_threshold_zero_always_swaps(self):
        rec = self._records({"a": 10, "b": 30, "c": 20})
        opt = LocalOptimizer(rec, random.Random(1), threshold=0.0)
        for _ in range(100):
            result = opt.reorder(("a", "b", "c"))
            assert result[0] != "b"  # fastest was swapped away
        assert opt.swaps == 100

    def test_swap_rate_matches_threshold(self):
        rec = self._records({"a": 10, "b": 30, "c": 20})
        opt = LocalOptimizer(rec, random.Random(42), threshold=0.8)
        n = 5000
        for _ in range(n):
            opt.reorder(("a", "b", "c"))
        assert opt.swaps / n == pytest.approx(0.2, abs=0.03)

    def test_disabled_returns_input(self):
        rec = self._records({"a": 10, "b": 30})
        opt = LocalOptimizer(rec, random.Random(1), enabled=False)
        assert opt.reorder(("a", "b")) == ("a", "b")

    def test_single_target_untouched(self):
        opt = LocalOptimizer(SpeedRecords(), random.Random(1), threshold=0.0)
        assert opt.reorder(("only",)) == ("only",)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            LocalOptimizer(SpeedRecords(), random.Random(1), threshold=1.5)

    @given(
        targets=st.lists(
            st.sampled_from([f"dn{i}" for i in range(9)]),
            min_size=1,
            max_size=5,
            unique=True,
        ),
        seed=st.integers(min_value=0, max_value=10**6),
        threshold=st.floats(min_value=0, max_value=1),
    )
    @settings(max_examples=200, deadline=None)
    def test_reorder_is_permutation(self, targets, seed, threshold):
        rec = self._records({f"dn{i}": float(i + 1) for i in range(5)})
        opt = LocalOptimizer(rec, random.Random(seed), threshold=threshold)
        result = opt.reorder(tuple(targets))
        assert sorted(result) == sorted(targets)
