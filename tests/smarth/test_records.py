"""Unit tests for client-side speed records and the heartbeat reporter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smarth import SpeedRecords, SpeedSample


class TestSpeedSample:
    def test_rate(self):
        s = SpeedSample("dn0", nbytes=1000, duration=2.0, at=5.0)
        assert s.rate == 500.0

    def test_zero_duration_rate(self):
        s = SpeedSample("dn0", nbytes=1000, duration=0.0, at=5.0)
        assert s.rate == 0.0


class TestSpeedRecords:
    def test_first_sample_sets_speed(self):
        rec = SpeedRecords()
        rec.record(SpeedSample("dn0", 1000, 1.0, at=0))
        assert rec.speed_of("dn0") == pytest.approx(1000.0)

    def test_ewma_blends(self):
        rec = SpeedRecords()
        rec.record(SpeedSample("dn0", 1000, 1.0, at=0))  # 1000
        rec.record(SpeedSample("dn0", 3000, 1.0, at=1))  # 0.5*3000+0.5*1000
        assert rec.speed_of("dn0") == pytest.approx(2000.0)

    def test_unknown_is_none(self):
        assert SpeedRecords().speed_of("nope") is None

    def test_zero_duration_ignored(self):
        rec = SpeedRecords()
        rec.record(SpeedSample("dn0", 1000, 0.0, at=0))
        assert rec.speed_of("dn0") is None

    def test_snapshot_and_dirty(self):
        rec = SpeedRecords()
        assert not rec.take_dirty()
        rec.record(SpeedSample("dn0", 1000, 1.0, at=0))
        assert rec.take_dirty()
        assert not rec.take_dirty()  # consumed
        assert rec.snapshot() == {"dn0": pytest.approx(1000.0)}

    def test_latest_keeps_raw_sample(self):
        rec = SpeedRecords()
        s = SpeedSample("dn0", 1000, 1.0, at=7)
        rec.record(s)
        assert rec.latest("dn0") is s

    def test_known_datanodes_sorted(self):
        rec = SpeedRecords()
        rec.record(SpeedSample("b", 1, 1.0, at=0))
        rec.record(SpeedSample("a", 1, 1.0, at=0))
        assert rec.known_datanodes() == ("a", "b")
        assert len(rec) == 2


@given(
    sizes=st.lists(
        st.integers(min_value=1, max_value=10**12), min_size=1, max_size=50
    )
)
@settings(max_examples=100, deadline=None)
def test_ewma_bounded_by_min_max(sizes):
    """The smoothed speed always stays within observed sample bounds."""
    rec = SpeedRecords()
    for i, size in enumerate(sizes):
        rec.record(SpeedSample("dn0", nbytes=size, duration=1.0, at=i))
    smoothed = rec.speed_of("dn0")
    assert min(sizes) - 1e-6 <= smoothed <= max(sizes) + 1e-6
