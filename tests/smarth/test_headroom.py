"""Tests for SMARTH's adaptive concurrency under a shrinking cluster."""

import pytest

from repro.cluster import SMALL, build_homogeneous
from repro.config import SimulationConfig
from repro.sim import Environment
from repro.smarth import SmarthDeployment
from repro.units import KB, MB


def build(n_datanodes=9):
    env = Environment()
    cfg = SimulationConfig().with_hdfs(block_size=2 * MB, packet_size=64 * KB)
    cluster = build_homogeneous(env, SMALL, n_datanodes=n_datanodes, config=cfg)
    cluster.throttle_rack_boundary(50)  # keep pipelines alive longer
    return env, SmarthDeployment(cluster, enable_replication_monitor=False)


class TestHeadroom:
    def test_full_width_pipelines_despite_death(self):
        """After a failure shrinks the pool, the client waits for live
        pipelines to release datanodes instead of opening degraded
        (under-replicated) pipelines."""
        env, deployment = build()

        def killer(env):
            yield env.timeout(0.3)
            busy = [
                d
                for d in deployment.datanodes.values()
                if d.active_receivers > 0 and d.node.alive
            ]
            if busy:
                busy[-1].kill()

        env.process(killer(env))
        client = deployment.client()
        result = env.run(until=env.process(client.put("/f", 20 * MB)))
        env.run(until=env.now + 1)
        assert deployment.namenode.file_fully_replicated("/f")
        # Every pipeline that survived to completion is full width.
        for pipeline in result.pipelines:
            assert len(pipeline) == 3

    def test_minimal_cluster_single_pipeline(self):
        """With exactly `replication` datanodes the cap is one pipeline
        and SMARTH still completes correctly."""
        env, deployment = build(n_datanodes=3)
        client = deployment.client()
        result = env.run(until=env.process(client.put("/f", 8 * MB)))
        env.run(until=env.now + 1)
        assert result.max_concurrent_pipelines == 1
        assert deployment.namenode.file_fully_replicated("/f")

    def test_four_datanodes_cap_one(self):
        """9//3=3 but 4//3=1: the §IV-C rule floors tiny clusters."""
        env, deployment = build(n_datanodes=4)
        client = deployment.client()
        result = env.run(until=env.process(client.put("/f", 6 * MB)))
        env.run(until=env.now + 1)
        assert result.max_concurrent_pipelines == 1
        assert deployment.namenode.file_fully_replicated("/f")
