"""Unit tests for the heartbeat speed reporter."""

import pytest

from repro.cluster import SMALL, build_homogeneous
from repro.config import SimulationConfig
from repro.hdfs import HdfsDeployment
from repro.sim import Environment
from repro.smarth import (
    SmarthDeployment,
    SpeedRecords,
    SpeedSample,
    speed_reporter,
)
from repro.units import KB, MB


@pytest.fixture()
def setup():
    env = Environment()
    cfg = SimulationConfig().with_hdfs(heartbeat_interval=1.0)
    cluster = build_homogeneous(env, SMALL, n_datanodes=3, config=cfg)
    deployment = HdfsDeployment(cluster, enable_replication_monitor=False)
    return env, deployment


class TestReporter:
    def test_dirty_records_delivered_on_next_beat(self, setup):
        env, deployment = setup
        records = SpeedRecords()
        env.process(
            speed_reporter(deployment.namenode, "c1", records, interval=1.0)
        )

        def feed(env):
            yield env.timeout(0.5)
            records.record(SpeedSample("dn0", 1000, 1.0, at=env.now))

        env.process(feed(env))
        env.run(until=0.9)
        assert not deployment.namenode.speeds.has_records("c1")
        env.run(until=1.5)
        assert deployment.namenode.speeds.records_for("c1") == {
            "dn0": pytest.approx(1000.0)
        }

    def test_clean_records_not_resent(self, setup):
        env, deployment = setup
        records = SpeedRecords()
        records.record(SpeedSample("dn0", 1000, 1.0, at=0))
        sent = []
        original = deployment.namenode.client_heartbeat

        def counting(client, payload):
            sent.append(payload)
            yield from original(client, payload)

        deployment.namenode.client_heartbeat = counting
        env.process(
            speed_reporter(deployment.namenode, "c1", records, interval=1.0)
        )
        env.run(until=5.5)
        assert len(sent) == 1  # one dirty flush, then silence

    def test_updates_trigger_new_reports(self, setup):
        env, deployment = setup
        records = SpeedRecords()
        env.process(
            speed_reporter(deployment.namenode, "c1", records, interval=1.0)
        )

        def feed(env):
            for i in range(3):
                yield env.timeout(2.0)
                records.record(
                    SpeedSample("dn0", 1000 * (i + 1), 1.0, at=env.now)
                )

        env.process(feed(env))
        env.run(until=8)
        final = deployment.namenode.speeds.records_for("c1")["dn0"]
        # EWMA of 1000, 2000, 3000 = 2250.
        assert final == pytest.approx(2250.0)


class TestReporterStop:
    def test_interrupt_journals_the_stop(self, setup):
        env, deployment = setup
        records = SpeedRecords()
        proc = env.process(
            speed_reporter(deployment.namenode, "c1", records, interval=1.0)
        )

        def stopper(env):
            yield env.timeout(2.5)
            proc.interrupt("upload finished")

        env.process(stopper(env))
        env.run(until=5.0)
        stops = deployment.namenode.journal.events(kind="reporter_stopped")
        assert len(stops) == 1
        (stop,) = stops
        assert stop.subject == "client:c1"
        assert stop.details["client"] == "c1"
        assert stop.details["cause"] == "upload finished"
        assert stop.time == pytest.approx(2.5)
        assert not proc.is_alive

    def test_upload_completion_stops_the_heartbeat_loop(self):
        """End-to-end: the client's reporter dies with the upload.

        Without the stop, the heartbeat loop keeps the environment's
        queue non-empty forever; with it, the run drains and the journal
        records exactly one stop for the client.
        """
        env = Environment()
        cfg = SimulationConfig().with_hdfs(block_size=2 * MB, packet_size=256 * KB)
        cluster = build_homogeneous(env, SMALL, n_datanodes=6, config=cfg)
        deployment = SmarthDeployment(cluster, enable_replication_monitor=False)
        client = deployment.client()
        result = env.run(until=env.process(client.put("/f", 4 * MB)))

        stops = deployment.journal.events(kind="reporter_stopped")
        assert len(stops) == 1
        assert stops[0].details["client"] == client.name
        # The stop lands the instant the upload completes.
        assert stops[0].time == pytest.approx(result.end)
        assert not client._reporter.is_alive
        # Heap hygiene at upload completion: the only live entries left
        # are the cluster's own periodic machinery (6 datanode heartbeats
        # + the liveness monitor) and the reporter's just-finished process
        # event — not a backlog of abandoned client timers.  The
        # reporter's next beat and every per-packet race loser were
        # cancelled, so the live count is bounded by cluster size.
        assert len(env) <= 6 + 2
