"""Adaptivity tests: §III-C's 'network status varies all the time'.

The local optimizer's exploratory swap (threshold 0.8) exists so stale
speed records get refreshed when conditions change.  These tests change
conditions *mid-upload* and check the protocol reacts the way the paper
intends.
"""

import pytest

from repro.cluster import SMALL, build_homogeneous
from repro.config import SimulationConfig
from repro.faults import FaultInjector
from repro.sim import Environment
from repro.smarth import SmarthDeployment
from repro.units import KB, MB, mbps


def build(threshold=0.8, heartbeat=0.5):
    env = Environment()
    cfg = (
        SimulationConfig()
        .with_hdfs(
            block_size=2 * MB, packet_size=64 * KB, heartbeat_interval=heartbeat
        )
        .with_smarth(local_opt_threshold=threshold)
    )
    cluster = build_homogeneous(env, SMALL, n_datanodes=9, config=cfg)
    deployment = SmarthDeployment(cluster, enable_replication_monitor=False)
    return env, deployment


class TestDynamicThrottle:
    def test_throttle_applies_dynamically(self):
        env, deployment = build()
        injector = FaultInjector(deployment)
        injector.throttle_at("dn0", 10, at=1.0)
        env.run(until=2)
        client_host = deployment.cluster.client_host
        dn0 = deployment.datanode("dn0").node
        assert deployment.network.effective_rate(client_host, dn0) == mbps(10)
        assert any(e.kind == "throttle" for e in injector.events)

    def test_unthrottle_restores(self):
        env, deployment = build()
        injector = FaultInjector(deployment)
        injector.throttle_at("dn0", 10, at=1.0)
        injector.unthrottle_at("dn0", at=2.0)
        env.run(until=3)
        client_host = deployment.cluster.client_host
        dn0 = deployment.datanode("dn0").node
        assert deployment.network.effective_rate(client_host, dn0) == mbps(216)

    def test_client_learns_to_avoid_degraded_node(self):
        """A node that degrades mid-upload stops being picked as the
        first datanode once its speed record catches up."""
        env, deployment = build()
        injector = FaultInjector(deployment)
        client = deployment.client()

        # Degrade dn0 hard, early.
        injector.throttle_at("dn0", 5, at=1.0)
        result = env.run(until=env.process(client.put("/f", 40 * MB)))
        env.run(until=env.now + 1)
        assert deployment.namenode.file_fully_replicated("/f")

        # dn0 must not be the *first* datanode in the final stretch
        # (exploration may touch it once; the tail should avoid it).
        tail_firsts = [p[0] for p in result.pipelines[-5:]]
        assert tail_firsts.count("dn0") <= 1

    def test_upload_faster_with_adaptation_than_frozen_records(self):
        """Against a mid-upload degradation, the paper's exploring
        configuration beats a never-swap (threshold=1.0) client that can
        still exploit its pre-degradation record of the now-slow node."""
        durations = {}
        for threshold in (0.8, 1.0):
            env, deployment = build(threshold=threshold)
            injector = FaultInjector(deployment)
            injector.throttle_at("dn2", 5, at=2.0)
            client = deployment.client()
            result = env.run(until=env.process(client.put("/f", 60 * MB)))
            durations[threshold] = result.duration
        assert durations[0.8] <= durations[1.0] * 1.05
