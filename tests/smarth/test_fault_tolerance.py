"""Integration tests for Algorithm 4: SMARTH multi-pipeline recovery."""

import pytest

from repro.cluster import SMALL, build_homogeneous
from repro.config import SimulationConfig
from repro.smarth import SmarthDeployment
from repro.sim import Environment
from repro.units import KB, MB


def build(n_datanodes=9, throttle=None):
    env = Environment()
    cfg = SimulationConfig().with_hdfs(block_size=2 * MB, packet_size=64 * KB)
    cluster = build_homogeneous(env, SMALL, n_datanodes=n_datanodes, config=cfg)
    if throttle:
        cluster.throttle_rack_boundary(throttle)
    return env, SmarthDeployment(cluster)


def kill_active_at(env, deployment, at, pick=0):
    """Kill a datanode that has an active receiver at time ``at``."""
    victims = []

    def killer(env):
        yield env.timeout(at)
        active = [
            d
            for d in deployment.datanodes.values()
            if d.active_receivers > 0 and d.node.alive
        ]
        if active:
            victim = active[min(pick, len(active) - 1)]
            victims.append(victim.name)
            victim.kill()

    env.process(killer(env))
    return victims


class TestAlgorithm4:
    def test_upload_survives_failure_in_background_pipeline(self):
        # Throttle so pipelines linger in the background phase; kill a
        # node late in the pipeline (high pick index → a forwarding node).
        env, deployment = build(throttle=50)
        client = deployment.client()
        victims = kill_active_at(env, deployment, at=0.4, pick=2)
        result = env.run(until=env.process(client.put("/f", 12 * MB)))
        assert victims
        assert result.recoveries >= 1
        assert deployment.namenode.file_fully_replicated("/f")

    def test_upload_survives_first_datanode_failure(self):
        env, deployment = build(throttle=50)
        client = deployment.client()
        victims = kill_active_at(env, deployment, at=0.05, pick=0)
        result = env.run(until=env.process(client.put("/f", 12 * MB)))
        assert victims
        assert result.recoveries >= 1
        assert deployment.namenode.file_fully_replicated("/f")

    def test_replicas_full_size_after_recovery(self):
        env, deployment = build(throttle=50)
        client = deployment.client()
        victims = kill_active_at(env, deployment, at=0.3, pick=1)
        env.run(until=env.process(client.put("/f", 10 * MB)))
        assert victims
        nn = deployment.namenode
        for block in nn.namespace.get("/f").blocks:
            info = nn.blocks.info(block.block_id)
            finalized = [r for r in info.replicas.values() if r.finalized]
            assert len(finalized) >= 3
            for replica in finalized:
                assert replica.bytes_confirmed == block.size

    def test_failed_node_blacklisted_from_later_pipelines(self):
        env, deployment = build(throttle=50)
        client = deployment.client()
        victims = kill_active_at(env, deployment, at=0.05)
        result = env.run(until=env.process(client.put("/f", 16 * MB)))
        assert victims
        victim = victims[0]
        # Pipelines opened after the failure must avoid the dead node.
        # (The victim may appear in pipelines opened before it died.)
        later = result.pipelines[result.recoveries + 2 :]
        assert all(victim not in p for p in later)

    def test_multiple_failures(self):
        env, deployment = build(throttle=50)
        client = deployment.client()
        v1 = kill_active_at(env, deployment, at=0.2, pick=0)
        v2 = kill_active_at(env, deployment, at=0.8, pick=1)
        result = env.run(until=env.process(client.put("/f", 16 * MB)))
        assert v1 and v2 and v1 != v2
        assert result.recoveries >= 2
        assert deployment.namenode.file_fully_replicated("/f")

    def test_recovery_cost_is_bounded(self):
        """A single failure must not blow the upload time up by > 2x."""
        env_c, dep_c = build(throttle=50)
        clean = env_c.run(until=env_c.process(dep_c.client().put("/f", 12 * MB)))
        env_f, dep_f = build(throttle=50)
        client = dep_f.client()
        kill_active_at(env_f, dep_f, at=0.4, pick=2)
        faulty = env_f.run(until=env_f.process(client.put("/f", 12 * MB)))
        assert faulty.duration < clean.duration * 2.0

    def test_smarth_still_beats_hdfs_with_failures(self):
        """Recovery must not erase the multi-pipeline advantage."""
        from repro.hdfs import HdfsDeployment
        from repro.cluster import build_homogeneous as build_cluster

        durations = {}
        for smarth in (False, True):
            env = Environment()
            cfg = SimulationConfig().with_hdfs(
                block_size=2 * MB, packet_size=64 * KB
            )
            cluster = build_cluster(env, SMALL, n_datanodes=9, config=cfg)
            cluster.throttle_rack_boundary(50)
            deployment = (
                SmarthDeployment(cluster) if smarth else HdfsDeployment(cluster)
            )
            client = deployment.client()
            kill_active_at(env, deployment, at=0.5, pick=1)
            result = env.run(until=env.process(client.put("/f", 16 * MB)))
            assert deployment.namenode.file_fully_replicated("/f")
            durations[smarth] = result.duration
        assert durations[True] < durations[False]
