"""§IV-C buffer-overflow protection, verified end-to-end.

"We limit the pipeline size to a maximum number (the cluster size / the
number of replica), and if a datanode is already in a pipeline, it
cannot be added into other pipelines created by the same client.  Then
each datanode belongs to only one pipeline, and its buffer is set to be
64 MB, i.e., the default size of block, for each client."
"""

import pytest

from repro.cluster import SMALL, build_homogeneous
from repro.config import SimulationConfig
from repro.hdfs.datanode import BlockReceiver
from repro.sim import Environment
from repro.smarth import SmarthDeployment
from repro.units import KB, MB


def run_tracked_upload(size, throttle=50, block_size=2 * MB):
    """Upload while recording every receiver's buffer high-water mark."""
    env = Environment()
    cfg = SimulationConfig().with_hdfs(block_size=block_size, packet_size=64 * KB)
    cluster = build_homogeneous(env, SMALL, n_datanodes=9, config=cfg)
    cluster.throttle_rack_boundary(throttle)
    deployment = SmarthDeployment(cluster, enable_replication_monitor=False)

    marks: list[tuple[str, int, int]] = []
    original_init = BlockReceiver.__init__

    def tracking_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        marks.append(self)  # collect live receivers; read marks afterwards

    BlockReceiver.__init__ = tracking_init
    try:
        client = deployment.client()
        env.run(until=env.process(client.put("/f", size)))
    finally:
        BlockReceiver.__init__ = original_init

    assert deployment.namenode.file_fully_replicated("/f")
    return marks


class TestBufferBounds:
    def test_buffer_never_exceeds_one_block(self):
        receivers = run_tracked_upload(8 * MB)
        assert receivers
        for receiver in receivers:
            assert receiver.max_buffered <= receiver.buffer_capacity
            # §IV-C: the per-client buffer is one block.
            assert (
                receiver.buffer_capacity
                * receiver.datanode.config.packet_size
                <= receiver.datanode.config.block_size
            )

    def test_first_datanode_buffer_actually_fills(self):
        """Under throttling the first datanode really does absorb the
        block while forwarding lags — the §IV-C concern is real."""
        receivers = run_tracked_upload(4 * MB, throttle=25)
        peak = max(r.max_buffered for r in receivers)
        # The buffer got meaningfully used (more than the 4-packet floor).
        assert peak > 8

    def test_disjointness_bounds_per_node_memory(self):
        """One client's live pipelines never co-locate, so per-node
        buffered bytes stay within one block."""
        env = Environment()
        cfg = SimulationConfig().with_hdfs(block_size=2 * MB, packet_size=64 * KB)
        cluster = build_homogeneous(env, SMALL, n_datanodes=9, config=cfg)
        cluster.throttle_rack_boundary(25)
        deployment = SmarthDeployment(cluster, enable_replication_monitor=False)
        client = deployment.client()

        violations = []

        def audit(env):
            while True:
                yield env.timeout(0.05)
                for datanode in deployment.datanodes.values():
                    if datanode.active_receivers > 1:
                        violations.append((env.now, datanode.name))

        env.process(audit(env))
        env.run(until=env.process(client.put("/f", 12 * MB)))
        assert violations == []
