"""The public API surface: everything advertised must exist and be usable."""

import inspect

import repro


class TestPublicSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_every_public_callable_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{name} lacks a docstring"

    def test_quickstart_snippet_from_module_docstring(self):
        """The README/docstring quickstart actually runs."""
        from repro import compare, two_rack

        scenario = two_rack("small", throttle_mbps=50)
        hdfs, smarth, improvement = compare(
            scenario,
            "64MB",
            config=repro.SimulationConfig().with_hdfs(
                block_size=4 * repro.MB, packet_size=256 * repro.KB
            ),
        )
        assert hdfs.duration > smarth.duration
        assert improvement > 0


class TestSubpackageDocstrings:
    def test_every_module_has_a_docstring(self):
        import importlib
        import pkgutil

        missing = []
        for module_info in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            if module_info.name == "repro.__main__":
                continue  # importing it runs the CLI
            module = importlib.import_module(module_info.name)
            if not module.__doc__:
                missing.append(module_info.name)
        assert missing == []
