"""Tests for seed-replication statistics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import SeedSummary, repeat_compare
from repro.config import SimulationConfig
from repro.units import KB, MB
from repro.workloads import two_rack


class TestSeedSummary:
    def test_single_sample(self):
        s = SeedSummary.from_samples([5.0])
        assert s.mean == 5.0
        assert s.stdev == 0.0
        assert s.ci_low == s.ci_high == 5.0
        assert s.n == 1

    def test_known_values(self):
        s = SeedSummary.from_samples([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.stdev == pytest.approx(1.0)
        assert s.ci_low < 2.0 < s.ci_high

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SeedSummary.from_samples([])

    def test_str(self):
        assert "n=3" in str(SeedSummary.from_samples([1.0, 2.0, 3.0]))

    @given(
        samples=st.lists(
            st.floats(min_value=0.1, max_value=1e6), min_size=2, max_size=30
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_ci_contains_mean_and_is_ordered(self, samples):
        s = SeedSummary.from_samples(samples)
        assert s.ci_low <= s.mean <= s.ci_high
        assert min(samples) - 1e-9 <= s.mean <= max(samples) + 1e-9


class TestRepeatCompare:
    def test_replicated_comparison(self):
        config = SimulationConfig().with_hdfs(
            block_size=4 * MB, packet_size=256 * KB
        )
        result = repeat_compare(
            two_rack("small", throttle_mbps=50),
            32 * MB,
            seeds=[1, 2, 3],
            config=config,
        )
        assert result.hdfs.n == result.smarth.n == 3
        assert result.hdfs.mean > result.smarth.mean
        assert result.improvement.mean > 0

    def test_significance_with_enough_seeds(self):
        """With 8 seeds at a multi-block size the win is significant —
        the improvement's 95% CI sits entirely above zero."""
        config = SimulationConfig().with_hdfs(
            block_size=4 * MB, packet_size=256 * KB
        )
        result = repeat_compare(
            two_rack("small", throttle_mbps=50),
            64 * MB,
            seeds=list(range(1, 9)),
            config=config,
        )
        assert result.smarth_wins_significantly
        assert result.improvement.ci_low > 0

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            repeat_compare(two_rack("small"), MB, seeds=[])

    def test_seed_variation_is_real(self):
        """Different seeds genuinely vary placement, hence timings."""
        config = SimulationConfig().with_hdfs(
            block_size=4 * MB, packet_size=256 * KB
        )
        result = repeat_compare(
            two_rack("small", throttle_mbps=100),
            24 * MB,
            seeds=[10, 20, 30, 40],
            config=config,
        )
        assert result.hdfs.stdev > 0
