"""Tests for the event journal and its protocol emission points."""

import pytest

from repro.analysis.trace import Journal, TraceEvent
from repro.cluster import SMALL, build_homogeneous
from repro.config import SimulationConfig
from repro.hdfs import HdfsDeployment
from repro.sim import Environment
from repro.units import KB, MB


class TestJournal:
    def test_emit_and_read(self):
        journal = Journal()
        journal.emit(1.0, "k1", "s1", a=1)
        journal.emit(2.0, "k2", "s2")
        assert len(journal) == 2
        assert journal.events(kind="k1")[0].details == {"a": 1}
        assert journal.kinds() == ("k1", "k2")
        assert journal.count("k2") == 1

    def test_filters(self):
        journal = Journal()
        for t in range(5):
            journal.emit(float(t), "tick", f"s{t % 2}")
        assert len(journal.events(subject="s0")) == 3
        assert len(journal.between(1.0, 3.0)) == 3

    def test_disable_stops_recording(self):
        journal = Journal()
        journal.disable()
        journal.emit(0.0, "k", "s")
        assert len(journal) == 0
        journal.enable()
        journal.emit(0.0, "k", "s")
        assert len(journal) == 1

    def test_timeline_rendering(self):
        journal = Journal()
        journal.emit(1.5, "pipeline_open", "block:7", targets=("a", "b"))
        text = journal.timeline()
        assert "pipeline_open" in text
        assert "block:7" in text

    def test_timeline_limit(self):
        journal = Journal()
        for t in range(10):
            journal.emit(float(t), "k", "s")
        assert len(journal.timeline(limit=3).splitlines()) == 3

    def test_clear(self):
        journal = Journal()
        journal.emit(0.0, "k", "s")
        journal.clear()
        assert len(journal) == 0

    def test_event_str(self):
        e = TraceEvent(1.0, "kind", "subj", {"x": 2})
        assert "kind" in str(e) and "x=2" in str(e)


class TestProtocolEmission:
    @pytest.fixture()
    def deployment(self):
        env = Environment()
        cfg = SimulationConfig().with_hdfs(block_size=2 * MB, packet_size=64 * KB)
        cluster = build_homogeneous(env, SMALL, n_datanodes=9, config=cfg)
        return env, HdfsDeployment(cluster)

    def test_upload_leaves_a_trace(self, deployment):
        env, dep = deployment
        client = dep.client()
        env.run(until=env.process(client.put("/f", 4 * MB)))
        journal = dep.journal
        assert journal.count("add_block") == 2
        assert journal.count("pipeline_open") == 2
        # Every pipeline datanode finalizes its replica locally.
        assert journal.count("block_stored") == 6
        assert journal.count("file_complete") == 1

    def test_failure_and_recovery_traced(self, deployment):
        env, dep = deployment

        def killer(env):
            yield env.timeout(0.05)
            busy = [
                d
                for d in dep.datanodes.values()
                if d.active_receivers > 0 and d.node.alive
            ]
            if busy:
                busy[0].kill()

        env.process(killer(env))
        client = dep.client()
        env.run(until=env.process(client.put("/f", 6 * MB)))
        journal = dep.journal
        assert journal.count("datanode_killed") == 1
        assert journal.count("pipeline_recovered") >= 1
        recovered = journal.events(kind="pipeline_recovered")[0]
        assert recovered.details["generation"] >= 1

    def test_events_are_time_ordered(self, deployment):
        env, dep = deployment
        client = dep.client()
        env.run(until=env.process(client.put("/f", 4 * MB)))
        times = [e.time for e in dep.journal]
        assert times == sorted(times)
