"""Unit tests for metrics and result containers."""

import pytest

from repro.analysis import ComparisonRow, improvement_percent, summarize_series
from repro.analysis.metrics import throughput_mbps
from repro.hdfs import WriteResult
from repro.units import MB, to_mbps


def result(duration=10.0, size=100 * MB):
    return WriteResult(
        path="/f", size=size, start=0.0, end=duration, n_blocks=2, system="hdfs"
    )


class TestImprovement:
    def test_basic(self):
        assert improvement_percent(300, 100) == pytest.approx(200.0)

    def test_zero_smarth_invalid(self):
        with pytest.raises(ValueError):
            improvement_percent(1, 0)


class TestComparisonRow:
    def test_from_results(self):
        row = ComparisonRow.from_results("x", result(20.0), result(10.0))
        assert row.improvement == pytest.approx(100.0)

    def test_as_dict(self):
        row = ComparisonRow("8GB", 300.0, 150.0)
        d = row.as_dict()
        assert d == {
            "label": "8GB",
            "hdfs_s": 300.0,
            "smarth_s": 150.0,
            "improvement_pct": 100.0,
        }


class TestSeries:
    def test_summarize(self):
        s = summarize_series([1.0, 2.0, 3.0])
        assert s["mean"] == pytest.approx(2.0)
        assert s["min"] == 1.0
        assert s["max"] == 3.0
        assert s["n"] == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_series([])


class TestWriteResultMetrics:
    def test_throughput(self):
        r = result(duration=10.0, size=100 * MB)
        assert r.throughput == pytest.approx(10 * MB)
        assert throughput_mbps(r) == pytest.approx(to_mbps(10 * MB))

    def test_duration(self):
        r = WriteResult(
            path="/f", size=1, start=5.0, end=7.5, n_blocks=1, system="hdfs"
        )
        assert r.duration == pytest.approx(2.5)
