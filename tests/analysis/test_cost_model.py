"""Unit and property tests for the §III-D cost model (Formulas 1-3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    CostParameters,
    hdfs_time,
    predicted_improvement,
    production_bound_time,
    smarth_time,
    smarth_time_refined,
)
from repro.analysis.cost_model import harmonic_mean
from repro.units import GB, KB, MB, mbps


def params(size=GB, block=64 * MB, packet=64 * KB, t_n=1e-3, t_c=0.0, t_w=0.0):
    return CostParameters(
        file_size=size, block_size=block, packet_size=packet, t_n=t_n, t_c=t_c, t_w=t_w
    )


class TestFormulas:
    def test_counts(self):
        p = params(size=GB)
        assert p.n_blocks == 16
        assert p.n_packets == GB // (64 * KB)

    def test_counts_round_up(self):
        p = params(size=GB + 1)
        assert p.n_blocks == 17

    def test_formula1_production_bound(self):
        p = params(t_c=1e-3, t_w=1e-4)
        expected = 1e-3 * p.n_blocks + (1e-3 + 1e-4) * p.n_packets
        assert production_bound_time(p) == pytest.approx(expected)

    def test_formula2_transmission_bound(self):
        p = params()
        b_min = mbps(50)
        expected = 1e-3 * p.n_blocks + (p.packet_size / b_min) * p.n_packets
        assert hdfs_time(p, b_min) == pytest.approx(expected)

    def test_formula2_switches_to_formula1_when_production_slow(self):
        # T_c far above P/B: production dominates.
        p = params(t_c=10.0)
        assert hdfs_time(p, mbps(1000)) == production_bound_time(p)

    def test_formula3_uses_first_hop_bandwidth(self):
        p = params()
        assert smarth_time(p, mbps(216)) < hdfs_time(p, mbps(50))

    def test_smarth_never_slower_than_hdfs(self):
        p = params()
        for throttle in (10, 50, 100, 200):
            b_min = mbps(throttle)
            b_max = mbps(216)
            assert smarth_time(p, max(b_min, b_max)) <= hdfs_time(p, b_min)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            CostParameters(file_size=0, block_size=1, packet_size=1)
        with pytest.raises(ValueError):
            CostParameters(file_size=1, block_size=1, packet_size=1, t_n=-1)
        with pytest.raises(ValueError):
            hdfs_time(params(), 0)


class TestRefinedModel:
    def test_harmonic_mean(self):
        assert harmonic_mean([100, 100]) == pytest.approx(100)
        assert harmonic_mean([50, 100]) == pytest.approx(2 / (1 / 50 + 1 / 100))

    def test_harmonic_mean_rejects_empty(self):
        with pytest.raises(ValueError):
            harmonic_mean([])

    def test_drain_cap_binds_at_low_throttle(self):
        p = params(size=8 * GB)
        nic = mbps(216)
        tight = smarth_time_refined(
            p, [nic] * 9, drain_rate=mbps(10), n_pipelines=3
        )
        loose = smarth_time_refined(
            p, [nic] * 9, drain_rate=mbps(500), n_pipelines=3
        )
        assert tight > loose

    def test_rotation_mix_slows_streaming(self):
        p = params(size=8 * GB)
        nic = mbps(216)
        all_fast = smarth_time_refined(
            p, [nic] * 9, drain_rate=nic, n_pipelines=3
        )
        mixed = smarth_time_refined(
            p, [nic] * 5 + [mbps(50)] * 4, drain_rate=nic, n_pipelines=3
        )
        assert mixed > all_fast

    def test_invalid_pipelines(self):
        with pytest.raises(ValueError):
            smarth_time_refined(params(), [1.0], drain_rate=1.0, n_pipelines=0)


class TestImprovement:
    def test_improvement_percent(self):
        assert predicted_improvement(200, 100) == pytest.approx(100.0)
        assert predicted_improvement(100, 100) == pytest.approx(0.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            predicted_improvement(1, 0)


@given(
    size=st.integers(min_value=1, max_value=16 * GB),
    b_min_mbps=st.floats(min_value=1, max_value=200),
    b_max_extra=st.floats(min_value=0, max_value=800),
)
@settings(max_examples=200, deadline=None)
def test_formula3_never_exceeds_formula2(size, b_min_mbps, b_max_extra):
    """For B_max >= B_min, SMARTH's predicted time <= HDFS's — the paper's
    §III-D conclusion, as a property."""
    p = params(size=size)
    b_min = mbps(b_min_mbps)
    b_max = mbps(b_min_mbps + b_max_extra)
    assert smarth_time(p, b_max) <= hdfs_time(p, b_min) + 1e-9


@given(size=st.integers(min_value=1, max_value=16 * GB))
@settings(max_examples=100, deadline=None)
def test_time_monotone_in_size(size):
    p_small = params(size=size)
    p_big = params(size=size + 64 * MB)
    assert hdfs_time(p_big, mbps(100)) > hdfs_time(p_small, mbps(100))
