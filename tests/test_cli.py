"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_upload_defaults(self):
        args = build_parser().parse_args(["upload"])
        assert args.system == "smarth"
        assert args.scenario == "two-rack"
        assert args.size == "1GB"

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig6"])
        assert args.id == "fig6"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestCommands:
    def test_scenarios_lists_all(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "two_rack" in out
        assert "contention" in out
        assert "heterogeneous" in out

    def test_upload_runs(self, capsys):
        rc = main(
            [
                "upload",
                "--system",
                "hdfs",
                "--size",
                "128MB",
                "--throttle",
                "100",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "replicated fully: True" in out
        assert "hdfs" in out

    def test_compare_runs(self, capsys):
        rc = main(["compare", "--size", "128MB", "--throttle", "50"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "improvement" in out

    def test_contention_scenario(self, capsys):
        rc = main(
            [
                "upload",
                "--scenario",
                "contention",
                "--slow-nodes",
                "2",
                "--size",
                "128MB",
            ]
        )
        assert rc == 0
        assert "throttled" in capsys.readouterr().out

    def test_roundtrip_runs(self, capsys):
        rc = main(
            ["roundtrip", "--system", "smarth", "--size", "128MB"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "write" in out and "read" in out
        assert "replicated fully: True" in out

    def test_experiment_table1(self, capsys):
        rc = main(["experiment", "table1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "216" in out and "376" in out

    def test_experiment_scaled_fig13(self, capsys):
        rc = main(["experiment", "fig13", "--scale", "0.03125"])
        assert rc == 0
        assert "Heterogeneous" in capsys.readouterr().out
