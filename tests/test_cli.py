"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_upload_defaults(self):
        args = build_parser().parse_args(["upload"])
        assert args.system == "smarth"
        assert args.scenario == "two-rack"
        assert args.size == "1GB"

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "fig6"])
        assert args.id == "fig6"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.seed == 7
        assert args.runs == 10
        assert args.protocol == "both"
        assert args.scale == 1.0
        assert args.out is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--protocol", "nfs"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--runs", "0"])


class TestCommands:
    def test_scenarios_lists_all(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "two_rack" in out
        assert "contention" in out
        assert "heterogeneous" in out

    def test_upload_runs(self, capsys):
        rc = main(
            [
                "upload",
                "--system",
                "hdfs",
                "--size",
                "128MB",
                "--throttle",
                "100",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "replicated fully: True" in out
        assert "hdfs" in out

    def test_upload_with_trace(self, capsys, tmp_path):
        trace = tmp_path / "upload.json"
        rc = main(
            [
                "upload",
                "--system",
                "smarth",
                "--size",
                "128MB",
                "--trace",
                str(trace),
            ]
        )
        assert rc == 0
        assert "trace" in capsys.readouterr().out
        doc = json.loads(trace.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"upload", "block", "pipeline", "stream"} <= names

    def test_trace_parser_defaults(self):
        args = build_parser().parse_args(["trace", "fig5"])
        assert args.seed == 0
        assert args.scale == 0.25
        assert args.out is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "fig99"])

    def test_compare_runs(self, capsys):
        rc = main(["compare", "--size", "128MB", "--throttle", "50"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "improvement" in out

    def test_contention_scenario(self, capsys):
        rc = main(
            [
                "upload",
                "--scenario",
                "contention",
                "--slow-nodes",
                "2",
                "--size",
                "128MB",
            ]
        )
        assert rc == 0
        assert "throttled" in capsys.readouterr().out

    def test_roundtrip_runs(self, capsys):
        rc = main(
            ["roundtrip", "--system", "smarth", "--size", "128MB"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "write" in out and "read" in out
        assert "replicated fully: True" in out

    def test_experiment_table1(self, capsys):
        rc = main(["experiment", "table1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "216" in out and "376" in out

    def test_experiment_scaled_fig13(self, capsys):
        rc = main(["experiment", "fig13", "--scale", "0.03125"])
        assert rc == 0
        assert "Heterogeneous" in capsys.readouterr().out

    def test_chaos_prints_report_and_exits_green(self, capsys):
        rc = main(
            [
                "chaos",
                "--seed",
                "7",
                "--runs",
                "2",
                "--protocol",
                "smarth",
                "--scale",
                "0.25",
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        report = json.loads(captured.out)
        assert report["all_green"] is True
        assert report["seed"] == 7
        assert len(report["runs_detail"]) == 2
        assert "ALL GREEN" in captured.err

    def test_chaos_writes_report_file(self, capsys, tmp_path):
        out = tmp_path / "chaos.json"
        rc = main(
            [
                "chaos",
                "--seed",
                "9",
                "--runs",
                "1",
                "--protocol",
                "hdfs",
                "--scale",
                "0.25",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        assert capsys.readouterr().out == ""  # report went to the file
        report = json.loads(out.read_text())
        assert report["protocols"] == ["hdfs"]
        assert report["outcomes"] == {"completed": 1}


class TestServe:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.tenants == 500
        assert args.hours == 48.0
        assert args.checkpoint_every == "6h"
        assert args.seed == 20140901
        assert args.shards == 1
        assert args.protocol == "smarth"
        assert not args.chaos
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--protocol", "nfs"])

    def test_serve_runs_and_reports(self, capsys, tmp_path):
        report = tmp_path / "report.json"
        rc = main(
            [
                "serve",
                "--tenants", "40",
                "--hours", "0.2",
                "--checkpoint-every", "5m",
                "--seed", "3",
                "--report", str(report),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "invariants: OK" in out
        assert "journal digest: " in out
        assert out.splitlines()[0].split()[0] == "class"
        payload = json.loads(report.read_text())
        assert payload["counts"]["tenants"] == 40
        assert set(payload["digests"]) == {"journal", "metrics", "slo"}

    def test_serve_checkpoint_resume_digests_match(self, capsys, tmp_path):
        straight_args = [
            "serve",
            "--tenants", "40",
            "--hours", "0.2",
            "--checkpoint-every", "4m",
            "--seed", "11",
            "--chaos",
        ]
        assert main(straight_args) == 0
        straight = capsys.readouterr().out

        ckpt_dir = tmp_path / "ckpts"
        ckpt_dir.mkdir()
        assert main(straight_args + ["--checkpoint-dir", str(ckpt_dir)]) == 0
        capsys.readouterr()
        checkpoints = sorted(ckpt_dir.glob("ckpt_*.pkl"))
        assert checkpoints

        rc = main(["serve", "--resume", str(checkpoints[0])])
        assert rc == 0
        captured = capsys.readouterr()
        assert "resumed from" in captured.err
        assert captured.out == straight
