"""The classic HDFS small-files regime: per-file RPC overhead dominates.

Formula (1)/(2)'s ``T_n⌈D/B⌉`` term plus create/complete RPCs means many
small files upload far slower than one big file of equal bytes — a
substrate behaviour worth pinning down because SMARTH does nothing for
it (its pipelining needs multiple blocks per file).
"""

import pytest

from repro.cluster import SMALL, build_homogeneous
from repro.config import SimulationConfig
from repro.hdfs import HdfsDeployment
from repro.sim import Environment
from repro.smarth import SmarthDeployment
from repro.units import KB, MB


def build(rpc_latency=20e-3, smarth=False):
    env = Environment()
    cfg = SimulationConfig().with_hdfs(
        block_size=MB, packet_size=64 * KB, namenode_rpc_latency=rpc_latency
    )
    cluster = build_homogeneous(env, SMALL, n_datanodes=9, config=cfg)
    deployment = (
        SmarthDeployment(cluster, enable_replication_monitor=False)
        if smarth
        else HdfsDeployment(cluster, enable_replication_monitor=False)
    )
    return env, deployment


def upload_n(env, deployment, n_files, each):
    client = deployment.client()
    t0 = env.now
    for i in range(n_files):
        env.run(until=env.process(client.put(f"/dir/f{i}", each)))
    return env.now - t0


class TestSmallFiles:
    def test_many_small_slower_than_one_big(self):
        env_a, dep_a = build()
        many = upload_n(env_a, dep_a, n_files=16, each=256 * KB)
        env_b, dep_b = build()
        one = upload_n(env_b, dep_b, n_files=1, each=16 * 256 * KB)
        assert many > one * 1.5

    def test_rpc_latency_drives_small_file_cost(self):
        durations = {}
        for latency in (1e-3, 50e-3):
            env, deployment = build(rpc_latency=latency)
            durations[latency] = upload_n(
                env, deployment, n_files=10, each=128 * KB
            )
        # 10 files x ~3 RPCs x 49 ms ≈ +1.5 s.
        extra = durations[50e-3] - durations[1e-3]
        assert extra == pytest.approx(10 * 3 * 49e-3, rel=0.35)

    def test_smarth_does_not_help_small_files(self):
        """Single-block files leave nothing to pipeline: SMARTH ≈ HDFS."""
        env_h, dep_h = build()
        hdfs = upload_n(env_h, dep_h, n_files=8, each=256 * KB)
        env_s, dep_s = build(smarth=True)
        smarth = upload_n(env_s, dep_s, n_files=8, each=256 * KB)
        assert smarth == pytest.approx(hdfs, rel=0.25)

    def test_all_small_files_replicated(self):
        env, deployment = build()
        upload_n(env, deployment, n_files=12, each=64 * KB)
        env.run(until=env.now + 1)
        nn = deployment.namenode
        for i in range(12):
            assert nn.file_fully_replicated(f"/dir/f{i}")
