"""Pod-partitioned workloads: every executor yields the same timeline."""

import pytest

from repro.config import SimulationConfig
from repro.pool import WorkerFailure
from repro.units import KB, MB
from repro.workloads import (
    PodPlan,
    PodSpec,
    campaign10k,
    run_pods_single_env,
    run_pods_sharded,
)


def small_plan(n_pods=3):
    return PodPlan.regular(
        n_pods=n_pods,
        clients_per_pod=2,
        datanodes_per_pod=4,
        file_bytes=256 * KB,
    )


def small_config():
    return SimulationConfig(seed=7).with_hdfs(
        block_size=128 * KB, packet_size=32 * KB
    )


class TestPlan:
    def test_pod_validation(self):
        with pytest.raises(ValueError):
            PodSpec(index=0, n_clients=0, n_datanodes=4,
                    file_bytes=KB, stagger=0.0)
        with pytest.raises(ValueError):
            PodSpec(index=0, n_clients=1, n_datanodes=0,
                    file_bytes=KB, stagger=0.0)
        with pytest.raises(ValueError):
            PodPlan.regular(0, 1, 1, KB)

    def test_regular_plan_totals(self):
        plan = small_plan(n_pods=3)
        assert plan.n_clients == 6
        assert plan.n_datanodes == 12
        assert [pod.index for pod in plan.pods] == [0, 1, 2]

    def test_shard_assignment_round_robin(self):
        plan = small_plan(n_pods=5)
        groups = plan.shard_assignment(2)
        assert [[pod.index for pod in group] for group in groups] == [
            [0, 2, 4],
            [1, 3],
        ]
        with pytest.raises(ValueError):
            plan.shard_assignment(0)

    def test_campaign10k_full_scale_shape(self):
        plan = campaign10k()
        assert len(plan.pods) == 100
        assert plan.n_clients == 10_000
        assert plan.n_datanodes == 1_000
        assert plan.pods[0].file_bytes == 4 * MB
        assert plan.pods[0].stagger == 0.5

    def test_campaign10k_scale_drops_pods_not_shape(self):
        plan = campaign10k(scale=0.02)
        assert len(plan.pods) == 2
        assert plan.pods[0].n_clients == 100
        assert plan.pods[0].n_datanodes == 10
        assert len(campaign10k(scale=0.001).pods) == 1  # floor of one pod
        with pytest.raises(ValueError):
            campaign10k(scale=0.0)


class TestExecutorEquivalence:
    def test_all_executors_agree_exactly(self):
        """single-env, in-process sharded, and process-pool executors
        produce identical per-client timelines — the shard-invariance
        property the benchmark is built on."""
        plan = small_plan()
        config = small_config()
        baseline = run_pods_single_env(plan, config=config)
        inproc = run_pods_single_env(plan, config=config, shards=2)
        procs = run_pods_sharded(plan, shards=2, config=config)

        assert baseline.executor == "single"
        assert inproc.executor == "sharded-inproc"
        assert procs.executor == "processes"

        assert baseline.timeline  # non-trivial run
        assert inproc.timeline == baseline.timeline
        assert procs.timeline == baseline.timeline
        assert baseline.fully_replicated
        assert inproc.fully_replicated
        assert procs.fully_replicated
        # In-process sharding dispatches the exact same event sequence.
        assert inproc.events_processed == baseline.events_processed
        assert baseline.makespan > 0

    def test_inproc_health_reports_shard_load(self):
        outcome = run_pods_single_env(
            small_plan(), config=small_config(), shards=2
        )
        health = outcome.health
        assert health["shards"] == 2
        assert len(health["shard_events"]) == 2
        assert all(events > 0 for events in health["shard_events"])
        assert sum(health["shard_events"]) == outcome.events_processed

    def test_process_executor_reports_per_shard_events(self):
        outcome = run_pods_sharded(
            small_plan(), shards=3, config=small_config(), jobs=1
        )
        assert outcome.shard_events is not None
        assert len(outcome.shard_events) == 3
        assert outcome.events_processed == sum(outcome.shard_events)

    def test_more_shards_than_pods(self):
        """Empty shard groups are dropped, not run as empty workers."""
        plan = small_plan(n_pods=2)
        outcome = run_pods_sharded(
            plan, shards=4, config=small_config(), jobs=1
        )
        assert len(outcome.shard_events) == 2
        assert len(outcome.timeline) == plan.n_clients

    def test_hdfs_baseline_system_also_supported(self):
        plan = small_plan(n_pods=2)
        config = small_config()
        baseline = run_pods_single_env(plan, system="hdfs", config=config)
        procs = run_pods_sharded(plan, shards=2, system="hdfs",
                                 config=config, jobs=1)
        assert procs.timeline == baseline.timeline

    def test_bytes_moved_accounts_for_replication(self):
        """Single-env outcomes report aggregate NIC bytes; every byte
        sent lands somewhere, and replication moves each file at least
        ``replication`` times."""
        plan = small_plan(n_pods=2)
        config = small_config()
        outcome = run_pods_single_env(plan, config=config)
        sent, received = outcome.bytes_moved
        assert sent == received
        payload = sum(pod.n_clients * pod.file_bytes for pod in plan.pods)
        assert sent >= payload * config.hdfs.replication

    def test_worker_failure_is_named(self, monkeypatch):
        import repro.workloads.sharded as sharded_mod

        def explode(*_args, **_kwargs):
            raise RuntimeError("pod build blew up")

        monkeypatch.setattr(sharded_mod, "_run_pod_group", explode)
        with pytest.raises(WorkerFailure, match="shard0"):
            run_pods_sharded(
                small_plan(n_pods=2), shards=2,
                config=small_config(), jobs=1,
            )


class TestWindowedExecution:
    def test_windowed_matches_merge_timeline(self):
        """Windowed chunks at infinite lookahead replay the exact
        single-env timeline; the health dict shows the barrier work."""
        plan = small_plan()
        config = small_config()
        baseline = run_pods_single_env(plan, config=config)
        windowed = run_pods_single_env(
            plan, config=config, shards=2, windowed=True, window=1.0
        )
        assert windowed.executor == "sharded-windowed"
        assert windowed.timeline == baseline.timeline
        assert windowed.fully_replicated
        assert windowed.bytes_moved == baseline.bytes_moved
        assert windowed.health["window_barriers"] > 0
        assert windowed.health["window_events"] > 0
        assert windowed.health["window_batch_max"] > 0

    def test_threaded_windowed_matches_sequential(self):
        plan = small_plan()
        config = small_config()
        sequential = run_pods_single_env(
            plan, config=config, shards=2, windowed=True, window=1.0
        )
        threaded = run_pods_single_env(
            plan, config=config, shards=2, windowed=True, window=1.0,
            workers=2,
        )
        assert threaded.timeline == sequential.timeline
        assert threaded.fully_replicated
        assert threaded.health["window_workers"] == 2

    def test_windowed_requires_shards(self):
        with pytest.raises(ValueError, match="requires shards"):
            run_pods_single_env(
                small_plan(), config=small_config(), windowed=True
            )
        with pytest.raises(ValueError, match="requires shards"):
            run_pods_single_env(
                small_plan(), config=small_config(), workers=2
            )
