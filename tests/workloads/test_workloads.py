"""Integration tests for scenarios, upload workloads and sweeps."""

import pytest

from repro.config import SimulationConfig
from repro.units import KB, MB
from repro.workloads import (
    compare,
    contention,
    heterogeneous,
    run_upload,
    size_sweep,
    sweep,
    two_rack,
)


def fast_config():
    return SimulationConfig().with_hdfs(block_size=4 * MB, packet_size=256 * KB)


class TestScenarios:
    def test_two_rack_builds(self):
        env, cluster = two_rack("small", throttle_mbps=100).make(fast_config())
        assert len(cluster.datanode_hosts) == 9
        assert len(cluster.network.throttles) == 1

    def test_two_rack_default_has_no_throttle(self):
        _, cluster = two_rack("small").make(fast_config())
        assert len(cluster.network.throttles) == 0

    def test_contention_marks_slow_nodes(self):
        _, cluster = contention("small", n_slow=3, slow_mbps=50).make(fast_config())
        assert len(cluster.network.throttles) == 3

    def test_contention_validates_n_slow(self):
        with pytest.raises(ValueError):
            contention("small", n_datanodes=4, n_slow=5)

    def test_heterogeneous_mix(self):
        _, cluster = heterogeneous().make(fast_config())
        names = sorted(n.instance.name for n in cluster.datanode_hosts)
        assert names == ["large"] * 3 + ["medium"] * 3 + ["small"] * 3

    def test_scenarios_are_independent(self):
        scenario = two_rack("small", throttle_mbps=100)
        env1, c1 = scenario.make(fast_config())
        env2, c2 = scenario.make(fast_config())
        assert env1 is not env2
        assert c1.datanode_hosts[0] is not c2.datanode_hosts[0]


class TestRunUpload:
    def test_hdfs_upload(self):
        outcome = run_upload(
            two_rack("small"), "hdfs", 8 * MB, config=fast_config()
        )
        assert outcome.fully_replicated
        assert outcome.system == "hdfs"
        assert outcome.result.n_blocks == 2

    def test_smarth_upload(self):
        outcome = run_upload(
            two_rack("small"), "smarth", 8 * MB, config=fast_config()
        )
        assert outcome.fully_replicated
        assert outcome.system == "smarth"

    def test_size_strings_accepted(self):
        outcome = run_upload(
            two_rack("small"), "hdfs", "8MB", config=fast_config()
        )
        assert outcome.result.size == 8 * MB

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            run_upload(two_rack("small"), "nfs", MB)

    def test_fault_hook_applied(self):
        def hook(injector):
            injector.kill_busy_at(at=0.05)

        outcome = run_upload(
            two_rack("small"),
            "hdfs",
            16 * MB,
            config=fast_config(),
            fault_hook=hook,
        )
        assert outcome.injected_faults
        assert outcome.fully_replicated
        assert outcome.result.recoveries >= 1

    def test_compare_returns_improvement(self):
        hdfs, smarth, improvement = compare(
            two_rack("small", throttle_mbps=50), 24 * MB, config=fast_config()
        )
        assert hdfs.system == "hdfs"
        assert smarth.system == "smarth"
        assert improvement == pytest.approx(
            (hdfs.duration / smarth.duration - 1) * 100
        )
        assert improvement > 0


class TestSweeps:
    def test_throttle_sweep_rows(self):
        rows = sweep(
            scenario_for=lambda t: two_rack("small", throttle_mbps=t),
            xs=[50, 150],
            size=16 * MB,
            config=fast_config(),
            label_for=lambda t: f"{t}Mbps",
        )
        assert [r.label for r in rows] == ["50Mbps", "150Mbps"]
        assert rows[0].hdfs_seconds > rows[1].hdfs_seconds

    def test_size_sweep_monotone(self):
        rows = size_sweep(
            two_rack("small"), [8 * MB, 16 * MB, 32 * MB], config=fast_config()
        )
        times = [r.hdfs_seconds for r in rows]
        assert times == sorted(times)

    def test_sweep_improvement_ordering_under_throttle(self):
        """The Figure 9 trend on a scaled-down workload."""
        rows = sweep(
            scenario_for=lambda t: two_rack("small", throttle_mbps=t),
            xs=[25, 150],
            size=48 * MB,
            config=fast_config(),
        )
        assert rows[0].improvement > rows[1].improvement
