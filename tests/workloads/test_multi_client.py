"""Integration tests for concurrent multi-client uploads."""

import pytest

from repro.config import SimulationConfig
from repro.units import KB, MB
from repro.workloads import run_concurrent_uploads, run_upload, two_rack


def fast_config():
    return SimulationConfig().with_hdfs(block_size=4 * MB, packet_size=256 * KB)


class TestConcurrentUploads:
    def test_two_clients_both_complete(self):
        scenario = two_rack("small", n_extra_clients=1)
        outcome = run_concurrent_uploads(
            scenario, "hdfs", [16 * MB, 16 * MB], config=fast_config()
        )
        assert outcome.fully_replicated
        assert len(outcome.results) == 2
        assert all(r.n_blocks == 4 for r in outcome.results)

    def test_smarth_two_clients(self):
        scenario = two_rack("small", n_extra_clients=1)
        outcome = run_concurrent_uploads(
            scenario, "smarth", [16 * MB, 16 * MB], config=fast_config()
        )
        assert outcome.fully_replicated
        # Each client respects its own pipeline cap.
        assert all(r.max_concurrent_pipelines <= 3 for r in outcome.results)

    def test_contention_slows_each_client(self):
        """Two concurrent writers are each slower than a solo writer."""
        solo = run_upload(
            two_rack("small"), "hdfs", 32 * MB, config=fast_config()
        )
        pair = run_concurrent_uploads(
            two_rack("small", n_extra_clients=1),
            "hdfs",
            [32 * MB, 32 * MB],
            config=fast_config(),
        )
        for result in pair.results:
            assert result.duration > solo.duration * 1.05

    def test_parallelism_beats_serial_makespan(self):
        """Two concurrent 32 MB uploads finish faster than 2x solo time.

        The datanode fan-out gives real parallelism even though the
        clients share rack bandwidth.
        """
        solo = run_upload(
            two_rack("small"), "hdfs", 32 * MB, config=fast_config()
        )
        pair = run_concurrent_uploads(
            two_rack("small", n_extra_clients=1),
            "hdfs",
            [32 * MB, 32 * MB],
            config=fast_config(),
        )
        assert pair.makespan < solo.duration * 2.0

    def test_staggered_starts(self):
        scenario = two_rack("small", n_extra_clients=1)
        outcome = run_concurrent_uploads(
            scenario,
            "hdfs",
            [8 * MB, 8 * MB],
            config=fast_config(),
            stagger=5.0,
        )
        assert outcome.fully_replicated
        starts = sorted(r.start for r in outcome.results)
        assert starts[1] - starts[0] == pytest.approx(5.0, abs=0.1)

    def test_requires_enough_hosts(self):
        with pytest.raises(ValueError, match="extra client hosts"):
            run_concurrent_uploads(
                two_rack("small"), "hdfs", [MB, MB], config=fast_config()
            )

    def test_empty_sizes_rejected(self):
        with pytest.raises(ValueError):
            run_concurrent_uploads(two_rack("small"), "hdfs", [])

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError):
            run_concurrent_uploads(two_rack("small"), "zfs", [MB])

    def test_resultless_upload_names_the_client(self, monkeypatch):
        """A client whose put() yields no WriteResult raises, not a None hole."""
        from repro.hdfs.client.data_streamer import HdfsClient

        original = HdfsClient.put

        def broken_put(self, path, size):
            if path.endswith("client1.bin"):
                yield self.env.timeout(0.1)
                return None  # simulates a put that finished without a result
            return (yield from original(self, path, size))

        monkeypatch.setattr(HdfsClient, "put", broken_put)
        with pytest.raises(RuntimeError, match=r"client 1 .*failed client indexes: \[1\]"):
            run_concurrent_uploads(
                two_rack("small", n_extra_clients=1),
                "hdfs",
                [MB, MB],
                config=fast_config(),
            )

    def test_aggregate_metrics(self):
        scenario = two_rack("small", n_extra_clients=2)
        outcome = run_concurrent_uploads(
            scenario, "hdfs", [8 * MB] * 3, config=fast_config()
        )
        assert outcome.total_bytes == 24 * MB
        assert outcome.aggregate_throughput > 0
        assert outcome.makespan >= max(r.duration for r in outcome.results)
