"""Unit tests for configuration dataclasses."""

import pytest

from repro.config import HdfsConfig, NetworkConfig, SimulationConfig, SmarthConfig
from repro.units import KB, MB


class TestHdfsConfig:
    def test_defaults_match_hadoop_1x(self):
        cfg = HdfsConfig()
        assert cfg.block_size == 64 * MB
        assert cfg.packet_size == 64 * KB
        assert cfg.replication == 3
        assert cfg.heartbeat_interval == 3.0

    def test_packets_per_block(self):
        cfg = HdfsConfig(block_size=64 * MB, packet_size=64 * KB)
        assert cfg.packets_per_block == 1024

    def test_packets_per_block_rounds_up(self):
        cfg = HdfsConfig(block_size=100, packet_size=64)
        assert cfg.packets_per_block == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"block_size": 0},
            {"packet_size": 0},
            {"packet_size": 128 * MB},
            {"replication": 0},
            {"namenode_rpc_latency": -1},
            {"heartbeat_interval": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            HdfsConfig(**kwargs)


class TestSmarthConfig:
    def test_defaults_match_paper(self):
        cfg = SmarthConfig()
        assert cfg.local_opt_threshold == 0.8
        assert cfg.enable_global_opt and cfg.enable_local_opt
        assert cfg.max_pipelines is None

    def test_pipeline_cap_rule(self):
        cfg = SmarthConfig()
        assert cfg.pipeline_cap(9, 3) == 3  # the paper's num/repli
        assert cfg.pipeline_cap(10, 3) == 3
        assert cfg.pipeline_cap(2, 3) == 1  # floor at one pipeline

    def test_pipeline_cap_override(self):
        cfg = SmarthConfig(max_pipelines=5)
        assert cfg.pipeline_cap(9, 3) == 5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"local_opt_threshold": -0.1},
            {"local_opt_threshold": 1.1},
            {"max_pipelines": 0},
            {"datanode_buffer": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SmarthConfig(**kwargs)


class TestNetworkConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkConfig(link_latency=-1)
        with pytest.raises(ValueError):
            NetworkConfig(connection_setup=-1)


class TestSimulationConfig:
    def test_with_overrides_are_copies(self):
        base = SimulationConfig()
        tweaked = base.with_hdfs(replication=2).with_smarth(max_pipelines=4)
        assert base.hdfs.replication == 3
        assert tweaked.hdfs.replication == 2
        assert tweaked.smarth.max_pipelines == 4
        assert base.smarth.max_pipelines is None

    def test_with_network(self):
        cfg = SimulationConfig().with_network(link_latency=0.5)
        assert cfg.network.link_latency == 0.5

    def test_frozen(self):
        cfg = SimulationConfig()
        with pytest.raises(AttributeError):
            cfg.seed = 1
