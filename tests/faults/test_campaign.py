"""Fixed-seed chaos campaign: the pytest face of `python -m repro chaos`.

Runs a deterministic campaign (seed 7, 20 randomized schedules, both
protocols) and asserts the report the CLI would print: every run green,
every invariant exercised at least once, every fault kind (including the
compound revive/unthrottle follow-ups) present, and byte-identical JSON
across repeated executions.
"""

from __future__ import annotations

import pytest

from repro.analysis.trace import Journal
from repro.faults import (
    INVARIANT_NAMES,
    ChaosSchedule,
    FaultSpec,
    generate_schedule,
    report_json,
    run_campaign,
    run_schedule,
)
from repro.faults.campaign import CHAOS_BLOCK_SIZE

CAMPAIGN_SEED = 7
CAMPAIGN_RUNS = 20
CAMPAIGN_SCALE = 0.5


@pytest.fixture(scope="module")
def campaign() -> dict:
    return run_campaign(
        CAMPAIGN_SEED,
        CAMPAIGN_RUNS,
        protocols=("hdfs", "smarth"),
        scale=CAMPAIGN_SCALE,
    )


class TestCampaignReport:
    def test_all_runs_green(self, campaign: dict) -> None:
        assert campaign["all_green"], report_json(campaign)
        assert campaign["outcomes"] == {
            "completed": CAMPAIGN_RUNS * 2
        }, campaign["outcomes"]

    def test_every_invariant_checked_at_least_once(self, campaign: dict) -> None:
        totals = campaign["invariant_totals"]
        assert set(totals) == set(INVARIANT_NAMES)
        for name in INVARIANT_NAMES:
            assert totals[name]["checks"] >= 1, f"{name} never checked"
            assert totals[name]["violations"] == 0, f"{name} violated"

    def test_fault_kind_coverage(self, campaign: dict) -> None:
        """The generator must exercise kills, kill-busy, throttles and the
        compound follow-ups (revive / unthrottle) within the campaign."""
        kinds = campaign["fault_kinds"]
        for kind in ("kill", "kill_busy", "throttle", "unthrottle", "revive"):
            assert kinds.get(kind, 0) >= 1, f"no {kind} fault generated"

    def test_report_carries_schedules_and_verdicts(self, campaign: dict) -> None:
        assert len(campaign["runs_detail"]) == CAMPAIGN_RUNS
        for index, run in enumerate(campaign["runs_detail"]):
            assert run["subseed"] == CAMPAIGN_SEED + index
            assert run["schedule"]["faults"], "schedule with no faults"
            assert {v["protocol"] for v in run["verdicts"]} == {
                "hdfs",
                "smarth",
            }


class TestDeterminism:
    def test_same_seed_same_schedule(self) -> None:
        assert generate_schedule(123) == generate_schedule(123)
        assert generate_schedule(123) != generate_schedule(124)

    def test_single_run_report_is_byte_identical(self) -> None:
        first = run_campaign(11, 2, protocols=("smarth",), scale=0.25)
        second = run_campaign(11, 2, protocols=("smarth",), scale=0.25)
        assert report_json(first) == report_json(second)

    def test_subseed_repro_regenerates_exact_schedule(self, campaign: dict) -> None:
        """`--seed <subseed> --runs 1` (the repro command attached to any
        red run) reproduces that run's schedule exactly."""
        probe = campaign["runs_detail"][3]
        rerun = run_campaign(
            probe["subseed"], 1, protocols=("hdfs",), scale=CAMPAIGN_SCALE
        )
        assert rerun["runs_detail"][0]["schedule"] == probe["schedule"]


class TestScheduleGeneration:
    def test_kill_budget_below_replication(self) -> None:
        for seed in range(50):
            schedule = generate_schedule(seed)
            kills = sum(
                1
                for f in schedule.faults
                if f.kind in ("kill", "kill_busy")
            )
            assert kills <= 2, f"seed {seed}: {kills} kills > budget"

    def test_size_floor_spans_multiple_blocks(self) -> None:
        for seed in range(20):
            schedule = generate_schedule(seed, scale=0.01)
            assert schedule.size >= 2 * CHAOS_BLOCK_SIZE

    def test_faults_sorted_and_named_nodes_exist(self) -> None:
        for seed in range(50):
            schedule = generate_schedule(seed)
            ats = [f.at for f in schedule.faults]
            assert ats == sorted(ats)
            valid = {f"dn{i}" for i in range(schedule.n_datanodes)}
            for fault in schedule.faults:
                if fault.datanode is not None:
                    assert fault.datanode in valid

    def test_unknown_fault_kind_rejected(self) -> None:
        spec = FaultSpec("meteor", 1.0)
        with pytest.raises(ValueError):
            spec.apply(None)

    def test_unknown_protocol_rejected(self) -> None:
        schedule = generate_schedule(1)
        with pytest.raises(ValueError):
            run_schedule(schedule, "nfs")
        with pytest.raises(ValueError):
            run_campaign(1, 1, protocols=("nfs",))


class TestInvariantMonitorUnit:
    """Drive the journal-stream invariants directly with synthetic events."""

    @staticmethod
    def _monitor():
        from repro.cluster import SMALL, build_homogeneous
        from repro.config import SimulationConfig
        from repro.faults import InvariantMonitor
        from repro.hdfs import HdfsDeployment
        from repro.sim import Environment

        env = Environment()
        cluster = build_homogeneous(
            env, SMALL, n_datanodes=6, config=SimulationConfig()
        )
        deployment = HdfsDeployment(cluster)
        return deployment, InvariantMonitor(deployment)

    def test_generation_regression_is_flagged(self) -> None:
        deployment, monitor = self._monitor()
        journal: Journal = deployment.journal
        journal.emit(0.0, "pipeline_open", "block:1", generation=2)
        journal.emit(1.0, "pipeline_recovered", "block:1", generation=1)
        record = monitor.records["generation_monotone"]
        assert record.checks == 2
        assert len(record.violations) == 1

    def test_pipeline_cap_overflow_is_flagged(self) -> None:
        deployment, monitor = self._monitor()
        journal: Journal = deployment.journal
        assert monitor.pipeline_cap == 2  # 6 datanodes / replication 3
        for bid in range(3):
            journal.emit(0.0, "pipeline_open", f"block:{bid}", client="c")
        record = monitor.records["pipeline_cap"]
        assert len(record.violations) == 1
        journal.emit(1.0, "pipeline_done", "block:0", client="c")
        journal.emit(1.0, "pipeline_done", "block:1", client="c")
        journal.emit(2.0, "pipeline_open", "block:3", client="c")
        assert len(record.violations) == 1  # back under the cap

    def test_recovery_outcome_rejects_hang_and_crash(self) -> None:
        for outcome, bad in (("completed", False), ("hang", True), ("crash", True)):
            _, monitor = self._monitor()
            monitor.stop()
            monitor.finalize(outcome)
            record = monitor.records["recovery_outcome"]
            assert bool(record.violations) is bad, outcome

    def test_finalize_is_idempotent(self) -> None:
        _, monitor = self._monitor()
        monitor.stop()
        monitor.finalize("completed")
        checks = monitor.records["recovery_outcome"].checks
        monitor.finalize("completed")
        assert monitor.records["recovery_outcome"].checks == checks


class TestLegacyLoopCampaign:
    """Regression: the chaos invariants hold with coalescing disabled.

    ``coalesce_packets=1`` forces every block through the per-packet
    legacy loop, so this campaign exercises the exact recovery paths the
    packet train bypasses (mid-stream error races, requote handling)
    under the same seed-driven fault schedules."""

    SEED = 7
    RUNS = 4
    SCALE = 0.25

    @pytest.fixture(scope="class")
    def legacy_campaign(self, request) -> dict:
        original = ChaosSchedule.config
        patched = lambda self: original(self).with_hdfs(coalesce_packets=1)
        ChaosSchedule.config = patched
        request.addfinalizer(
            lambda: setattr(ChaosSchedule, "config", original)
        )
        return run_campaign(
            self.SEED, self.RUNS, protocols=("hdfs", "smarth"),
            scale=self.SCALE,
        )

    def test_all_green_without_trains(self, legacy_campaign: dict) -> None:
        assert legacy_campaign["all_green"], report_json(legacy_campaign)
        assert legacy_campaign["outcomes"] == {"completed": self.RUNS * 2}

    def test_no_invariant_violations(self, legacy_campaign: dict) -> None:
        for name, tally in legacy_campaign["invariant_totals"].items():
            assert tally["violations"] == 0, f"{name} violated"


def test_traced_run_schedule_report_unchanged(tmp_path) -> None:
    """run_schedule with tracing enabled writes a trace file and returns
    the byte-identical verdict (the tracer is a passive observer)."""
    import json as _json

    schedule = generate_schedule(11, scale=0.25)
    plain = run_schedule(schedule, "hdfs")
    trace_path = tmp_path / "run.json"
    traced = run_schedule(schedule, "hdfs", trace_path=str(trace_path))
    assert plain == traced
    doc = _json.loads(trace_path.read_text())
    assert any(e.get("ph") == "X" for e in doc["traceEvents"])


def test_campaign_creates_missing_trace_dir(tmp_path) -> None:
    """--trace-dir pointing at a directory that doesn't exist yet works."""
    trace_dir = tmp_path / "traces" / "nested"
    run_campaign(5, 1, protocols=("hdfs",), scale=0.25, trace_dir=str(trace_dir))
    assert (trace_dir / "run000-hdfs.json").exists()


def test_schedule_round_trips_to_dict() -> None:
    schedule = generate_schedule(42)
    spec = schedule.to_dict()
    assert spec["seed"] == 42
    assert isinstance(schedule, ChaosSchedule)
    assert len(spec["faults"]) == len(schedule.faults)
