"""Unit tests for the fault injector."""

import pytest

from repro.cluster import SMALL, build_homogeneous
from repro.config import SimulationConfig
from repro.faults import FaultInjector
from repro.hdfs import HdfsDeployment
from repro.sim import Environment
from repro.units import KB, MB


@pytest.fixture()
def setup():
    env = Environment()
    cfg = SimulationConfig().with_hdfs(block_size=2 * MB, packet_size=64 * KB)
    cluster = build_homogeneous(env, SMALL, n_datanodes=5, config=cfg)
    deployment = HdfsDeployment(cluster)
    return env, deployment


class TestKillAt:
    def test_kill_at_marks_dead(self, setup):
        env, deployment = setup
        injector = FaultInjector(deployment)
        injector.kill_at("dn0", at=2.0)
        env.run(until=5)
        assert not deployment.datanode("dn0").node.alive
        assert injector.killed() == ("dn0",)
        assert injector.events[0].at == pytest.approx(2.0)

    def test_kill_unknown_name_raises_early(self, setup):
        _, deployment = setup
        injector = FaultInjector(deployment)
        with pytest.raises(KeyError):
            injector.kill_at("ghost", at=1.0)

    def test_kill_already_dead_is_noop(self, setup):
        env, deployment = setup
        deployment.datanode("dn0").kill()
        injector = FaultInjector(deployment)
        injector.kill_at("dn0", at=1.0)
        env.run(until=5)
        assert injector.killed() == ()


class TestKillBusy:
    def test_noop_when_nothing_active(self, setup):
        env, deployment = setup
        injector = FaultInjector(deployment)
        injector.kill_busy_at(at=1.0)
        env.run(until=5)
        assert injector.killed() == ()
        assert injector.events[0].kind == "kill_busy_noop"

    def test_kills_active_node_during_upload(self, setup):
        env, deployment = setup
        injector = FaultInjector(deployment)
        injector.kill_busy_at(at=0.05)
        client = deployment.client()
        result = env.run(until=env.process(client.put("/f", 8 * MB)))
        assert len(injector.killed()) == 1
        assert result.recoveries >= 1

    def test_predicate_filters_victims(self, setup):
        env, deployment = setup
        injector = FaultInjector(deployment)
        injector.kill_busy_at(at=0.05, predicate=lambda n: n == "dn3")
        client = deployment.client()
        env.run(until=env.process(client.put("/f", 8 * MB)))
        assert injector.killed() in ((), ("dn3",))


class TestEagerValidation:
    """Every scheduler must reject unknown datanode names at call time,
    not when the fault fires (regression: revive_at/unthrottle_at used
    to fail silently inside the injection process)."""

    def test_revive_unknown_name_raises_early(self, setup):
        _, deployment = setup
        injector = FaultInjector(deployment)
        with pytest.raises(KeyError):
            injector.revive_at("ghost", at=1.0)

    def test_unthrottle_unknown_name_raises_early(self, setup):
        _, deployment = setup
        injector = FaultInjector(deployment)
        with pytest.raises(KeyError):
            injector.unthrottle_at("ghost", at=1.0)

    def test_throttle_unknown_name_raises_early(self, setup):
        _, deployment = setup
        injector = FaultInjector(deployment)
        with pytest.raises(KeyError):
            injector.throttle_at("ghost", 50.0, at=1.0)


class TestKillBusyEdgeCases:
    def test_predicate_filtering_everything_is_noop(self, setup):
        env, deployment = setup
        injector = FaultInjector(deployment)
        injector.kill_busy_at(at=0.05, predicate=lambda n: False)
        client = deployment.client()
        env.run(until=env.process(client.put("/f", 8 * MB)))
        assert injector.killed() == ()
        assert any(e.kind == "kill_busy_noop" for e in injector.events)

    def test_pick_beyond_candidates_clamps_to_last(self, setup):
        env, deployment = setup
        injector = FaultInjector(deployment)
        injector.kill_busy_at(at=0.05, pick=999)
        client = deployment.client()
        result = env.run(until=env.process(client.put("/f", 8 * MB)))
        assert len(injector.killed()) == 1
        assert result.recoveries >= 1

    def test_double_kill_is_idempotent(self, setup):
        env, deployment = setup
        injector = FaultInjector(deployment)
        injector.kill_at("dn0", at=1.0)
        injector.kill_at("dn0", at=2.0)
        env.run(until=5)
        assert injector.killed() == ("dn0",)
        assert not deployment.datanode("dn0").node.alive


class TestRevive:
    def test_revive_restores_liveness(self, setup):
        env, deployment = setup
        injector = FaultInjector(deployment)
        injector.kill_at("dn0", at=1.0)
        injector.revive_at("dn0", at=100.0)
        dead_after = deployment.namenode.datanodes.dead_after
        env.run(until=1.0 + dead_after * 2)
        assert "dn0" not in deployment.namenode.datanodes.live_datanodes()
        env.run(until=110)
        assert deployment.datanode("dn0").node.alive
        assert "dn0" in deployment.namenode.datanodes.live_datanodes()

    def test_revive_alive_node_is_noop(self, setup):
        env, deployment = setup
        injector = FaultInjector(deployment)
        injector.revive_at("dn0", at=1.0)
        env.run(until=5)
        assert all(e.kind != "revive" for e in injector.events)
