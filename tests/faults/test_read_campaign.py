"""Fixed-seed degraded-read chaos campaign.

Ingest a file undisturbed, then kill/throttle replica holders while
concurrent readers stream it back through the bounded serve queue.  The
campaign must stay green: every read completes, ``read_durability``
never sees short data, and the report is byte-identical per seed.
"""

from __future__ import annotations

import pytest

from repro.faults import (
    INVARIANT_NAMES,
    READ_INVARIANT_NAMES,
    generate_read_schedule,
    report_json,
    run_read_campaign,
    run_read_schedule,
)
from repro.faults.campaign import READ_FANOUT

CAMPAIGN_SEED = 1234
CAMPAIGN_RUNS = 8
CAMPAIGN_SCALE = 0.5


@pytest.fixture(scope="module")
def campaign() -> dict:
    return run_read_campaign(
        CAMPAIGN_SEED,
        CAMPAIGN_RUNS,
        protocols=("hdfs", "smarth"),
        scale=CAMPAIGN_SCALE,
    )


class TestReadCampaignReport:
    def test_all_runs_green(self, campaign: dict) -> None:
        assert campaign["all_green"], report_json(campaign)
        assert campaign["outcomes"] == {
            "completed": CAMPAIGN_RUNS * 2
        }, campaign["outcomes"]

    def test_read_durability_exercised(self, campaign: dict) -> None:
        totals = campaign["invariant_totals"]
        assert set(totals) == set(INVARIANT_NAMES + READ_INVARIANT_NAMES)
        durability = totals["read_durability"]
        # Every reader checks in once per block of every run.
        assert durability["checks"] > CAMPAIGN_RUNS * 2 * READ_FANOUT
        assert durability["violations"] == 0

    def test_kills_actually_landed(self, campaign: dict) -> None:
        assert campaign["fault_kinds"].get("kill", 0) >= 1
        injected = [
            event["kind"]
            for run in campaign["runs_detail"]
            for verdict in run["verdicts"]
            for event in verdict["injected"]
        ]
        assert "kill" in injected

    def test_reads_complete_in_full(self, campaign: dict) -> None:
        for run in campaign["runs_detail"]:
            for verdict in run["verdicts"]:
                assert len(verdict["reads"]) == READ_FANOUT
                for read in verdict["reads"]:
                    assert read["duration"] > 0
                    assert read["sources"]

    def test_report_deterministic(self, campaign: dict) -> None:
        again = run_read_campaign(
            CAMPAIGN_SEED,
            CAMPAIGN_RUNS,
            protocols=("hdfs", "smarth"),
            scale=CAMPAIGN_SCALE,
        )
        assert report_json(campaign) == report_json(again)


class TestReadSchedule:
    def test_schedule_deterministic_per_seed(self) -> None:
        assert generate_read_schedule(42) == generate_read_schedule(42)
        assert generate_read_schedule(42) != generate_read_schedule(43)

    def test_single_schedule_verdict_shape(self) -> None:
        schedule = generate_read_schedule(99, scale=0.5)
        verdict = run_read_schedule(schedule, "hdfs")
        assert verdict["protocol"] == "hdfs"
        assert verdict["outcome"] == "completed"
        assert verdict["ok"], verdict["violations"]
        assert "read_durability" in verdict["invariants"]
