"""End-to-end property-based tests: invariants over arbitrary configs.

These are the strongest checks in the suite: for random file sizes,
packet sizes, replication factors and cluster shapes, both protocols
must deliver exactly-once, fully-replicated data — and the flow of bytes
through NICs and disks must balance.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import SMALL, build_homogeneous
from repro.config import SimulationConfig
from repro.hdfs import HdfsDeployment
from repro.sim import Environment
from repro.smarth import SmarthDeployment
from repro.units import KB, MB


def run_upload_with(
    system: str,
    size: int,
    n_datanodes: int,
    replication: int,
    packet_kb: int,
    seed: int,
    throttle: float | None = None,
):
    env = Environment()
    cfg = SimulationConfig(seed=seed).with_hdfs(
        block_size=MB,
        packet_size=packet_kb * KB,
        replication=replication,
    )
    cluster = build_homogeneous(env, SMALL, n_datanodes=n_datanodes, config=cfg)
    if throttle:
        cluster.throttle_rack_boundary(throttle)
    deployment = (
        SmarthDeployment(cluster, enable_replication_monitor=False)
        if system == "smarth"
        else HdfsDeployment(cluster, enable_replication_monitor=False)
    )
    client = deployment.client()
    result = env.run(until=env.process(client.put("/f", size)))
    env.run(until=env.now + 2)  # drain trailing control messages
    return env, cluster, deployment, result


SYSTEMS = st.sampled_from(["hdfs", "smarth"])


@given(
    system=SYSTEMS,
    size=st.integers(min_value=1 * KB, max_value=6 * MB),
    n_datanodes=st.integers(min_value=3, max_value=9),
    replication=st.integers(min_value=1, max_value=3),
    packet_kb=st.sampled_from([16, 64, 256]),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=25, deadline=None)
def test_upload_invariants(system, size, n_datanodes, replication, packet_kb, seed):
    """Core invariants for any fault-free upload, either system."""
    env, cluster, deployment, result = run_upload_with(
        system, size, n_datanodes, replication, packet_kb, seed
    )
    nn = deployment.namenode

    # 1. The file completed and is fully replicated.
    assert nn.file_fully_replicated("/f")
    assert result.size == size

    # 2. Every finalized replica holds exactly the block's bytes.
    inode = nn.namespace.get("/f")
    assert inode.size == size
    for block in inode.blocks:
        info = nn.blocks.info(block.block_id)
        finalized = [r for r in info.replicas.values() if r.finalized]
        assert len(finalized) == replication
        for replica in finalized:
            assert replica.bytes_confirmed == block.size

    # 3. Byte conservation: datanode disks hold size * replication.
    disk_bytes = sum(n.disk.bytes_written for n in cluster.datanode_hosts)
    assert disk_bytes == size * replication

    # 4. The client transmitted the file exactly once (no duplicates,
    #    no loss) — NIC egress equals the file size.
    assert cluster.client_host.nic.bytes_sent == size

    # 5. Network conservation: every replica beyond the first travelled
    #    one inter-datanode hop.
    dn_sent = sum(n.nic.bytes_sent for n in cluster.datanode_hosts)
    assert dn_sent == size * (replication - 1)


@given(
    size=st.integers(min_value=3 * MB, max_value=8 * MB),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=15, deadline=None)
def test_smarth_never_slower_than_hdfs_under_throttle(size, seed):
    """With a throttled boundary, SMARTH wins for any multi-block file.

    (Single-block files are excluded: with nothing to overlap, SMARTH is
    HDFS plus an FNFA — a few control messages slower, by design.)

    Margin: at the 3-block minimum the overlap win is small enough that
    SMARTH's fixed control overhead (~one 64 KB packet time at 25 Mbps)
    can show through, up to ~2.5% of the total; 5% bounds that without
    masking a real regression on larger files.
    """
    durations = {}
    for system in ("hdfs", "smarth"):
        _, _, _, result = run_upload_with(
            system, size, 9, 3, 64, seed, throttle=25
        )
        durations[system] = result.duration
    assert durations["smarth"] <= durations["hdfs"] * 1.05


@given(
    system=SYSTEMS,
    size=st.integers(min_value=64 * KB, max_value=3 * MB),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=15, deadline=None)
def test_determinism(system, size, seed):
    """Identical configs produce bit-identical outcomes."""
    a = run_upload_with(system, size, 6, 3, 64, seed)[3]
    b = run_upload_with(system, size, 6, 3, 64, seed)[3]
    assert a.duration == b.duration
    assert a.pipelines == b.pipelines
