"""Unit tests for the rack-aware topology."""

import pytest

from repro.net import (
    DISTANCE_OFF_RACK,
    DISTANCE_SAME_NODE,
    DISTANCE_SAME_RACK,
    Topology,
)


@pytest.fixture()
def topo():
    return Topology.from_rack_map(
        {"rack0": ["a", "b", "c"], "rack1": ["d", "e"]}
    )


class TestConstruction:
    def test_from_rack_map(self, topo):
        assert topo.racks == ("rack0", "rack1")
        assert topo.hosts == ("a", "b", "c", "d", "e")

    def test_duplicate_host_rejected(self, topo):
        with pytest.raises(ValueError):
            topo.add_host("a", "rack1")

    def test_empty_rack_name_rejected(self):
        with pytest.raises(ValueError):
            Topology().add_rack("")

    def test_add_rack_idempotent(self):
        topo = Topology()
        topo.add_rack("r")
        topo.add_rack("r")
        assert topo.racks == ("r",)

    def test_contains_and_len(self, topo):
        assert "a" in topo
        assert "zz" not in topo
        assert len(topo) == 5


class TestQueries:
    def test_rack_of(self, topo):
        assert topo.rack_of("a") == "rack0"
        assert topo.rack_of("e") == "rack1"

    def test_rack_of_unknown_host(self, topo):
        with pytest.raises(KeyError):
            topo.rack_of("nope")

    def test_hosts_in_rack(self, topo):
        assert topo.hosts_in_rack("rack1") == ("d", "e")

    def test_hosts_in_unknown_rack(self, topo):
        with pytest.raises(KeyError):
            topo.hosts_in_rack("rack9")

    def test_same_rack(self, topo):
        assert topo.same_rack("a", "b")
        assert not topo.same_rack("a", "d")

    def test_distance_same_node(self, topo):
        assert topo.distance("a", "a") == DISTANCE_SAME_NODE

    def test_distance_same_rack(self, topo):
        assert topo.distance("a", "b") == DISTANCE_SAME_RACK

    def test_distance_off_rack(self, topo):
        assert topo.distance("a", "d") == DISTANCE_OFF_RACK

    def test_distance_unknown_host(self, topo):
        with pytest.raises(KeyError):
            topo.distance("nope", "nope")

    def test_remote_rack_hosts(self, topo):
        assert topo.remote_rack_hosts("a") == ("d", "e")
        assert topo.remote_rack_hosts("d") == ("a", "b", "c")

    def test_graph_copy_is_independent(self, topo):
        g = topo.graph_copy()
        g.remove_node("host:a")
        assert "a" in topo
