"""Regression: throttle changes that leave a flow's effective rate
unchanged must not re-quote that flow's channels.

``Network._requote_in_flight`` computes every live pair's new rate in one
batch pass and skips channels whose flows are all unaffected — a no-op
``Channel.preempt`` would walk the FIFO and could nudge a
mid-transmission quote by an ulp re-splitting the bytes at an unchanged
rate.  These tests pin the skip (via the ``requotes_skipped`` counter),
the untouched flow's bit-exact completion quote, and the still-working
re-quote for the flow the rule *does* hit.
"""

import pytest

from repro.cluster.instance import InstanceType
from repro.cluster.node import Node
from repro.config import NetworkConfig
from repro.net import Network, NodeThrottle, Topology
from repro.sim import Environment
from repro.units import MB, mbps


@pytest.fixture()
def env():
    return Environment()


def make_quad(env):
    """Four nodes, two disjoint flows (a->b, c->d), requote mode on."""
    itype = InstanceType("t", 1, 1, mbps(100), mbps(10000), mbps(10000))
    topo = Topology()
    nodes = []
    for name in "abcd":
        node = Node(env, name, itype, rack="rack0")
        topo.add_host(name, "rack0")
        nodes.append(node)
    net = Network(env, topo, config=NetworkConfig(requote_in_flight=True))
    return (net, *nodes)


def test_unrelated_rule_change_skips_untouched_flow(env):
    net, a, b, c, d = make_quad(env)
    size = 10 * MB
    quotes = {}

    def scenario():
        first = env.process(net.transfer(a, b, size))
        second = env.process(net.transfer(c, d, size))
        yield env.timeout(0.1)
        # a->b's reservations as quoted before the rule change.
        quotes["ab"] = [
            (res.start, res.end, res.rate)
            for res in a.nic.egress._in_flight + b.nic.ingress._in_flight
        ]
        net.throttles.add(NodeThrottle("d", mbps(10)))
        # Bit-exact: the untouched flow's quotes did not move at all.
        assert [
            (res.start, res.end, res.rate)
            for res in a.nic.egress._in_flight + b.nic.ingress._in_flight
        ] == quotes["ab"]
        yield first
        quotes["ab_done"] = env.now
        yield second

    env.run(until=env.process(scenario()))
    # a->b finished at the original 100 Mbps quote, c->d was re-quoted:
    # 0.1s at 100 Mbps, the remaining bytes at 10 Mbps.
    assert quotes["ab_done"] == pytest.approx(
        size / mbps(100) + net.config.link_latency
    )
    sent = 0.1 * mbps(100)
    assert env.now == pytest.approx(
        0.1 + (size - sent) / mbps(10) + net.config.link_latency
    )
    # a->b's two channels were skipped, c->d's two were re-quoted.
    assert net.requotes_skipped == 2
    assert net.requotes_applied == 2


def test_rule_matching_nothing_skips_every_channel(env):
    net, a, b, c, d = make_quad(env)
    size = 10 * MB

    def scenario():
        first = env.process(net.transfer(a, b, size))
        second = env.process(net.transfer(c, d, size))
        yield env.timeout(0.1)
        net.throttles.add(NodeThrottle("nobody", mbps(1)))
        yield first
        yield second

    env.run(until=env.process(scenario()))
    assert net.requotes_applied == 0
    assert net.requotes_skipped == 4
    # Both flows finished at their original quotes.
    assert env.now == pytest.approx(size / mbps(100) + net.config.link_latency)


def test_matching_rule_still_requotes(env):
    """The skip must not eat real re-quotes (mirror of the transport
    suite's mid-flight test, driven through the batch path)."""
    net, a, b, _c, _d = make_quad(env)
    size = 10 * MB
    half = (size / mbps(100)) / 2

    def scenario():
        first = env.process(net.transfer(a, b, size))
        yield env.timeout(half)
        net.throttles.add(NodeThrottle("b", mbps(10)))
        yield first

    env.run(until=env.process(scenario()))
    expected = half + (size / 2) / mbps(10) + net.config.link_latency
    assert env.now == pytest.approx(expected)
    assert net.requotes_applied == 2
    assert net.requotes_skipped == 0


def test_stale_channels_pruned_after_skip(env):
    """Channels that drained before the rule change leave the tracking
    set even when every live channel is skipped."""
    net, a, b, c, d = make_quad(env)
    size = 1 * MB

    def scenario():
        first = env.process(net.transfer(a, b, size))
        yield first
        # a->b drained; c->d still in flight when the rule lands.
        second = env.process(net.transfer(c, d, 10 * MB))
        yield env.timeout(0.1)
        net.throttles.add(NodeThrottle("nobody", mbps(1)))
        assert a.nic.egress not in net._preemptible_channels
        assert b.nic.ingress not in net._preemptible_channels
        assert c.nic.egress in net._preemptible_channels
        yield second

    env.run(until=env.process(scenario()))
    assert net.requotes_applied == 0
    assert net.requotes_skipped == 2
