"""Unit tests for per-flow transfer accounting."""

import pytest

from repro.net import FlowSample, FlowStats


def sample(src="a", dst="b", size=1000, start=0.0, end=1.0):
    return FlowSample(src=src, dst=dst, size=size, start=start, end=end)


class TestFlowSample:
    def test_duration_and_rate(self):
        s = sample(size=2000, start=1.0, end=3.0)
        assert s.duration == 2.0
        assert s.rate == 1000.0

    def test_zero_duration_rate(self):
        s = sample(start=1.0, end=1.0)
        assert s.rate == 0.0


class TestFlowStats:
    def test_total_bytes_filters(self):
        stats = FlowStats()
        stats.record(sample(src="a", dst="b", size=100))
        stats.record(sample(src="a", dst="c", size=200))
        stats.record(sample(src="b", dst="c", size=400))
        assert stats.total_bytes() == 700
        assert stats.total_bytes(src="a") == 300
        assert stats.total_bytes(dst="c") == 600
        assert stats.total_bytes(src="a", dst="c") == 200

    def test_mean_rate_weights_by_bytes(self):
        stats = FlowStats()
        stats.record(sample(size=1000, start=0, end=1))  # 1000 B/s
        stats.record(sample(size=3000, start=0, end=1))  # 3000 B/s
        # 4000 bytes over 2 seconds of transfer time.
        assert stats.mean_rate("a", "b") == pytest.approx(2000.0)

    def test_mean_rate_unknown_pair(self):
        assert FlowStats().mean_rate("x", "y") == 0.0

    def test_pairs_sorted(self):
        stats = FlowStats()
        stats.record(sample(src="b", dst="a"))
        stats.record(sample(src="a", dst="b"))
        assert stats.pairs() == (("a", "b"), ("b", "a"))

    def test_len(self):
        stats = FlowStats()
        stats.record(sample())
        stats.record(sample())
        assert len(stats) == 2
