"""Unit tests for NIC, throttling and the Network transfer primitive."""

import pytest

from repro.cluster import SMALL, Node, build_homogeneous
from repro.net import (
    NIC,
    Network,
    NodeThrottle,
    PairThrottle,
    RackBoundaryThrottle,
    ThrottleTable,
    Topology,
)
from repro.sim import Environment
from repro.units import MB, mbps


@pytest.fixture()
def env():
    return Environment()


def make_pair(env, rate_a=mbps(100), rate_b=mbps(100), same_rack=True):
    """Two nodes on a private network for focused transfer tests."""
    from repro.cluster.instance import InstanceType

    ia = InstanceType("ta", 1, 1, rate_a, mbps(10000), mbps(10000))
    ib = InstanceType("tb", 1, 1, rate_b, mbps(10000), mbps(10000))
    topo = Topology()
    a = Node(env, "a", ia, rack="rack0")
    b = Node(env, "b", ib, rack="rack0" if same_rack else "rack1")
    topo.add_host("a", "rack0")
    topo.add_host("b", b.rack)
    net = Network(env, topo)
    return net, a, b


class TestNIC:
    def test_invalid_rate(self, env):
        with pytest.raises(ValueError):
            NIC(env, 0)

    def test_egress_serializes_at_rate(self, env):
        nic = NIC(env, rate=1000.0)

        def send(env, nic):
            yield env.process(nic.occupy_egress(500, nic.rate))
            yield env.process(nic.occupy_egress(500, nic.rate))

        env.run(until=env.process(send(env, nic)))
        assert env.now == pytest.approx(1.0)
        assert nic.bytes_sent == 1000

    def test_full_duplex_ingress_egress_independent(self, env):
        nic = NIC(env, rate=1000.0)

        def both(env, nic):
            tx = env.process(nic.occupy_egress(1000, nic.rate))
            rx = env.process(nic.occupy_ingress(1000, nic.rate))
            yield env.all_of([tx, rx])

        env.run(until=env.process(both(env, nic)))
        assert env.now == pytest.approx(1.0)  # not 2.0: full duplex


class TestThrottleTable:
    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            NodeThrottle("x", 0)

    def test_effective_rate_is_min_of_nics(self, env):
        net, a, b = make_pair(env, rate_a=mbps(100), rate_b=mbps(50))
        assert net.effective_rate(a, b) == mbps(50)

    def test_node_throttle_applies_both_directions(self, env):
        net, a, b = make_pair(env)
        net.throttles.add(NodeThrottle("b", mbps(10)))
        assert net.effective_rate(a, b) == mbps(10)
        assert net.effective_rate(b, a) == mbps(10)

    def test_pair_throttle_is_directional(self, env):
        net, a, b = make_pair(env)
        net.throttles.add(PairThrottle("a", "b", mbps(10)))
        assert net.effective_rate(a, b) == mbps(10)
        assert net.effective_rate(b, a) == mbps(100)

    def test_rack_boundary_only_cross_rack(self, env):
        net, a, b = make_pair(env, same_rack=False)
        net.throttles.add(RackBoundaryThrottle(mbps(25)))
        assert net.effective_rate(a, b) == mbps(25)

        net2, c, d = make_pair(env, same_rack=True)
        net2.throttles.add(RackBoundaryThrottle(mbps(25)))
        assert net2.effective_rate(c, d) == mbps(100)

    def test_multiple_rules_take_min(self, env):
        net, a, b = make_pair(env)
        net.throttles.add(NodeThrottle("a", mbps(30)))
        net.throttles.add(PairThrottle("a", "b", mbps(20)))
        assert net.effective_rate(a, b) == mbps(20)

    def test_remove_matching(self, env):
        table = ThrottleTable()
        table.add(NodeThrottle("x", mbps(10)))
        table.add(NodeThrottle("y", mbps(10)))
        removed = table.remove_matching(
            lambda r: isinstance(r, NodeThrottle) and r.node_name == "x"
        )
        assert removed == 1
        assert len(table) == 1


class TestTransfer:
    def test_duration_matches_rate(self, env):
        net, a, b = make_pair(env, rate_a=mbps(100), rate_b=mbps(100))
        size = 10 * MB

        sample = env.run(until=env.process(net.transfer(a, b, size)))
        expected = size / mbps(100) + net.config.link_latency
        assert env.now == pytest.approx(expected)
        assert sample.size == size
        assert sample.rate == pytest.approx(size / expected)

    def test_negative_size_rejected(self, env):
        net, a, b = make_pair(env)
        with pytest.raises(ValueError):
            # generator raises on first advance
            env.run(until=env.process(net.transfer(a, b, -1)))

    def test_loopback_is_instant(self, env):
        net, a, _ = make_pair(env)
        env.run(until=env.process(net.transfer(a, a, 100 * MB)))
        assert env.now == pytest.approx(0.0)

    def test_concurrent_sends_share_egress(self, env):
        """Two simultaneous transfers from one node serialize at its NIC."""
        from repro.cluster.instance import InstanceType

        itype = InstanceType("t", 1, 1, mbps(100), mbps(10000), mbps(10000))
        topo = Topology()
        src = Node(env, "src", itype, rack="rack0")
        d1 = Node(env, "d1", itype, rack="rack0")
        d2 = Node(env, "d2", itype, rack="rack0")
        for n in ("src", "d1", "d2"):
            topo.add_host(n, "rack0")
        net = Network(env, topo)

        size = 10 * MB
        t1 = env.process(net.transfer(src, d1, size))
        t2 = env.process(net.transfer(src, d2, size))
        env.run(until=env.all_of([t1, t2]))
        # Two transfers through a single 100 Mbps egress: 2 * size / rate.
        expected = 2 * size / mbps(100) + net.config.link_latency
        assert env.now == pytest.approx(expected, rel=1e-3)

    def test_concurrent_receives_share_ingress(self, env):
        from repro.cluster.instance import InstanceType

        itype = InstanceType("t", 1, 1, mbps(100), mbps(10000), mbps(10000))
        topo = Topology()
        dst = Node(env, "dst", itype, rack="rack0")
        s1 = Node(env, "s1", itype, rack="rack0")
        s2 = Node(env, "s2", itype, rack="rack0")
        for n in ("dst", "s1", "s2"):
            topo.add_host(n, "rack0")
        net = Network(env, topo)

        size = 10 * MB
        t1 = env.process(net.transfer(s1, dst, size))
        t2 = env.process(net.transfer(s2, dst, size))
        env.run(until=env.all_of([t1, t2]))
        expected = 2 * size / mbps(100) + net.config.link_latency
        assert env.now == pytest.approx(expected, rel=1e-3)

    def test_throttled_transfer_slows_down(self, env):
        net, a, b = make_pair(env, same_rack=False)
        net.throttles.add(RackBoundaryThrottle(mbps(10)))
        size = 10 * MB
        env.run(until=env.process(net.transfer(a, b, size)))
        assert env.now == pytest.approx(size / mbps(10), rel=1e-3)

    def test_stats_recorded(self, env):
        net, a, b = make_pair(env)
        env.run(until=env.process(net.transfer(a, b, MB)))
        assert net.stats.total_bytes(src="a", dst="b") == MB
        assert net.stats.mean_rate("a", "b") > 0
        assert net.stats.mean_rate("b", "a") == 0.0

    def test_control_message_is_latency_only(self, env):
        net, a, b = make_pair(env)
        env.run(until=env.process(net.send_control(a, b)))
        assert env.now == pytest.approx(net.config.control_latency)
        assert net.stats.total_bytes() == 0


class TestMidTransferRateChange:
    """tc rule changes while a transfer is on the wire."""

    def test_in_flight_keeps_old_rate_by_default(self, env):
        """Default semantics: the quote committed at start stands; only
        transfers starting after the rule change see the new rate."""
        net, a, b = make_pair(env, rate_a=mbps(100), rate_b=mbps(100))
        size = 10 * MB

        def scenario():
            first = env.process(net.transfer(a, b, size))
            # Throttle hard mid-transfer.
            yield env.timeout((size / mbps(100)) / 2)
            net.throttles.add(NodeThrottle("b", mbps(10)))
            yield first
            first_done = env.now
            yield env.process(net.transfer(a, b, size))
            return first_done

        done = env.process(scenario())
        first_done = env.run(until=done)
        # First transfer finished at the original 100 Mbps quote.
        assert first_done == pytest.approx(
            size / mbps(100) + net.config.link_latency
        )
        # Second transfer ran at the throttled 10 Mbps.
        assert env.now - first_done == pytest.approx(
            size / mbps(10) + net.config.link_latency
        )

    def test_requote_in_flight_moves_completion(self, env):
        """Opt-in mode: the rule change re-quotes the live reservation —
        bytes already clocked out stay, the remainder moves to the new
        rate."""
        from repro.config import NetworkConfig

        net, a, b = make_pair(env)
        net.config = NetworkConfig(requote_in_flight=True)
        net.throttles.subscribe(net._requote_in_flight)
        size = 10 * MB
        half = (size / mbps(100)) / 2

        def scenario():
            first = env.process(net.transfer(a, b, size))
            yield env.timeout(half)
            net.throttles.add(NodeThrottle("b", mbps(10)))
            yield first

        env.run(until=env.process(scenario()))
        # Half the bytes at 100 Mbps, the other half at 10 Mbps.
        expected = half + (size / 2) / mbps(10) + net.config.link_latency
        assert env.now == pytest.approx(expected)

    def test_requote_unthrottle_speeds_up(self, env):
        from repro.config import NetworkConfig

        net, a, b = make_pair(env)
        net.config = NetworkConfig(requote_in_flight=True)
        net.throttles.subscribe(net._requote_in_flight)
        net.throttles.add(NodeThrottle("b", mbps(10)))
        size = 10 * MB
        quarter = (size / mbps(10)) / 4

        def scenario():
            first = env.process(net.transfer(a, b, size))
            yield env.timeout(quarter)
            net.throttles.remove_matching(lambda r: isinstance(r, NodeThrottle))
            yield first

        env.run(until=env.process(scenario()))
        expected = quarter + (size * 0.75) / mbps(100) + net.config.link_latency
        assert env.now == pytest.approx(expected)


class TestLoopback:
    def test_loopback_does_not_occupy_channels(self, env):
        """src-is-dst transfers bypass the NIC channels entirely."""
        net, a, _ = make_pair(env)
        env.run(until=env.process(net.transfer(a, a, 100 * MB)))
        assert env.now == pytest.approx(0.0)
        assert not a.nic.egress.busy
        assert not a.nic.ingress.busy
        assert a.nic.egress.busy_until == 0.0

    def test_loopback_still_recorded_in_stats(self, env):
        net, a, _ = make_pair(env)
        env.run(until=env.process(net.transfer(a, a, MB)))
        assert net.stats.total_bytes(src="a", dst="a") == MB

    def test_loopback_then_remote_transfer_unaffected(self, env):
        net, a, b = make_pair(env)
        size = 10 * MB

        def scenario():
            yield from net.transfer(a, a, size)
            yield from net.transfer(a, b, size)

        env.run(until=env.process(scenario()))
        assert env.now == pytest.approx(
            size / mbps(100) + net.config.link_latency
        )


class TestClusterBuilders:
    def test_homogeneous_layout(self, env):
        cluster = build_homogeneous(env, SMALL, n_datanodes=9)
        assert len(cluster.datanode_hosts) == 9
        assert cluster.topology.racks == ("rack0", "rack1")
        # Balanced split: dn0..dn4 share the client's rack, dn5..dn8 don't.
        assert cluster.topology.rack_of("dn0") == "rack0"
        assert cluster.topology.rack_of("dn4") == "rack0"
        assert cluster.topology.rack_of("dn5") == "rack1"
        assert cluster.client_host.rack == "rack0"

    def test_homogeneous_custom_split(self, env):
        cluster = build_homogeneous(env, SMALL, n_datanodes=9, n_local=3)
        assert cluster.topology.hosts_in_rack("rack0") == (
            "client",
            "dn0",
            "dn1",
            "dn2",
            "namenode",
        )

    def test_homogeneous_invalid_split(self, env):
        with pytest.raises(ValueError):
            build_homogeneous(env, SMALL, n_datanodes=3, n_local=7)

    def test_homogeneous_accepts_name(self, env):
        cluster = build_homogeneous(env, "medium", n_datanodes=3)
        assert cluster.client_host.instance.name == "medium"

    def test_heterogeneous_mix(self, env):
        from repro.cluster import build_heterogeneous

        cluster = build_heterogeneous(env)
        types = sorted(n.instance.name for n in cluster.datanode_hosts)
        assert types == ["large"] * 3 + ["medium"] * 3 + ["small"] * 3
        assert cluster.namenode_host.instance.name == "medium"

    def test_throttle_datanodes_returns_names(self, env):
        cluster = build_homogeneous(env, SMALL, n_datanodes=9)
        names = cluster.throttle_datanodes(3, 50)
        assert names == ["dn6", "dn7", "dn8"]
        src = cluster.client_host
        assert cluster.network.effective_rate(src, cluster.datanode_host("dn8")) == mbps(50)

    def test_throttle_datanodes_bounds(self, env):
        cluster = build_homogeneous(env, SMALL, n_datanodes=3)
        with pytest.raises(ValueError):
            cluster.throttle_datanodes(4, 50)
        assert cluster.throttle_datanodes(0, 50) == []

    def test_host_lookup(self, env):
        cluster = build_homogeneous(env, SMALL, n_datanodes=2)
        assert cluster.host("client") is cluster.client_host
        with pytest.raises(KeyError):
            cluster.host("nothere")
        with pytest.raises(KeyError):
            cluster.datanode_host("client")
