"""Hypothesis properties for :mod:`repro.rng` substream derivation.

The simulator's determinism story leans on ``substream``: every
per-(consumer, key) decision draws from its own generator, derived by
pure arithmetic from the root seed.  These properties pin the contract —
stability (same path, same stream, regardless of process or of what
other streams did), sensitivity (any change to the path changes the
stream), and cross-run reproducibility (no ``hash()`` salting anywhere).
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.rng import substream, substream_seed

KEY = st.one_of(
    st.integers(min_value=-(2**63), max_value=2**64 - 1),
    st.text(max_size=16),
)
KEYS = st.lists(KEY, max_size=6)
SEED = st.integers(min_value=0, max_value=2**64 - 1)


@given(seed=SEED, keys=KEYS)
def test_seed_is_stable(seed: int, keys: list) -> None:
    assert substream_seed(seed, *keys) == substream_seed(seed, *keys)


@given(seed=SEED, keys=KEYS)
def test_seed_is_a_64_bit_value(seed: int, keys: list) -> None:
    derived = substream_seed(seed, *keys)
    assert 0 <= derived < 2**64


@given(seed=SEED, keys=KEYS)
def test_streams_replay_identically(seed: int, keys: list) -> None:
    first = [substream(seed, *keys).random() for _ in range(3)]
    again = [substream(seed, *keys).random() for _ in range(3)]
    assert first == again


@given(seed=SEED, keys=KEYS, extra=KEY)
def test_appending_a_key_changes_the_stream(seed, keys, extra) -> None:
    assert substream_seed(seed, *keys) != substream_seed(seed, *keys, extra)


@given(seed=SEED, keys=KEYS, index=st.integers(min_value=0, max_value=5))
def test_perturbing_one_int_key_changes_the_stream(seed, keys, index) -> None:
    keys = list(keys) + [0]  # ensure at least one int key exists
    index %= len(keys)
    if not isinstance(keys[index], int):
        keys[index] = 0
    perturbed = list(keys)
    perturbed[index] = keys[index] + 1
    assert substream_seed(seed, *keys) != substream_seed(seed, *perturbed)


@given(seed=SEED)
def test_int_and_str_keys_are_distinct(seed: int) -> None:
    """``substream(seed, 1)`` and ``substream(seed, "1")`` must differ —
    a type confusion at a call site should change behavior loudly, not
    silently alias another consumer's stream."""
    assert substream_seed(seed, 1) != substream_seed(seed, "1")


@given(
    seed=SEED,
    a=st.integers(min_value=0, max_value=2**32 - 1),
    b=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_key_order_matters(seed: int, a: int, b: int) -> None:
    if a == b:
        return
    assert substream_seed(seed, a, b) != substream_seed(seed, b, a)


@given(seed=SEED, keys=KEYS, other=KEYS, draws=st.integers(1, 50))
def test_draining_one_stream_leaves_siblings_untouched(
    seed, keys, other, draws
) -> None:
    """Independence: however much one consumer draws, a sibling path
    re-derived afterwards starts from the same state."""
    before = substream(seed, *other).random()
    noisy = substream(seed, *keys)
    for _ in range(draws):
        noisy.random()
    assert substream(seed, *other).random() == before


@given(seed=SEED, n=st.integers(min_value=2, max_value=32))
def test_sibling_streams_do_not_collide(seed: int, n: int) -> None:
    """First draws across n sibling paths are pairwise distinct — the
    derivation actually spreads, it does not funnel paths together."""
    draws = {substream(seed, "sibling", i).random() for i in range(n)}
    assert len(draws) == n


def test_derivation_is_pinned_across_processes() -> None:
    """Golden values: the derivation must never depend on ``hash()``
    salting or platform word size.  If this fails, every checked-in
    golden that consumed a substream is silently invalidated."""
    assert substream_seed(20140901) == 0x483C4CBAA6D3BA40
    assert substream_seed(20140901, "client", 5) == 0x5DC4922A1ED4A618
    assert substream_seed(0, 0) == 0x4D25767F9DCE13F5
