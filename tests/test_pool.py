"""map_named — the worker-pool helper shared by run_all and the shard
executor: ordered results, no None holes, named failures."""

import pytest

from repro.pool import WorkerFailure, map_named


def square(x):
    return x * x


def fail_on_odd(x):
    if x % 2:
        raise RuntimeError(f"odd input {x}")
    return x


TASKS = [(f"t{i}", (i,)) for i in range(6)]


class TestValidation:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            map_named(square, TASKS, jobs=0)

    def test_names_must_be_unique(self):
        with pytest.raises(ValueError, match="unique"):
            map_named(square, [("a", (1,)), ("a", (2,))], jobs=1)

    def test_empty_task_list(self):
        assert map_named(square, [], jobs=4) == []


class TestSequential:
    def test_results_in_input_order(self):
        assert map_named(square, TASKS, jobs=1) == [0, 1, 4, 9, 16, 25]

    def test_progress_called_per_task(self):
        seen = []
        map_named(square, TASKS, jobs=1, progress=seen.append)
        assert seen == [name for name, _ in TASKS]

    def test_failure_is_named(self):
        with pytest.raises(WorkerFailure) as exc_info:
            map_named(fail_on_odd, TASKS, jobs=1)
        failure = exc_info.value
        assert failure.name == "t1"
        assert isinstance(failure.cause, RuntimeError)
        assert "t1" in str(failure)


class TestParallel:
    def test_results_in_input_order_no_holes(self):
        results = map_named(square, TASKS, jobs=3)
        assert results == [0, 1, 4, 9, 16, 25]
        assert None not in results

    def test_progress_reports_every_task(self):
        seen = []
        map_named(square, TASKS, jobs=2, progress=seen.append)
        # Completion order may vary across workers; coverage may not.
        assert sorted(seen) == sorted(name for name, _ in TASKS)

    def test_failure_names_earliest_task_and_lists_all(self):
        with pytest.raises(WorkerFailure) as exc_info:
            map_named(fail_on_odd, TASKS, jobs=3)
        failure = exc_info.value
        # t1, t3, t5 all fail; the raised failure is the earliest in
        # input order and carries the full roster.
        assert failure.name == "t1"
        assert failure.failed_names == ("t1", "t3", "t5")
