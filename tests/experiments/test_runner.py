"""Tests for the experiment runner / markdown report generator."""

import pytest

from repro.experiments import run_all, to_markdown


class TestRunner:
    def test_subset_runs_in_order(self):
        seen = []
        results = run_all(
            scale=1 / 32,
            only=["table1", "fig13"],
            progress=seen.append,
        )
        assert seen == ["table1", "fig13"]
        assert [r.experiment_id for r in results] == ["table1", "fig13"]

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError, match="fig99"):
            run_all(only=["fig99"])

    def test_markdown_report_structure(self):
        results = run_all(scale=1 / 32, only=["table1"])
        report = to_markdown(results, scale=1 / 32)
        assert report.startswith("# Experiment report")
        assert "## table1" in report
        assert "```" in report
        assert "**Paper:**" in report
        assert "**Measured:**" in report
