"""On-vs-off equivalence of the batch completion kernel at experiment scale.

Mirror of ``test_train_equivalence.py`` for the second fast-path knob:
``batch_completions=0`` falls back to the scalar per-row conductor, and
the complete result tables — plus a pod campaign where the batched
feeder provably engages — must be identical either way.  Together with
the hypothesis suite (``tests/sim/test_batch.py``) this closes the
bit-identity claim from both ends: property tests pin every kernel
helper to its scalar reference, and these runs pin the integrated
timing at experiment scale.
"""

from __future__ import annotations

import json

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.figures import experiment_config
from repro.faults.campaign import ChaosSchedule, report_json, run_campaign
from repro.workloads import campaign10k, run_pods_single_env

SCALE = 0.25
SCALAR_CONFIG = experiment_config().with_hdfs(batch_completions=0)


def _normalized(result) -> dict:
    rows = [
        dict(zip(result.columns, row)) if not isinstance(row, dict) else row
        for row in result.rows
    ]
    return json.loads(
        json.dumps(
            {
                "rows": rows,
                "measured": {k: str(v) for k, v in result.measured.items()},
            },
            sort_keys=True,
        )
    )


def test_fig5_identical_with_and_without_batching():
    fast = _normalized(ALL_EXPERIMENTS["fig5"](scale=SCALE))
    scalar = _normalized(
        ALL_EXPERIMENTS["fig5"](config=SCALAR_CONFIG, scale=SCALE)
    )
    assert fast == scalar


def test_faultrec_identical_with_and_without_batching():
    fast = _normalized(ALL_EXPERIMENTS["faultrec"](scale=SCALE))
    scalar = _normalized(
        ALL_EXPERIMENTS["faultrec"](config=SCALAR_CONFIG, scale=SCALE)
    )
    assert fast == scalar


def test_chaos_report_identical_per_seed(monkeypatch):
    """A fixed-seed chaos campaign produces a byte-identical report in
    both modes (disturbances invalidate trains, so the batched feeder
    stands down exactly where the scalar conductor would replay)."""
    fast = run_campaign(seed=11, runs=2, protocols=("hdfs", "smarth"), scale=0.1)

    original = ChaosSchedule.config
    monkeypatch.setattr(
        ChaosSchedule,
        "config",
        lambda self: original(self).with_hdfs(batch_completions=0),
    )
    scalar = run_campaign(
        seed=11, runs=2, protocols=("hdfs", "smarth"), scale=0.1
    )
    assert report_json(fast) == report_json(scalar)


def test_campaign_timeline_identical_and_fewer_events():
    """The engaged path: on the campaign pod shape (whole file inside
    the data-queue bound) the batched feeder must retire packet traffic
    analytically — strictly fewer heap events — while the per-client
    timeline stays bit-identical."""
    from repro.config import SimulationConfig

    plan = campaign10k(scale=0.02)
    batch = run_pods_single_env(plan, config=SimulationConfig())
    scalar = run_pods_single_env(
        plan, config=SimulationConfig().with_hdfs(batch_completions=0)
    )
    assert batch.timeline == scalar.timeline
    assert batch.fully_replicated and scalar.fully_replicated
    assert batch.bytes_moved == scalar.bytes_moved
    assert batch.events_processed < scalar.events_processed
