"""Equivalence of the cluster-scale fast paths at experiment scale.

The scale fast paths — the cached :class:`SpeedRegistry` ranking behind
``choose_targets`` and the lazy-cancellation tombstone scheduler — must
not move a single simulated timestamp.  This suite runs the same drivers
in *legacy mode* (the uncached reference registry plus the pre-tombstone
scheduler, where abandoned timers stay in the heap and fire stale) and
compares complete result tables, mirroring the train-vs-legacy suite.
"""

from __future__ import annotations

import json

from repro.experiments import ALL_EXPERIMENTS
from repro.faults.campaign import report_json, run_campaign
from repro.hdfs.namenode import Namenode, UncachedSpeedRegistry
from repro.sim import Environment

SCALE = 0.25


def _legacy_mode(monkeypatch) -> None:
    """Pre-fast-path reference implementations, process-wide."""
    monkeypatch.setattr(Environment, "LAZY_CANCELLATION", False)
    monkeypatch.setattr(
        Namenode, "speed_registry_factory", UncachedSpeedRegistry
    )


def _normalized(result) -> dict:
    rows = [
        dict(zip(result.columns, row)) if not isinstance(row, dict) else row
        for row in result.rows
    ]
    return json.loads(
        json.dumps(
            {
                "rows": rows,
                "measured": {k: str(v) for k, v in result.measured.items()},
            },
            sort_keys=True,
        )
    )


def test_fig5_identical_fast_vs_legacy(monkeypatch):
    fast = _normalized(ALL_EXPERIMENTS["fig5"](scale=SCALE))
    _legacy_mode(monkeypatch)
    legacy = _normalized(ALL_EXPERIMENTS["fig5"](scale=SCALE))
    assert fast == legacy


def test_faultrec_identical_fast_vs_legacy(monkeypatch):
    fast = _normalized(ALL_EXPERIMENTS["faultrec"](scale=SCALE))
    _legacy_mode(monkeypatch)
    legacy = _normalized(ALL_EXPERIMENTS["faultrec"](scale=SCALE))
    assert fast == legacy


def test_chaos_report_identical_per_seed(monkeypatch):
    """A fixed-seed chaos campaign produces a byte-identical report with
    the fast paths on and in legacy mode (uncached registry + stale
    timers firing through the heap)."""
    fast = run_campaign(seed=11, runs=2, protocols=("hdfs", "smarth"), scale=0.1)
    _legacy_mode(monkeypatch)
    legacy = run_campaign(
        seed=11, runs=2, protocols=("hdfs", "smarth"), scale=0.1
    )
    assert report_json(fast) == report_json(legacy)
