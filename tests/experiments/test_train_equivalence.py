"""On-vs-off equivalence of packet-train coalescing at experiment scale.

The golden-results test already pins the default (trains-on) runs to the
seed snapshots; this file closes the loop by running the same drivers
with ``coalesce_packets=1`` (the per-packet legacy loop) and comparing
the complete result tables, so the equivalence claim does not depend on
which mode the snapshots were taken in.
"""

from __future__ import annotations

import json

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments.figures import experiment_config
from repro.faults.campaign import ChaosSchedule, report_json, run_campaign

SCALE = 0.25
LEGACY_CONFIG = experiment_config().with_hdfs(coalesce_packets=1)


def _normalized(result) -> dict:
    rows = [
        dict(zip(result.columns, row)) if not isinstance(row, dict) else row
        for row in result.rows
    ]
    return json.loads(
        json.dumps(
            {
                "rows": rows,
                "measured": {k: str(v) for k, v in result.measured.items()},
            },
            sort_keys=True,
        )
    )


def test_fig5_identical_with_and_without_trains():
    fast = _normalized(ALL_EXPERIMENTS["fig5"](scale=SCALE))
    legacy = _normalized(
        ALL_EXPERIMENTS["fig5"](config=LEGACY_CONFIG, scale=SCALE)
    )
    assert fast == legacy


def test_faultrec_identical_with_and_without_trains():
    fast = _normalized(ALL_EXPERIMENTS["faultrec"](scale=SCALE))
    legacy = _normalized(
        ALL_EXPERIMENTS["faultrec"](config=LEGACY_CONFIG, scale=SCALE)
    )
    assert fast == legacy


def test_chaos_report_identical_per_seed(monkeypatch):
    """A fixed-seed chaos campaign produces a byte-identical report in
    both modes (every schedule registers its disturbances up front, so
    trains stand down and the per-packet timeline replays verbatim)."""
    fast = run_campaign(seed=11, runs=2, protocols=("hdfs", "smarth"), scale=0.1)

    original = ChaosSchedule.config
    monkeypatch.setattr(
        ChaosSchedule,
        "config",
        lambda self: original(self).with_hdfs(coalesce_packets=1),
    )
    legacy = run_campaign(
        seed=11, runs=2, protocols=("hdfs", "smarth"), scale=0.1
    )
    assert report_json(fast) == report_json(legacy)
