"""Golden-results regression test for the experiment drivers.

``golden_scale025.json`` captures the fig5/fig9 tables at scale 0.25 as
produced by the seed (pre-fast-path) code.  The analytic channel model
is only a valid optimisation if it is *behaviour-preserving*: these
tests pin every row and headline number to the values the event-by-event
FIFO model produced.  Any change to simulated timing — intentional or
not — fails here and forces the golden file to be regenerated (and the
change justified) explicitly.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.experiments import ALL_EXPERIMENTS

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden_scale025.json"
GOLDEN_FAULTS_PATH = pathlib.Path(__file__).parent / "golden_faults.json"
SCALE = 0.25


def _normalize_rows(result) -> list[dict]:
    rows = [
        dict(zip(result.columns, row)) if not isinstance(row, dict) else row
        for row in result.rows
    ]
    # JSON round-trip so tuples/keys compare like the stored snapshot.
    return json.loads(json.dumps(rows, sort_keys=True))


def _normalize_measured(result) -> dict[str, str]:
    return {k: str(v) for k, v in result.measured.items()}


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("fig_id", ["fig5", "fig9"])
def test_tables_match_seed_exactly(fig_id: str, golden: dict) -> None:
    result = ALL_EXPERIMENTS[fig_id](scale=SCALE)
    rows = _normalize_rows(result)
    expected = golden[fig_id]["rows"]
    assert len(rows) == len(expected)
    for i, (mine, want) in enumerate(zip(rows, expected)):
        assert mine == want, f"{fig_id} row {i} diverged from the seed"
    assert _normalize_measured(result) == golden[fig_id]["measured"]


def test_rerun_is_deterministic(golden: dict) -> None:
    """Two runs in one process are identical (no hidden global state)."""
    first = _normalize_rows(ALL_EXPERIMENTS["fig5"](scale=SCALE))
    second = _normalize_rows(ALL_EXPERIMENTS["fig5"](scale=SCALE))
    assert first == second == golden["fig5"]["rows"]


def test_fault_scenario_matches_golden() -> None:
    """The fixed kill+throttle run (faultrec) is pinned row-for-row.

    Recovery timing is part of the behaviour contract: a change to the
    fault path that shifts upload times, recovery counts or the identity
    of the killed datanode must regenerate this golden file explicitly.
    """
    golden = json.loads(GOLDEN_FAULTS_PATH.read_text())
    result = ALL_EXPERIMENTS["faultrec"](scale=SCALE)
    rows = _normalize_rows(result)
    expected = golden["faultrec"]["rows"]
    assert len(rows) == len(expected)
    for i, (mine, want) in enumerate(zip(rows, expected)):
        assert mine == want, f"faultrec row {i} diverged from the golden run"
    assert _normalize_measured(result) == golden["faultrec"]["measured"]
    # Sanity: the schedule actually forced a recovery on both systems.
    assert all(row["recoveries"] >= 1 for row in rows)
