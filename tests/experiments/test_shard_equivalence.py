"""Shard-invariance of full experiments: sharded scheduler, same bytes.

The deterministic K-way merge in :class:`~repro.sim.ShardedEnvironment`
claims the dispatch order is *identical* to the single-heap
:class:`~repro.sim.Environment` for any shard count.  This suite proves
that claim end-to-end, not on toy workloads: the fig5 and faultrec
experiment drivers and a fixed-seed chaos campaign are rerun with every
scenario's environment swapped (via the
``repro.workloads.scenarios.environment_factory`` hook) for a sharded
one at shard counts {1, 2, 4}, and the complete result tables / report
bytes must match the single-heap reference exactly.
"""

from __future__ import annotations

import json

import pytest

import repro.workloads.scenarios as scenarios
from repro.experiments import ALL_EXPERIMENTS
from repro.faults.campaign import report_json, run_campaign
from repro.sim import ShardedEnvironment

SCALE = 0.25
SHARD_COUNTS = (1, 2, 4)


def _sharded_mode(monkeypatch, shards: int) -> None:
    """Every scenario-built environment becomes a sharded one."""
    monkeypatch.setattr(
        scenarios,
        "environment_factory",
        lambda: ShardedEnvironment(shards=shards),
    )


def _normalized(result) -> dict:
    rows = [
        dict(zip(result.columns, row)) if not isinstance(row, dict) else row
        for row in result.rows
    ]
    return json.loads(
        json.dumps(
            {
                "rows": rows,
                "measured": {k: str(v) for k, v in result.measured.items()},
            },
            sort_keys=True,
        )
    )


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_fig5_identical_sharded_vs_single_heap(monkeypatch, shards):
    reference = _normalized(ALL_EXPERIMENTS["fig5"](scale=SCALE))
    _sharded_mode(monkeypatch, shards)
    sharded = _normalized(ALL_EXPERIMENTS["fig5"](scale=SCALE))
    assert sharded == reference


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_faultrec_identical_sharded_vs_single_heap(monkeypatch, shards):
    reference = _normalized(ALL_EXPERIMENTS["faultrec"](scale=SCALE))
    _sharded_mode(monkeypatch, shards)
    sharded = _normalized(ALL_EXPERIMENTS["faultrec"](scale=SCALE))
    assert sharded == reference


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_chaos_report_identical_per_seed(monkeypatch, shards):
    """Fault injection, retries, recovery races — a fixed-seed chaos
    campaign's report is byte-identical under the sharded scheduler."""
    reference = report_json(
        run_campaign(seed=11, runs=2, protocols=("hdfs", "smarth"), scale=0.1)
    )
    _sharded_mode(monkeypatch, shards)
    sharded = report_json(
        run_campaign(seed=11, runs=2, protocols=("hdfs", "smarth"), scale=0.1)
    )
    assert sharded == reference
