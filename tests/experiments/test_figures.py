"""Tests for the experiment drivers (scaled down for speed).

Full-scale (8 GB) runs live in benchmarks/; here we verify that each
driver produces well-formed rows and that the paper's qualitative trends
hold even at reduced scale.
"""

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    PAPER_CLAIMS,
    ExperimentResult,
    experiment_config,
    fig5,
    fig6,
    fig9,
    fig10,
    fig13,
    format_table,
    table1,
)

#: 1/16 of the paper's sizes: 8 GB points become 512 MB — big enough for
#: the speed-learning warm-up to converge, small enough for CI.
SCALE = 1 / 16


class TestInfrastructure:
    def test_registry_covers_every_figure_and_table(self):
        assert set(ALL_EXPERIMENTS) == {
            "table1",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "faultrec",
        }
        assert set(PAPER_CLAIMS) == set(ALL_EXPERIMENTS)

    def test_format_table_alignment(self):
        text = format_table(
            ("a", "bb"), [{"a": 1, "bb": "xy"}, {"a": 22, "bb": "z"}]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_to_text_includes_claims(self):
        result = table1()
        text = result.to_text()
        assert "table1" in text
        assert "paper" in text


class TestTable1:
    def test_matches_paper_exactly(self):
        result = table1()
        by_name = {r["instance"]: r for r in result.rows}
        assert by_name["small"]["network_mbps"] == 216
        assert by_name["medium"]["network_mbps"] == 376
        assert by_name["large"]["network_mbps"] == 376
        assert by_name["small"]["memory_gb"] == pytest.approx(1.7)
        assert by_name["medium"]["ecus"] == 2


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5(scale=SCALE, sizes_gb=(2, 8), instances=("small", "medium"))

    def test_rows_cover_grid(self, result):
        assert len(result.rows) == 2 * 2 * 2  # instances x networks x sizes

    def test_time_grows_with_size(self, result):
        for instance in ("small", "medium"):
            for network in ("default", "100Mbps"):
                subset = [
                    r
                    for r in result.rows
                    if r["instance"] == instance and r["network"] == network
                ]
                times = [r["hdfs_s"] for r in subset]
                assert times == sorted(times)

    def test_linearity_ratio(self, result):
        """4x the data should take ~4x the time (Figure 5's message)."""
        ratio = result.measured["small_time_ratio"]
        assert ratio == pytest.approx(4.0, rel=0.2)

    def test_throttled_slower_than_default(self, result):
        defaults = {
            (r["instance"], r["size_gb"]): r["hdfs_s"]
            for r in result.rows
            if r["network"] == "default"
        }
        for r in result.rows:
            if r["network"] != "default":
                assert r["hdfs_s"] > defaults[(r["instance"], r["size_gb"])]


class TestFig6Trend:
    def test_improvement_decreases_with_throttle(self):
        result = fig6(scale=SCALE, throttles=(50, 150))
        imps = [r["improvement_pct"] for r in result.rows]
        assert imps[0] > imps[1] > 0


class TestFig9Trend:
    def test_monotone_for_each_cluster(self):
        result = fig9(scale=SCALE, throttles=(50, 150), clusters=("small",))
        assert result.measured["small_monotone_decreasing"]


class TestFig10Trend:
    def test_one_slow_node_hurts_hdfs_more(self):
        # 1/8 scale (1 GB = 16 blocks): enough blocks for the speed
        # records to converge, which the contention scenario relies on.
        result = fig10(scale=1 / 8, ks=(0, 1))
        k0, k1 = result.rows[0], result.rows[1]
        assert k1["hdfs_s"] > k0["hdfs_s"] * 1.2
        assert k1["improvement_pct"] > k0["improvement_pct"]


class TestFig13Trend:
    def test_smarth_wins_on_heterogeneous(self):
        # Full-scale 8 GB point: the speed learning needs ~dozens of
        # blocks to converge, and one 8 GB run is cheap (~2 s wall).
        result = fig13(scale=1.0, sizes_gb=(8,))
        row = result.rows[0]
        # Paper: 41% — accept the band that preserves the conclusion.
        assert 20 < row["improvement_pct"] < 90

    def test_returns_experiment_result(self):
        result = fig13(scale=SCALE, sizes_gb=(8,))
        assert isinstance(result, ExperimentResult)
        assert result.paper_claim["improvement_pct"] == 41


class TestConfig:
    def test_experiment_config_granularity(self):
        cfg = experiment_config()
        assert cfg.hdfs.packet_size == 4 * 1024 * 1024
        assert cfg.hdfs.block_size == 64 * 1024 * 1024
