"""Unit tests for result formatting and the ASCII chart renderer."""

import pytest

from repro.experiments import ExperimentResult, format_table
from repro.experiments.report import render_bars


class TestFormatTable:
    def test_missing_cells_render_empty(self):
        text = format_table(("a", "b"), [{"a": 1}])
        assert text.splitlines()[2].strip().startswith("1")

    def test_empty_rows(self):
        text = format_table(("col",), [])
        assert "col" in text


class TestRenderBars:
    ROWS = [
        {"label": "50Mbps", "improvement": 143.0},
        {"label": "100Mbps", "improvement": 77.0},
        {"label": "150Mbps", "improvement": 38.0},
    ]

    def test_bars_scale_with_values(self):
        chart = render_bars(self.ROWS, "improvement", width=40)
        lines = chart.splitlines()
        lengths = [line.count("#") for line in lines]
        assert lengths[0] == 40  # peak takes full width
        assert lengths[0] > lengths[1] > lengths[2] > 0

    def test_values_printed(self):
        chart = render_bars(self.ROWS, "improvement", unit="%")
        assert "143%" in chart
        assert "50Mbps" in chart

    def test_zero_values_get_empty_bar(self):
        chart = render_bars(
            [{"label": "x", "v": 0.0}, {"label": "y", "v": 2.0}], "v"
        )
        assert chart.splitlines()[0].count("#") == 0

    def test_empty_rows_rejected(self):
        with pytest.raises(ValueError):
            render_bars([], "v")

    def test_labels_aligned(self):
        chart = render_bars(self.ROWS, "improvement")
        positions = [line.index("|") for line in chart.splitlines()]
        assert len(set(positions)) == 1


class TestExperimentResultChart:
    def test_chart_uses_last_column_by_default(self):
        result = ExperimentResult(
            experiment_id="x",
            title="t",
            columns=("label", "hdfs_s", "improvement_pct"),
            rows=[
                {"label": "a", "hdfs_s": 10, "improvement_pct": 50},
                {"label": "b", "hdfs_s": 20, "improvement_pct": 25},
            ],
        )
        chart = result.chart()
        assert "50" in chart and "25" in chart
        explicit = result.chart(value_key="hdfs_s")
        assert "20" in explicit
