"""Regenerate the pinned service checkpoint/resume goldens.

Usage:  PYTHONPATH=src python tests/service/regen_goldens.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

HERE = Path(__file__).parent
sys.path.insert(0, str(HERE.parents[1]))

from repro.service import IngestService  # noqa: E402

from tests.service.specs import golden_spec  # noqa: E402


def main() -> None:
    goldens = {}
    for label, chaos in (("plain", False), ("chaos", True)):
        report = IngestService(golden_spec(shards=1, chaos=chaos)).run()
        goldens[label] = {
            "digests": report.digests(),
            "counts": report.counts,
        }
    path = HERE / "golden_service_digests.json"
    path.write_text(json.dumps(goldens, sort_keys=True, indent=2) + "\n")
    print(f"wrote {path} ({path.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
