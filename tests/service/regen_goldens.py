"""Regenerate the pinned service checkpoint/resume goldens.

Usage:  PYTHONPATH=src python tests/service/regen_goldens.py

:func:`generate` is the pure half — it returns the golden file contents
without touching disk, so ``tests/policy/test_regen_goldens.py`` can
assert the regeneration is idempotent and matches the checked-in bytes.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

HERE = Path(__file__).parent
sys.path.insert(0, str(HERE.parents[1]))

from repro.service import IngestService  # noqa: E402

from tests.service.specs import golden_spec  # noqa: E402


def generate() -> dict[str, str]:
    """Golden file name -> contents, freshly computed."""
    goldens = {}
    for label, chaos in (("plain", False), ("chaos", True)):
        report = IngestService(golden_spec(shards=1, chaos=chaos)).run()
        goldens[label] = {
            "digests": report.digests(),
            "counts": report.counts,
        }
    return {
        "golden_service_digests.json": (
            json.dumps(goldens, sort_keys=True, indent=2) + "\n"
        )
    }


def main() -> None:
    for name, text in generate().items():
        path = HERE / name
        path.write_text(text)
        print(f"wrote {path} ({path.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
