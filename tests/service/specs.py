"""Shared golden-run specs for the service checkpoint/resume tests.

One small-but-busy spec (12 tenants, 4 segments of 60 s) used by both
the pytest suite and ``regen_goldens.py``, so the pinned digests and the
assertions can never drift apart.
"""

from __future__ import annotations

import dataclasses

from repro.faults.campaign import FaultSpec
from repro.service import ServiceSpec

#: Interarrival compression: the default class mix is tuned for multi-hour
#: horizons; divide by this to make a 240 s golden run actually busy.
SPEEDUP = 100.0


def golden_spec(shards: int = 1, chaos: bool = False) -> ServiceSpec:
    spec = ServiceSpec.default(
        tenants=12,
        horizon=240.0,
        checkpoint_every=60.0,
        seed=20140901,
        shards=shards,
        n_datanodes=6,
        n_client_hosts=2,
        max_inflight=4,
        queue_limit=6,
        faults=chaos_faults() if chaos else (),
    )
    classes = tuple(
        dataclasses.replace(c, mean_interarrival=c.mean_interarrival / SPEEDUP)
        for c in spec.classes
    )
    return dataclasses.replace(spec, classes=classes)


def chaos_faults() -> tuple[FaultSpec, ...]:
    """A fixed chaos plan that straddles two barriers.

    The throttle window crosses the t=60 barrier; the kill/revive pair
    spans the t=120 barrier — both state kinds must survive a snapshot.
    """
    return (
        FaultSpec(kind="throttle", at=45.0, datanode="dn1", rate_mbps=1.0),
        FaultSpec(kind="unthrottle", at=75.0, datanode="dn1"),
        FaultSpec(kind="kill", at=100.0, datanode="dn2"),
        FaultSpec(kind="revive", at=130.0, datanode="dn2"),
    )
