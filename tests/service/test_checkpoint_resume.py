"""Checkpoint/resume determinism goldens.

The core acceptance property of the service tentpole: a fixed-seed run
snapshotted at each interior barrier must continue **byte-identically**
when resumed from any of those snapshots — same journal, same metrics
summary, same per-tenant SLO table — at shard counts {1, 2}, with and
without a chaos plan whose faults straddle the barriers.

The straight run's digests are additionally pinned in
``golden_service_digests.json`` (regenerate with ``regen_goldens.py``)
so cross-version drift is caught even if straight and resumed drift
*together*.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.service import IngestService, load_snapshot

from .specs import golden_spec

HERE = Path(__file__).parent
GOLDEN = HERE / "golden_service_digests.json"


def _straight(spec, checkpoint_dir):
    service = IngestService(spec)
    report = service.run(checkpoint_dir=checkpoint_dir)
    return service, report


@pytest.mark.parametrize("shards", [1, 2])
@pytest.mark.parametrize("chaos", [False, True], ids=["plain", "chaos"])
def test_resume_is_byte_identical(tmp_path, shards, chaos):
    spec = golden_spec(shards=shards, chaos=chaos)
    service, straight = _straight(spec, tmp_path)
    assert service.checkpoints_written == 3

    checkpoints = sorted(tmp_path.glob("ckpt_*.pkl"))
    assert [p.name for p in checkpoints] == [
        "ckpt_001.pkl",
        "ckpt_002.pkl",
        "ckpt_003.pkl",
    ]
    for ckpt in checkpoints:
        resumed = IngestService.resume(ckpt).run()
        assert resumed.journal_text == straight.journal_text, ckpt.name
        assert resumed.metrics_text == straight.metrics_text, ckpt.name
        assert resumed.slo_text == straight.slo_text, ckpt.name
        assert resumed.counts == straight.counts, ckpt.name


@pytest.mark.parametrize("chaos", [False, True], ids=["plain", "chaos"])
def test_straight_run_matches_golden(chaos):
    golden = json.loads(GOLDEN.read_text())[("chaos" if chaos else "plain")]
    # Shard invariance: the sharded merge is deterministic by
    # (time, priority, eid), so shards=2 must reproduce the shards=1
    # golden bytes exactly.
    for shards in (1, 2):
        report = IngestService(golden_spec(shards=shards, chaos=chaos)).run()
        assert report.digests() == golden["digests"], f"shards={shards}"
        assert report.counts == golden["counts"], f"shards={shards}"


def test_chaos_run_actually_exercised_faults():
    report = IngestService(golden_spec(chaos=True)).run()
    assert report.counts["faults_applied"] == 4
    assert report.counts["arrivals"] > 0
    assert report.counts["completed"] > 0
    assert report.counts["conservation_ok"]
    assert report.counts["queue_bounded"]
    assert report.counts["inflight_bounded"]


def test_snapshot_round_trips_plain_state(tmp_path):
    spec = golden_spec()
    service, _ = _straight(spec, tmp_path)
    state = load_snapshot(tmp_path / "ckpt_002.pkl")
    assert state["spec"] == spec
    assert state["segment_index"] == 2
    # Snapshots hold plain data only — no generators, processes or
    # environment references may sneak in.
    import pickle

    pickle.loads(pickle.dumps(state))
    assert isinstance(state["clock"], dict)
    # The segment driver stops once the last arrival before the t=120
    # boundary has drained, so the snapshot clock sits somewhere inside
    # the second segment — not necessarily at the boundary itself.
    assert state["clock"]["now"] >= 60.0
    assert isinstance(state["journal"], list)
