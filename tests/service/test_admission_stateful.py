"""Stateful property test: the admission controller under arbitrary traffic.

A hypothesis RuleBasedStateMachine fires arrivals and completions in
random interleavings and checks the bounded-queue/backpressure contract:

* the queue never exceeds ``queue_limit`` and inflight never exceeds
  ``max_inflight`` (bounded-queue semantics, not silent buffering);
* no admitted upload is silently dropped — everything the controller
  accepts is eventually handed back exactly once;
* at drain, ``completed + failed + rejected == arrivals`` (conservation).
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

import pytest

from repro.service import AdmissionController
from repro.service.admission import ADMIT, QUEUE, REJECT


class AdmissionMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.ctrl = AdmissionController(max_inflight=3, queue_limit=4)
        self._next = 0
        #: Items the controller accepted (admitted or queued) but has not
        #: yet handed to a worker slot — i.e. its queue, shadow-modelled.
        self.shadow_queue: list[int] = []
        #: Items currently occupying a worker slot.
        self.running: set[int] = set()
        #: Final outcome per item: "done" | "failed" | "rejected".
        self.outcome: dict[int, str] = {}

    @rule()
    def arrive(self):
        item = self._next
        self._next += 1
        decision = self.ctrl.on_arrival(item)
        if decision == ADMIT:
            self.running.add(item)
        elif decision == QUEUE:
            self.shadow_queue.append(item)
        else:
            assert decision == REJECT
            self.outcome[item] = "rejected"

    @precondition(lambda self: self.running)
    @rule(ok=st.booleans())
    def finish(self, ok):
        item = min(self.running)
        self.running.remove(item)
        self.outcome[item] = "done" if ok else "failed"
        backlogged = self.ctrl.on_done(ok)
        if backlogged is None:
            assert not self.shadow_queue
        else:
            # FIFO: the controller hands back the oldest queued item, and
            # never an item it already surfaced (no duplication, no loss).
            assert backlogged == self.shadow_queue.pop(0)
            assert backlogged not in self.outcome
            assert backlogged not in self.running
            self.running.add(backlogged)

    # ------------------------------------------------------------------
    @invariant()
    def bounds_hold(self):
        assert len(self.ctrl.queue) <= self.ctrl.queue_limit
        assert self.ctrl.inflight <= self.ctrl.max_inflight
        assert self.ctrl.max_queue_depth <= self.ctrl.queue_limit
        assert self.ctrl.max_inflight_seen <= self.ctrl.max_inflight

    @invariant()
    def shadow_matches_controller(self):
        assert self.ctrl.queue == self.shadow_queue
        assert self.ctrl.inflight == len(self.running)

    @invariant()
    def counters_conserve(self):
        c = self.ctrl
        # Every arrival is in exactly one place: rejected, settled,
        # queued, or occupying a slot.
        assert c.arrivals == c.settled + len(c.queue) + c.inflight
        assert c.admitted + c.dequeued == c.completed + c.failed + c.inflight
        assert c.enqueued == c.dequeued + len(c.queue)

    def teardown(self):
        # Drain whatever is still running, then check conservation the
        # same way the service does at a quiescent barrier.
        while self.running:
            self.finish(ok=True)
        self.ctrl.check_drained()
        assert self.ctrl.arrivals == self.ctrl.settled


TestAdmissionStateful = AdmissionMachine.TestCase
TestAdmissionStateful.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)


def test_rejects_bad_limits():
    with pytest.raises(ValueError):
        AdmissionController(max_inflight=0, queue_limit=4)
    with pytest.raises(ValueError):
        AdmissionController(max_inflight=1, queue_limit=-1)


def test_on_done_without_inflight_raises():
    ctrl = AdmissionController(max_inflight=1, queue_limit=1)
    with pytest.raises(RuntimeError):
        ctrl.on_done(True)


def test_check_drained_reports_violation():
    ctrl = AdmissionController(max_inflight=1, queue_limit=1)
    ctrl.on_arrival("a")
    with pytest.raises(AssertionError):
        ctrl.check_drained()
    with pytest.raises(AssertionError):
        ctrl.export_state()
